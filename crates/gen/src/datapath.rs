//! Large pipelined-datapath generator for scaling work.
//!
//! [`random`](crate::random) grows circuits by uniform sampling, which is
//! fine at tens of latches but produces structurally noisy graphs whose
//! lint findings and LP shapes vary wildly with the seed. This module
//! instead generates the circuit family the scaling benchmarks and the
//! scale-differential tests need: a **pipelined datapath** — `stages`
//! ranks of `width` latches, rank `s` clocked by phase `s mod phases`,
//! every latch fed by `fanin` distinct latches of the previous rank, and
//! the last rank fed back to the first so the whole circuit is one
//! strongly connected core. Only the delays are random; the structure is a
//! pure function of the configuration, so the netlist is **byte-identical
//! for a given `(config, seed)` pair** — the golden tests pin that down.
//!
//! The family is constructed to pass every `smo lint` rule by design:
//! every latch has fanin and fanout (feedback closes the boundary ranks),
//! `stages ≥ phases` keeps every phase populated, fanin sources are
//! distinct (no duplicate edges), delays are strictly positive (no
//! zero-delay transparent loops), synchronizers are plain latches with
//! `setup = dq = 1.0` (no hold-margin or suspicious-ratio findings), and
//! the column-mixing fanin pattern plus the feedback ring make the graph
//! one cyclic SCC (nothing unreachable, nothing disconnected).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smo_circuit::{Circuit, CircuitBuilder, LatchId, PhaseId};

/// Configuration for [`pipelined_datapath`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathConfig {
    /// Pipeline depth (ranks of latches). Must be `≥ phases` so every
    /// phase clocks at least one rank.
    pub stages: usize,
    /// Latches per rank; total latches = `stages × width`.
    pub width: usize,
    /// Clock phases `k ≥ 2` (rank `s` is clocked by phase `s mod k`).
    pub phases: usize,
    /// Distinct previous-rank sources per latch (`1 ≤ fanin ≤ width`).
    /// Use `≥ 2`: a fanin of 1 degenerates into `width` disconnected
    /// column rings, which `smo lint` rightly flags.
    pub fanin: usize,
    /// Uniform range for combinational long-path delays; both endpoints
    /// must be strictly positive.
    pub delay_range: (f64, f64),
}

impl Default for DatapathConfig {
    fn default() -> Self {
        DatapathConfig {
            stages: 8,
            width: 16,
            phases: 2,
            fanin: 2,
            delay_range: (5.0, 40.0),
        }
    }
}

impl DatapathConfig {
    /// A configuration with roughly `latches` total latches: depth grows
    /// slowly (cube root) so large circuits stay wide and shallow like
    /// real datapaths; the exact total is `stages × width ≥ latches`.
    pub fn with_latches(latches: usize) -> Self {
        let latches = latches.max(4);
        let mut stages = (latches as f64).cbrt().round() as usize;
        stages = stages.clamp(2, 64);
        let width = latches.div_ceil(stages).max(2);
        DatapathConfig {
            stages,
            width,
            ..Self::default()
        }
    }

    /// Total latches this configuration generates.
    pub fn latches(&self) -> usize {
        self.stages * self.width
    }

    /// Total combinational edges this configuration generates
    /// (`(stages − 1) × width × fanin` forward + `width × fanin` feedback).
    pub fn edges(&self) -> usize {
        self.stages * self.width * self.fanin
    }
}

/// Generates a pipelined datapath (see the [module docs](self)).
///
/// Latch `s,w` (rank `s`, column `w`) is fed by latches
/// `(s−1, (w + k) mod width)` for `k in 0..fanin`; rank 0 is fed the same
/// way from the last rank, closing the pipeline into a single strongly
/// connected core. Delays are drawn uniformly from `delay_range` in a
/// fixed traversal order, so the output is byte-deterministic per
/// `(config, seed)`.
///
/// # Panics
///
/// Panics on a degenerate configuration: `phases < 2`, `stages < phases`,
/// `width < 2`, `fanin` outside `1..=width`, or a non-positive or empty
/// delay range.
pub fn pipelined_datapath(config: &DatapathConfig, seed: u64) -> Circuit {
    assert!(config.phases >= 2, "need at least 2 clock phases");
    assert!(
        config.stages >= config.phases,
        "need stages >= phases so every phase clocks a rank"
    );
    assert!(config.width >= 2, "need at least 2 latches per rank");
    assert!(
        (1..=config.width).contains(&config.fanin),
        "fanin must be in 1..=width"
    );
    assert!(
        config.delay_range.0 > 0.0 && config.delay_range.0 <= config.delay_range.1,
        "delay range must be positive and non-empty"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(config.phases);
    let mut ranks: Vec<Vec<LatchId>> = Vec::with_capacity(config.stages);
    for s in 0..config.stages {
        let phase = PhaseId::new(s % config.phases);
        ranks.push(
            (0..config.width)
                .map(|w| b.add_latch(format!("R{s}C{w}"), phase, 1.0, 1.0))
                .collect(),
        );
    }
    for s in 0..config.stages {
        let prev = &ranks[(s + config.stages - 1) % config.stages];
        for w in 0..config.width {
            for k in 0..config.fanin {
                let from = prev[(w + k) % config.width];
                let delay = rng.gen_range(config.delay_range.0..=config.delay_range.1);
                b.connect(from, ranks[s][w], delay);
            }
        }
    }
    match b.build() {
        Ok(circuit) => circuit,
        // The asserts above rule out every structural error the builder
        // can report (bad phase ids, duplicate edges, dangling latches).
        Err(e) => unreachable!("generated datapath is structurally valid: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_config() {
        let config = DatapathConfig::default();
        let c = pipelined_datapath(&config, 7);
        assert_eq!(c.num_latches(), config.latches());
        assert_eq!(c.num_edges(), config.edges());
    }

    #[test]
    fn deterministic_per_seed() {
        let config = DatapathConfig {
            stages: 5,
            width: 7,
            phases: 3,
            fanin: 3,
            ..DatapathConfig::default()
        };
        let a = pipelined_datapath(&config, 42);
        let b = pipelined_datapath(&config, 42);
        let c = pipelined_datapath(&config, 43);
        assert_eq!(
            smo_circuit::netlist::write(&a),
            smo_circuit::netlist::write(&b)
        );
        assert_ne!(
            smo_circuit::netlist::write(&a),
            smo_circuit::netlist::write(&c)
        );
    }

    #[test]
    fn with_latches_hits_the_target() {
        for n in [100, 1_000, 10_000] {
            let config = DatapathConfig::with_latches(n);
            assert!(config.latches() >= n);
            assert!(config.latches() < n + n / 2 + config.stages * 2);
            assert!(config.stages >= config.phases);
        }
    }

    #[test]
    fn four_phase_deep_pipeline_builds() {
        let config = DatapathConfig {
            stages: 9,
            width: 4,
            phases: 4,
            ..DatapathConfig::default()
        };
        let c = pipelined_datapath(&config, 1);
        assert_eq!(c.num_phases(), 4);
        assert_eq!(c.num_latches(), 36);
    }
}
