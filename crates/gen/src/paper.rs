//! The circuits of the paper's examples (§V and appendix).
//!
//! Where the paper does not give a machine-readable netlist (Example 2's
//! block diagram, Example 3's SPICE-extracted delays) the circuits here are
//! documented reconstructions; see DESIGN.md ("Substitutions") for what is
//! preserved.

use smo_circuit::{Circuit, CircuitBuilder, LatchId, PhaseId};

fn p(n: usize) -> PhaseId {
    PhaseId::from_number(n)
}

/// Example 1 (Fig. 5): a two-stage system connected in a loop, controlled by
/// a two-phase clock. All latches have setup and propagation delays of
/// 10 ns; the combinational blocks are `La = 20`, `Lb = 20`, `Lc = 60` and
/// `Ld = delta41` (the paper sweeps Δ41 to produce Figs. 6 and 7).
///
/// Latch numbering matches the paper: L1, L3 on φ1; L2, L4 on φ2;
/// edges L1→L2 (La), L2→L3 (Lb), L3→L4 (Lc), L4→L1 (Ld).
///
/// # Panics
///
/// Panics if `delta41` is negative or non-finite.
pub fn example1(delta41: f64) -> Circuit {
    let mut b = CircuitBuilder::new(2);
    let l1 = b.add_latch("L1", p(1), 10.0, 10.0);
    let l2 = b.add_latch("L2", p(2), 10.0, 10.0);
    let l3 = b.add_latch("L3", p(1), 10.0, 10.0);
    let l4 = b.add_latch("L4", p(2), 10.0, 10.0);
    b.connect(l1, l2, 20.0);
    b.connect(l2, l3, 20.0);
    b.connect(l3, l4, 60.0);
    b.connect(l4, l1, delta41);
    b.build().expect("example 1 is structurally valid")
}

/// The edge index of `Δ41` (block `Ld`) within [`example1`], for parametric
/// studies.
pub const EXAMPLE1_DELTA41_EDGE: usize = 3;

/// A stand-in for Example 2 (Fig. 8): a "more complicated" four-phase
/// circuit with two coupled feedback loops sharing a segment, built so that
/// (like the paper's) its optimal schedule involves heavy, unevenly
/// distributed time borrowing — which is exactly what the NRIP-like
/// symmetric baseline cannot express, producing a large gap (the paper
/// reports 35 %).
///
/// Structure (all synchronizers are latches, setup = dq = 2 ns):
///
/// ```text
/// loop 1 (one cycle):  A1(φ1) --2--> A2(φ2) --17--> A3(φ3) --2--> A4(φ4) --2--> A1
/// loop 2 (two cycles): A2(φ2) --17--> A3(φ3) --19--> D(φ2) --20--> A2
/// feeder: B1(φ1) --3--> A2      tail: A4(φ4) --5--> C1(φ1)
/// ```
///
/// The two loops share the `A2 → A3` segment but want *different* spacings
/// of φ2/φ3 and rely on time borrowing through the shared latches, so both
/// zero-borrowing and evenly spaced clocks are forced well above the
/// optimum — the mechanism behind the paper's 35 % NRIP gap.
pub fn example2() -> Circuit {
    let mut b = CircuitBuilder::new(4);
    let a1 = b.add_latch("A1", p(1), 2.0, 2.0);
    let a2 = b.add_latch("A2", p(2), 2.0, 2.0);
    let a3 = b.add_latch("A3", p(3), 2.0, 2.0);
    let a4 = b.add_latch("A4", p(4), 2.0, 2.0);
    let d = b.add_latch("D", p(2), 2.0, 2.0);
    let b1 = b.add_latch("B1", p(1), 2.0, 2.0);
    let c1 = b.add_latch("C1", p(1), 2.0, 2.0);
    b.connect(a1, a2, 2.0);
    b.connect(a2, a3, 17.0);
    b.connect(a3, a4, 2.0);
    b.connect(a4, a1, 2.0);
    b.connect(a3, d, 19.0);
    b.connect(d, a2, 20.0);
    b.connect(b1, a2, 3.0);
    b.connect(a4, c1, 5.0);
    b.build().expect("example 2 is structurally valid")
}

/// A combinational block of the GaAs MIPS datapath with its transistor
/// count (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatapathBlock {
    /// Block name as printed in Table I.
    pub name: &'static str,
    /// Transistor count as printed in Table I.
    pub transistors: u32,
}

/// The rows of Table I ("Transistor count for major blocks of the GaAs MIPS
/// datapath"), including the total.
pub const GAAS_BLOCKS: &[DatapathBlock] = &[
    DatapathBlock {
        name: "Register File (RF)",
        transistors: 16_085,
    },
    DatapathBlock {
        name: "Arithmetic/Logic Unit (ALU)",
        transistors: 3_419,
    },
    DatapathBlock {
        name: "Shifter",
        transistors: 1_848,
    },
    DatapathBlock {
        name: "Integer Multiply/Divide (IMD)",
        transistors: 6_874,
    },
    DatapathBlock {
        name: "Load Aligner",
        transistors: 1_922,
    },
];

/// The total transistor count printed in Table I.
pub const GAAS_TOTAL_TRANSISTORS: u32 = 30_148;

/// Example 3 (Fig. 10): a timing model of the 250-MHz GaAs MIPS
/// microcomputer datapath with its primary caches.
///
/// The paper's model has 18 synchronizing elements — 15 level-sensitive
/// latches and 3 flip-flops, each standing for a 32-bit bus — under a
/// three-phase clock, with delays extracted from SPICE. Those delays are
/// not published, so this reconstruction (DESIGN.md, substitution 3) uses
/// GaAs-plausible values chosen to preserve the reported behaviour:
///
/// * the optimal cycle time lands near the paper's **4.4 ns**, about 10 %
///   above the 4-ns target;
/// * φ3 is the register-file **precharge** phase and is completely
///   overlapped by φ1 in the optimal schedule, which is legal because there
///   are no direct φ1↔φ3 paths (`K13 = K31 = 0`);
/// * the caches are 1K×32 SRAMs on the same multichip module.
pub fn gaas_mips() -> Circuit {
    let mut b = CircuitBuilder::new(3);
    // Latch parameters: fast GaAs latches, setup 0.15 ns, D→Q 0.20 ns.
    let lat = |b: &mut CircuitBuilder, name: &str, ph: usize| -> LatchId {
        b.add_latch(name, p(ph), 0.15, 0.20)
    };
    let ff = |b: &mut CircuitBuilder, name: &str, ph: usize| -> LatchId {
        b.add_flip_flop(name, p(ph), 0.15, 0.25)
    };

    // --- instruction side -------------------------------------------------
    let pc = ff(&mut b, "pc", 1); // program counter (F/F)
    let iaddr = lat(&mut b, "icache_addr", 2);
    let instr = lat(&mut b, "instr", 1); // instruction register
    let npc = lat(&mut b, "next_pc", 2);

    // --- register file ----------------------------------------------------
    let rf_waddr = lat(&mut b, "rf_waddr", 1);
    let rf_cell = lat(&mut b, "rf_cell", 2); // storage state (write port)
    let rf_prech = lat(&mut b, "rf_precharge", 3); // precharge enable
    let op_a = lat(&mut b, "op_a", 1);
    let op_b = lat(&mut b, "op_b", 1);

    // --- execute ------------------------------------------------------------
    let alu_out = lat(&mut b, "alu_out", 2);
    let sh_out = lat(&mut b, "shift_out", 2);
    let imd_in = lat(&mut b, "imd_in", 1);
    let imd_out = lat(&mut b, "imd_out", 2);
    let psw = ff(&mut b, "psw", 1); // processor status (F/F)

    // --- memory side --------------------------------------------------------
    let daddr = lat(&mut b, "dcache_addr", 2);
    let ldata = lat(&mut b, "load_data", 1);
    let wb = lat(&mut b, "writeback", 2);
    let brcond = ff(&mut b, "branch_cond", 1); // branch decision (F/F)

    // --- paths (delays in ns) ----------------------------------------------
    // pc & instruction fetch: pc → +4/branch mux → icache address latch
    b.connect(pc, iaddr, 0.90);
    b.connect(brcond, iaddr, 0.85);
    // icache access (1K×32 GaAs SRAM on the MCM): address → instruction reg
    b.connect(iaddr, instr, 3.15);
    // next-pc adder and pc update
    b.connect(pc, npc, 1.35);
    b.connect(npc, pc, 0.55);
    // decode: instruction → register addresses / imd input / write address
    b.connect(instr, rf_waddr, 1.05);
    b.connect(instr, imd_in, 1.15);
    // register file read: storage → operand latches (decode + read ~ 1.5)
    b.connect(rf_cell, op_a, 2.20);
    b.connect(rf_cell, op_b, 2.20);
    b.connect(instr, op_a, 1.65); // bypass/immediate path
                                  // precharge loop: write port state → precharge enable → storage
    b.connect(rf_cell, rf_prech, 0.60);
    b.connect(rf_prech, rf_cell, 0.75);
    // execute: operands → ALU / shifter / psw flags
    b.connect(op_a, alu_out, 2.70);
    b.connect(op_b, alu_out, 2.70);
    b.connect(op_a, sh_out, 2.25);
    b.connect(op_b, sh_out, 2.25);
    b.connect(op_a, psw, 2.90);
    b.connect(op_b, brcond, 2.85);
    // integer multiply/divide (one iteration per cycle)
    b.connect(imd_in, imd_out, 3.25);
    b.connect(imd_out, imd_in, 0.75);
    // memory: ALU result → dcache address → load data (1K×32 SRAM)
    b.connect(alu_out, daddr, 0.55);
    b.connect(daddr, ldata, 3.15);
    // load aligner and writeback mux
    b.connect(ldata, wb, 1.45);
    b.connect(alu_out, wb, 0.75);
    b.connect(sh_out, wb, 0.75);
    b.connect(imd_out, wb, 0.75);
    // register write: writeback bus + write address → storage
    b.connect(wb, rf_cell, 1.30);
    b.connect(rf_waddr, rf_cell, 1.20);

    b.build()
        .expect("the GaAs MIPS model is structurally valid")
}

/// The paper's cycle-time target for the GaAs MIPS (250 MHz ⇒ 4 ns).
pub const GAAS_TARGET_CYCLE_NS: f64 = 4.0;

/// The optimal cycle time the paper reports for its Example 3 model
/// (10 % above the target).
pub const GAAS_PAPER_OPTIMAL_NS: f64 = 4.4;

/// The appendix circuit (Fig. 1): 11 latches under a four-phase clock.
///
/// Phase assignment follows the appendix setup constraints
/// (φ1: L1, L2, L8; φ2: L6, L7, L11; φ3: L4, L5, L10; φ4: L3, L9) and the
/// edges follow the propagation constraints. The appendix lists nine phase
/// pairs including `S43`, but the printed propagation constraints contain
/// no φ4→φ3 term (almost certainly a typesetting drop); we restore the
/// missing edge as L3→L10, which also gives L3 the fan-out Fig. 1 shows.
///
/// `delay` is used for every combinational block, `setup`/`dq` for every
/// latch (the appendix is symbolic; any positive values are faithful).
pub fn appendix_fig1(delay: f64, setup: f64, dq: f64) -> Circuit {
    let mut b = CircuitBuilder::new(4);
    let phases = [1usize, 1, 4, 3, 3, 2, 2, 1, 4, 3, 2];
    let ids: Vec<LatchId> = phases
        .iter()
        .enumerate()
        .map(|(i, &ph)| b.add_latch(format!("L{}", i + 1), p(ph), setup, dq))
        .collect();
    let l = |n: usize| ids[n - 1];
    // (source, dest) pairs from the appendix propagation constraints
    let edges = [
        (4, 2),
        (5, 2),
        (8, 3),
        (1, 4),
        (2, 4),
        (6, 5),
        (7, 5),
        (4, 6),
        (5, 6),
        (9, 7),
        (10, 7),
        (6, 8),
        (7, 8),
        (6, 9),
        (7, 9),
        (11, 10),
        (3, 10), // restored φ4→φ3 edge (see doc comment)
        (9, 11),
        (10, 11),
    ];
    for (src, dst) in edges {
        b.connect(l(src), l(dst), delay);
    }
    b.build()
        .expect("the appendix circuit is structurally valid")
}

/// The nine input/output phase pairs of the appendix circuit, as
/// `(source phase number, destination phase number)` in the order of the
/// appendix `S` listing.
pub const APPENDIX_PHASE_PAIRS: &[(usize, usize)] = &[
    (1, 3),
    (1, 4),
    (2, 1),
    (2, 3),
    (2, 4),
    (3, 1),
    (3, 2),
    (4, 2),
    (4, 3),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_matches_paper_structure() {
        let c = example1(80.0);
        assert_eq!(c.num_phases(), 2);
        assert_eq!(c.num_latches(), 4);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(c.edges()[EXAMPLE1_DELTA41_EDGE].max_delay, 80.0);
        assert_eq!(c.max_fanin(), 1);
    }

    #[test]
    fn example2_has_two_coupled_loops() {
        let c = example2();
        assert_eq!(c.num_phases(), 4);
        assert!(c.has_feedback());
        assert!(c.cycles(10).len() >= 2);
    }

    #[test]
    fn gaas_has_18_synchronizers_15_latches() {
        let c = gaas_mips();
        assert_eq!(c.num_phases(), 3);
        assert_eq!(c.num_syncs(), 18);
        assert_eq!(c.num_latches(), 15);
        assert_eq!(c.num_flip_flops(), 3);
    }

    #[test]
    fn gaas_has_no_phi1_phi3_paths() {
        let k = gaas_mips().k_matrix();
        assert!(!k.get(0, 2), "K13 must be 0 (paper, Example 3)");
        assert!(!k.get(2, 0), "K31 must be 0 (paper, Example 3)");
    }

    #[test]
    fn table1_counts_sum_to_total() {
        let sum: u32 = GAAS_BLOCKS.iter().map(|b| b.transistors).sum();
        assert_eq!(sum, GAAS_TOTAL_TRANSISTORS);
    }

    #[test]
    fn appendix_k_matrix_matches_paper() {
        let c = appendix_fig1(10.0, 1.0, 2.0);
        assert_eq!(c.num_latches(), 11);
        let k = c.k_matrix();
        let expected = [[0, 0, 1, 1], [1, 0, 1, 1], [1, 1, 0, 0], [0, 1, 1, 0]];
        for (i, row) in expected.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(k.get(i, j), want == 1, "K[{}][{}] mismatch", i + 1, j + 1);
            }
        }
        assert_eq!(k.count_ones(), APPENDIX_PHASE_PAIRS.len());
    }

    #[test]
    fn appendix_latch_phases_match_setup_constraints() {
        let c = appendix_fig1(10.0, 1.0, 2.0);
        let expect = |names: &[usize], phase: usize| {
            for &n in names {
                let id = c.find(&format!("L{n}")).unwrap();
                assert_eq!(c.sync(id).phase.number(), phase, "L{n}");
            }
        };
        expect(&[1, 2, 8], 1);
        expect(&[6, 7, 11], 2);
        expect(&[4, 5, 10], 3);
        expect(&[3, 9], 4);
    }

    #[test]
    fn appendix_latch1_has_no_fanin() {
        let c = appendix_fig1(10.0, 1.0, 2.0);
        let l1 = c.find("L1").unwrap();
        assert!(c.fanin(l1).is_empty());
    }
}
