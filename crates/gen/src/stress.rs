//! Pathological circuit generators for the numerical stress harness.
//!
//! Each generator targets a specific failure mode of floating-point LP
//! solvers:
//!
//! * [`badly_scaled`] — combinational delays spanning fifteen orders of
//!   magnitude (`1e-6 ..= 1e9`), which wrecks naive absolute tolerances
//!   and exercises the equilibration rung of the recovery ladder;
//! * [`zero_delay_loops`] — feedback loops whose wires all have exactly
//!   zero delay, putting the departure fixpoint and several LP rows right
//!   on the constraint boundary;
//! * [`near_duplicate_rows`] — parallel edges whose delays differ by a
//!   relative `1e-9`, producing pairs of almost linearly dependent
//!   constraint rows (a classic source of basis ill-conditioning);
//! * [`degenerate_ties`] — a fully symmetric circuit in which every delay
//!   is identical, so the LP has massively degenerate vertices and every
//!   ratio test is a tie.
//!
//! All generators are deterministic for a given seed. [`suite`] bundles a
//! named instance of each for harnesses that want to sweep them all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smo_circuit::{Circuit, CircuitBuilder, LatchId, PhaseId};

/// A ring of `l` latches over `k` phases with chord edges, where every
/// combinational delay is drawn log-uniformly from `1e-6 ..= 1e9` and the
/// latch parameters are similarly tiny (`setup = 1e-4`, `dq = 1e-3`).
///
/// The resulting LP mixes rows with right-hand sides of order `1e9` and
/// rows of order `1e-6`; any solver step that compares residuals against a
/// fixed absolute tolerance misjudges one end of that range.
///
/// # Panics
///
/// Panics if `l < 2` or `k < 1`.
pub fn badly_scaled(l: usize, k: usize, seed: u64) -> Circuit {
    assert!(l >= 2 && k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(k);
    let ids: Vec<LatchId> = (0..l)
        .map(|i| b.add_latch(format!("B{i}"), PhaseId::new(i % k), 1e-4, 1e-3))
        .collect();
    let log_uniform = |rng: &mut StdRng| 10f64.powf(rng.gen_range(-6.0..=9.0));
    for i in 0..l {
        let d = log_uniform(&mut rng);
        b.connect(ids[i], ids[(i + 1) % l], d);
    }
    // Chords skipping two positions add shorter cycles with independent
    // magnitudes, so no single row scaling fixes every row at once.
    for i in (0..l).step_by(3) {
        let d = log_uniform(&mut rng);
        b.connect(ids[i], ids[(i + 2) % l], d);
    }
    b.build()
        .expect("badly scaled circuit is structurally valid")
}

/// `loops` feedback loops through a shared hub where every other loop is
/// wired with exactly zero combinational delay (the latch `D→Q` delay is
/// the only positive term around those loops).
///
/// Zero-delay wires place the long-path constraints exactly on the
/// feasibility boundary, so the optimum sits on a cluster of weakly active
/// rows — a stress test for complementary-slackness checking.
///
/// # Panics
///
/// Panics if `loops` is zero or `k` is zero.
pub fn zero_delay_loops(loops: usize, k: usize, seed: u64) -> Circuit {
    assert!(loops >= 1 && k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(k);
    let hub = b.add_latch("hub", PhaseId::new(0), 0.5, 1.0);
    for li in 0..loops {
        let zero_loop = li % 2 == 0;
        let stages = 2 + (li % 3);
        let mut prev = hub;
        for s in 0..stages {
            let node = b.add_latch(format!("z{li}_{s}"), PhaseId::new((s + 1) % k), 0.5, 1.0);
            let d = if zero_loop {
                0.0
            } else {
                rng.gen_range(2.0..30.0)
            };
            b.connect(prev, node, d);
            prev = node;
        }
        let d = if zero_loop {
            0.0
        } else {
            rng.gen_range(2.0..30.0)
        };
        b.connect(prev, hub, d);
    }
    b.build()
        .expect("zero-delay-loop circuit is structurally valid")
}

/// A closed pipeline of `l` latches in which every stage is wired twice:
/// once with delay `d` and once with delay `d · (1 + 1e-9)`.
///
/// Each duplicated edge contributes a constraint row that is almost
/// linearly dependent on its twin (identical coefficients, right-hand
/// sides differing in the 9th digit), the classic recipe for an
/// ill-conditioned simplex basis.
///
/// # Panics
///
/// Panics if `l < 2` or `k < 1`.
pub fn near_duplicate_rows(l: usize, k: usize, seed: u64) -> Circuit {
    assert!(l >= 2 && k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(k);
    let ids: Vec<LatchId> = (0..l)
        .map(|i| b.add_latch(format!("D{i}"), PhaseId::new(i % k), 1.0, 1.5))
        .collect();
    for i in 0..l {
        let d = rng.gen_range(5.0..40.0);
        b.connect(ids[i], ids[(i + 1) % l], d);
        b.connect(ids[i], ids[(i + 1) % l], d * (1.0 + 1e-9));
    }
    b.build()
        .expect("near-duplicate circuit is structurally valid")
}

/// A fully symmetric ring of `l` latches over `k` phases plus a chord from
/// every latch two positions ahead, with **every** combinational delay
/// equal to `10.0` and identical latch parameters.
///
/// The symmetry makes the cycle-time LP maximally degenerate: many
/// vertices attain the optimum and every simplex ratio test is an exact
/// tie, so the two pivoting variants are pushed toward different optimal
/// bases that must nevertheless certify against each other.
///
/// # Panics
///
/// Panics if `l < 3` or `k < 1`.
pub fn degenerate_ties(l: usize, k: usize) -> Circuit {
    assert!(l >= 3 && k >= 1);
    let mut b = CircuitBuilder::new(k);
    let ids: Vec<LatchId> = (0..l)
        .map(|i| b.add_latch(format!("T{i}"), PhaseId::new(i % k), 2.0, 2.0))
        .collect();
    for i in 0..l {
        b.connect(ids[i], ids[(i + 1) % l], 10.0);
        b.connect(ids[i], ids[(i + 2) % l], 10.0);
    }
    b.build().expect("degenerate circuit is structurally valid")
}

/// One named instance of every pathological generator at a moderate size,
/// deterministic for the given `seed`. Intended for stress harnesses that
/// sweep "all the hard cases" without enumerating generators themselves.
pub fn suite(seed: u64) -> Vec<(String, Circuit)> {
    vec![
        ("badly_scaled_12x3".to_string(), badly_scaled(12, 3, seed)),
        (
            "zero_delay_loops_5x2".to_string(),
            zero_delay_loops(5, 2, seed),
        ),
        (
            "near_duplicate_rows_8x2".to_string(),
            near_duplicate_rows(8, 2, seed),
        ),
        ("degenerate_ties_9x3".to_string(), degenerate_ties(9, 3)),
        ("degenerate_ties_8x2".to_string(), degenerate_ties(8, 2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn badly_scaled_spans_many_orders_of_magnitude() {
        let c = badly_scaled(12, 3, 0);
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for e in c.edges() {
            lo = lo.min(e.max_delay);
            hi = hi.max(e.max_delay);
        }
        assert!(hi / lo > 1e6, "span {lo:.3e}..{hi:.3e} too narrow");
        assert!(c.has_feedback());
    }

    #[test]
    fn zero_delay_loops_contain_actual_zero_wires() {
        let c = zero_delay_loops(5, 2, 1);
        assert!(c.edges().iter().any(|e| e.max_delay == 0.0));
        assert!(c.edges().iter().any(|e| e.max_delay > 0.0));
        assert!(c.has_feedback());
    }

    #[test]
    fn near_duplicate_rows_doubles_every_stage() {
        let l = 8;
        let c = near_duplicate_rows(l, 2, 3);
        assert_eq!(c.num_edges(), 2 * l);
        // Twin edges differ by a relative 1e-9, not exactly equal.
        let edges = c.edges();
        let twins = edges
            .iter()
            .filter(|e| {
                edges.iter().any(|f| {
                    f.from == e.from
                        && f.to == e.to
                        && f.max_delay != e.max_delay
                        && (f.max_delay - e.max_delay).abs() < 1e-6 * e.max_delay
                })
            })
            .count();
        assert_eq!(twins, 2 * l);
    }

    #[test]
    fn degenerate_ties_is_uniform() {
        let c = degenerate_ties(9, 3);
        assert!(c.edges().iter().all(|e| e.max_delay == 10.0));
        assert_eq!(c.num_edges(), 18);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(badly_scaled(10, 2, 7), badly_scaled(10, 2, 7));
        assert_eq!(zero_delay_loops(4, 3, 7), zero_delay_loops(4, 3, 7));
        assert_ne!(badly_scaled(10, 2, 7), badly_scaled(10, 2, 8));
    }

    #[test]
    fn suite_is_nonempty_and_named() {
        let s = suite(0);
        assert!(s.len() >= 4);
        assert!(s
            .iter()
            .all(|(name, c)| !name.is_empty() && c.num_edges() > 0));
    }
}
