//! Seeded random circuit generators for property tests and scaling
//! benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smo_circuit::{Circuit, CircuitBuilder, LatchId, PhaseId};

/// Configuration for [`random_circuit`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Number of clock phases `k ≥ 1`.
    pub phases: usize,
    /// Number of latches `l ≥ 1`.
    pub latches: usize,
    /// Number of combinational edges (self-loops never generated).
    pub edges: usize,
    /// Uniform range for combinational long-path delays.
    pub delay_range: (f64, f64),
    /// Latch setup time.
    pub setup: f64,
    /// Latch propagation delay (`≥ setup`).
    pub dq: f64,
    /// Probability that a synchronizer is a flip-flop instead of a latch.
    pub flip_flop_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            phases: 2,
            latches: 16,
            edges: 24,
            delay_range: (1.0, 50.0),
            setup: 2.0,
            dq: 2.0,
            flip_flop_prob: 0.0,
        }
    }
}

/// A random circuit: latches get uniform-random phases, edges connect
/// uniform-random distinct pairs with uniform-random delays.
///
/// Deterministic for a given `(config, seed)` pair.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero phases/latches, empty
/// delay range, `dq < setup`).
pub fn random_circuit(config: &GenConfig, seed: u64) -> Circuit {
    assert!(config.phases >= 1 && config.latches >= 1);
    assert!(config.delay_range.0 <= config.delay_range.1);
    assert!(config.dq >= config.setup);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(config.phases);
    let ids: Vec<LatchId> = (0..config.latches)
        .map(|i| {
            let phase = PhaseId::new(rng.gen_range(0..config.phases));
            if rng.gen_bool(config.flip_flop_prob) {
                b.add_flip_flop(format!("S{i}"), phase, config.setup, config.dq)
            } else {
                b.add_latch(format!("S{i}"), phase, config.setup, config.dq)
            }
        })
        .collect();
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < config.edges && guard < config.edges * 20 {
        guard += 1;
        let from = ids[rng.gen_range(0..ids.len())];
        let to = ids[rng.gen_range(0..ids.len())];
        if from == to {
            continue; // the SMO model treats same-latch loops specially; skip
        }
        let delay = rng.gen_range(config.delay_range.0..=config.delay_range.1);
        b.connect(from, to, delay);
        added += 1;
    }
    b.build().expect("generated circuit is structurally valid")
}

/// Uniformly jittered long-path delays for Monte-Carlo re-solves: edge
/// `e`'s delay is drawn from `[Δ·(1−spread), Δ·(1+spread)]`, one entry per
/// edge in `circuit.edges()` order.
///
/// This is the delay model behind `smo-core`'s sweep engine and `smo
/// sweep --param delay`: the perturbation touches only the *values* of the
/// delays, never the circuit structure, so every perturbed timing model
/// shares its constraint matrix (and hence its warm-start basis) with the
/// base model.
///
/// Deterministic for a given `(circuit, spread, seed)`; `spread = 0`
/// returns the delays unchanged.
///
/// # Panics
///
/// Panics unless `0 ≤ spread ≤ 1`.
pub fn perturbed_delays(circuit: &Circuit, spread: f64, seed: u64) -> Vec<f64> {
    assert!(
        (0.0..=1.0).contains(&spread),
        "spread must lie in [0, 1], got {spread}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    circuit
        .edges()
        .iter()
        .map(|e| {
            let d = e.max_delay;
            if spread == 0.0 || d == 0.0 {
                d
            } else {
                rng.gen_range((d * (1.0 - spread))..=(d * (1.0 + spread)))
            }
        })
        .collect()
}

/// A feed-forward pipeline of `stages + 1` latches cycling through the `k`
/// phases in order, with uniform-random stage delays; optionally closed
/// into a loop.
///
/// Deterministic for a given `(k, stages, seed)`.
///
/// # Panics
///
/// Panics if `k` or `stages` is zero.
pub fn pipeline(k: usize, stages: usize, close_loop: bool, seed: u64) -> Circuit {
    assert!(k >= 1 && stages >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(k);
    let n = stages + 1;
    let ids: Vec<LatchId> = (0..n)
        .map(|i| b.add_latch(format!("P{i}"), PhaseId::new(i % k), 2.0, 2.0))
        .collect();
    for w in ids.windows(2) {
        b.connect(w[0], w[1], rng.gen_range(5.0..40.0));
    }
    if close_loop {
        b.connect(ids[n - 1], ids[0], rng.gen_range(5.0..40.0));
    }
    b.build().expect("pipeline is structurally valid")
}

/// A ring of `l` latches alternating over `k` phases — the worst case for
/// naive cycle handling (one big SCC). Stage delays are uniform-random.
///
/// # Panics
///
/// Panics if `l < 2` or `k < 1`.
pub fn ring(l: usize, k: usize, seed: u64) -> Circuit {
    assert!(l >= 2 && k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(k);
    let ids: Vec<LatchId> = (0..l)
        .map(|i| b.add_latch(format!("R{i}"), PhaseId::new(i % k), 2.0, 2.0))
        .collect();
    for i in 0..l {
        b.connect(ids[i], ids[(i + 1) % l], rng.gen_range(5.0..40.0));
    }
    b.build().expect("ring is structurally valid")
}

/// A reduction tree: `2^depth` leaf latches on φ1 funnel through
/// intermediate latches into a single root — stresses large fan-in (`F` in
/// the paper's constraint-count bound).
///
/// # Panics
///
/// Panics if `depth` is zero or `k` is zero.
pub fn tree(depth: usize, k: usize, seed: u64) -> Circuit {
    assert!(depth >= 1 && k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(k);
    let mut level: Vec<LatchId> = (0..(1usize << depth))
        .map(|i| b.add_latch(format!("leaf{i}"), PhaseId::new(0), 1.0, 1.0))
        .collect();
    let mut lvl = 1usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for (i, pair) in level.chunks(2).enumerate() {
            let node = b.add_latch(format!("n{lvl}_{i}"), PhaseId::new(lvl % k), 1.0, 1.0);
            for &child in pair {
                b.connect(child, node, rng.gen_range(2.0..20.0));
            }
            next.push(node);
        }
        level = next;
        lvl += 1;
    }
    b.build().expect("tree is structurally valid")
}

/// Several feedback loops sharing a single hub latch — a generalization of
/// the paper's Example 2 structure. Loop `i` has `3 + (i % 3)` stages over
/// the `k` phases with seeded delays.
///
/// # Panics
///
/// Panics if `loops` is zero or `k` is zero.
pub fn multi_loop(loops: usize, k: usize, seed: u64) -> Circuit {
    assert!(loops >= 1 && k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(k);
    let hub = b.add_latch("hub", PhaseId::new(0), 1.0, 1.0);
    for li in 0..loops {
        let stages = 3 + (li % 3);
        let mut prev = hub;
        for s in 0..stages {
            let node = b.add_latch(format!("l{li}_{s}"), PhaseId::new((s + 1) % k), 1.0, 1.0);
            b.connect(prev, node, rng.gen_range(2.0..30.0));
            prev = node;
        }
        b.connect(prev, hub, rng.gen_range(2.0..30.0));
    }
    b.build().expect("multi-loop is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_circuit_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = random_circuit(&cfg, 42);
        let b = random_circuit(&cfg, 42);
        assert_eq!(a, b);
        let c = random_circuit(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_circuit_respects_counts() {
        let cfg = GenConfig {
            latches: 30,
            edges: 50,
            phases: 3,
            ..Default::default()
        };
        let c = random_circuit(&cfg, 7);
        assert_eq!(c.num_syncs(), 30);
        assert_eq!(c.num_edges(), 50);
        assert_eq!(c.num_phases(), 3);
    }

    #[test]
    fn random_circuit_can_mix_flip_flops() {
        let cfg = GenConfig {
            flip_flop_prob: 0.5,
            latches: 40,
            ..Default::default()
        };
        let c = random_circuit(&cfg, 1);
        assert!(c.num_flip_flops() > 0);
        assert!(c.num_latches() > 0);
    }

    #[test]
    fn pipeline_has_expected_shape() {
        let c = pipeline(2, 5, false, 3);
        assert_eq!(c.num_syncs(), 6);
        assert_eq!(c.num_edges(), 5);
        assert!(!c.has_feedback());
        let closed = pipeline(2, 5, true, 3);
        assert!(closed.has_feedback());
    }

    #[test]
    fn ring_is_one_big_cycle() {
        let c = ring(8, 4, 9);
        assert_eq!(c.num_edges(), 8);
        let cycles = c.cycles(10);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].latches.len(), 8);
    }

    #[test]
    fn tree_has_exponential_leaves_and_bounded_fanin() {
        let c = tree(4, 2, 1);
        assert_eq!(c.num_syncs(), 16 + 8 + 4 + 2 + 1);
        assert_eq!(c.max_fanin(), 2);
        assert!(!c.has_feedback());
    }

    #[test]
    fn multi_loop_hub_collects_all_loops() {
        let c = multi_loop(5, 3, 2);
        assert!(c.has_feedback());
        let hub = c.find("hub").unwrap();
        assert_eq!(c.fanin(hub).len(), 5);
        assert_eq!(c.fanout(hub).len(), 5);
        assert!(c.cycles(100).len() >= 5);
    }

    #[test]
    fn generators_solve_end_to_end() {
        // gen depends on circuit only; end-to-end solving is covered by
        // smo-core dev-dependency in integration tests — here just the
        // structural guarantees.
        for seed in 0..3 {
            let t = tree(3, 3, seed);
            assert!(t.num_edges() > 0);
            let m = multi_loop(3, 4, seed);
            assert!(m.num_edges() > 0);
        }
    }

    #[test]
    fn perturbed_delays_stay_in_band_and_are_seeded() {
        let c = random_circuit(&GenConfig::default(), 5);
        let a = perturbed_delays(&c, 0.2, 9);
        let b = perturbed_delays(&c, 0.2, 9);
        assert_eq!(a, b, "same seed, same draw");
        assert_ne!(a, perturbed_delays(&c, 0.2, 10));
        assert_eq!(a.len(), c.num_edges());
        for (e, d) in c.edges().iter().zip(&a) {
            assert!(*d >= e.max_delay * 0.8 - 1e-12 && *d <= e.max_delay * 1.2 + 1e-12);
        }
        // Zero spread is the identity.
        let base: Vec<f64> = c.edges().iter().map(|e| e.max_delay).collect();
        assert_eq!(perturbed_delays(&c, 0.0, 3), base);
    }

    #[test]
    fn generated_circuits_have_no_self_loops() {
        let cfg = GenConfig {
            latches: 5,
            edges: 40,
            ..Default::default()
        };
        let c = random_circuit(&cfg, 11);
        assert!(c.edges().iter().all(|e| e.from != e.to));
    }
}
