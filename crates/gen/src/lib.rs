//! # smo-gen — circuit generators and the paper's example circuits
//!
//! Two families of circuits for tests, benches and experiments:
//!
//! * [`paper`] — executable versions of the four circuits the paper uses:
//!   Example 1 (Fig. 5), a stand-in for Example 2 (Fig. 8), the GaAs MIPS
//!   datapath model of Example 3 (Fig. 10 + Table I), and the appendix
//!   circuit of Fig. 1;
//! * [`random`] — seeded random pipelines, rings and multi-phase circuits
//!   for property tests and scaling benchmarks;
//! * [`datapath`] — byte-deterministic pipelined datapaths (2–4 phase
//!   clocks, 1k–100k latches) that pass `smo lint` by construction — the
//!   circuit family behind `smo gen` and the scaling benchmarks;
//! * [`stress`] — pathological circuits (badly scaled delays, zero-delay
//!   loops, near-duplicate constraint rows, degenerate ties) for the
//!   numerical-robustness stress harness.
//!
//! ```
//! let circuit = smo_gen::paper::example1(80.0);
//! assert_eq!(circuit.num_latches(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datapath;
pub mod paper;
pub mod random;
pub mod stress;
