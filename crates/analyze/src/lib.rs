//! # smo-analyze — circuit lints, infeasibility diagnosis, constraint analysis
//!
//! Static-analysis companion to the SMO timing engine:
//!
//! * **Linting** ([`lint`], [`lint_with`]) — severity-tiered structural
//!   checks over a [`Circuit`](smo_circuit::Circuit), organised as
//!   registered [`passes`](passes::Pass) sharing one [`AnalysisContext`]
//!   (SCCs, reachability, connectivity, phase usage and the min/max delay
//!   closure are each computed once): dangling synchronizers, dead
//!   phases, duplicate paths, zero-delay transparent loops (critical
//!   races), thin flip-flop hold margins (measured `mindelay` data when
//!   present, a heuristic otherwise) and suspicious `Δ_DQ`/setup ratios.
//!   No LP is solved; this is a pure graph pass. A [`PassConfig`]
//!   suppresses or re-grades rules, and findings sort canonically so
//!   `--json` output is byte-deterministic.
//! * **Checking** ([`check`]) — the one-shot static gate behind
//!   `smo check`: lint passes + the cycle-time solve (graph or LP
//!   backend) + the paper's short-path constraint family. Every
//!   double-clocking race lands in the findings as an error with its
//!   [`ShortPathWitness`](smo_core::ShortPathWitness) text.
//! * **Diagnosis** ([`diagnose`]) — when a cycle-time target makes the
//!   timing LP infeasible, answer *why*: extract a Farkas-certified
//!   irreducible infeasible subsystem and map every member back to the
//!   paper's constraint names (C1–C3 clock rows, L1 setup, L2R
//!   propagation) with the latches and phases involved.
//! * **Constraint analysis** ([`analyze`]) — cross-check the combinatorial
//!   cycle-time bracket `lower ≤ Tc* ≤ upper` against the LP optimum solved
//!   both through the presolve pipeline and plain, and report which
//!   constraint families presolve removed. Any disagreement is a hard
//!   [`AnalyzeError`], not a finding.
//!
//! The passes back the `smo lint`, `smo diagnose` and `smo analyze` CLI
//! subcommands.
//!
//! ## Example
//!
//! ```
//! use smo_circuit::{CircuitBuilder, PhaseId};
//! use smo_analyze::{diagnose, lint, Diagnosis};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CircuitBuilder::new(2);
//! let l1 = b.add_latch("L1", PhaseId::from_number(1), 1.0, 2.0);
//! let l2 = b.add_latch("L2", PhaseId::from_number(2), 1.0, 2.0);
//! b.connect(l1, l2, 10.0);
//! b.connect(l2, l1, 10.0);
//! let circuit = b.build()?;
//!
//! assert!(lint(&circuit).is_clean());
//! match diagnose(&circuit, Some(1.0))? {
//!     Diagnosis::Infeasible(report) => assert!(report.certified),
//!     Diagnosis::Feasible { .. } => unreachable!("Tc ≤ 1 is impossible here"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod check;
mod context;
mod diagnose;
mod lint;
pub mod passes;
mod report;

pub use check::{check, CheckOptions, CheckReport};
pub use context::{AnalysisContext, PairDelays};
pub use diagnose::{diagnose, diagnose_with, Diagnosis};
pub use lint::{lint, lint_with, Finding, LintReport, PassConfig, Rule, Severity};
pub use report::{analyze, constraint_family, AnalyzeError, AnalyzeReport};
