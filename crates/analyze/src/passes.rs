//! The lint rules as registered passes over an [`AnalysisContext`].
//!
//! Each pass owns exactly one [`Rule`]: it reads the shared facts the
//! context computed once and emits [`Finding`]s through a plain `Vec`.
//! [`registry`] returns the full pass set in a fixed order; the framework
//! ([`lint_with`](crate::lint_with)) applies severity overrides and
//! suppressions afterwards, then sorts, so pass order never leaks into
//! reports.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::context::AnalysisContext;
use crate::lint::{Finding, Rule, Severity};
use smo_circuit::{LatchId, PhaseId, SyncKind};

/// `Δ_DQ / Δ_DC` ratio above which [`Rule::SuspiciousRatio`] fires.
const RATIO_LIMIT: f64 = 10.0;

/// Fraction of the long-path delay assumed reachable by early data when no
/// `mindelay` measurement exists (the hold-margin heuristic fallback).
const HEURISTIC_SHORT_FRACTION: f64 = 0.5;

/// One lint rule, packaged for the pass framework.
pub trait Pass {
    /// The single rule this pass owns.
    fn rule(&self) -> Rule;
    /// Runs the rule, appending findings for `self.rule()` only.
    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Finding>);
}

/// Every structural pass, in registration order. Order is immaterial to
/// output (findings are sorted afterwards) but stable for debugging.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(UnconstrainedSyncPass),
        Box::new(DeadPhasePass),
        Box::new(DuplicateEdgePass),
        Box::new(ZeroDelayLoopPass),
        Box::new(HoldMarginPass),
        Box::new(UnreachableFromCorePass),
        Box::new(DisconnectedComponentsPass),
        Box::new(SuspiciousRatioPass),
    ]
}

fn push(out: &mut Vec<Finding>, rule: Rule, severity: Severity, location: String, message: String) {
    out.push(Finding {
        rule,
        severity,
        location,
        message,
    });
}

/// `unconstrained-sync`: no fan-in and no fan-out.
struct UnconstrainedSyncPass;

impl Pass for UnconstrainedSyncPass {
    fn rule(&self) -> Rule {
        Rule::UnconstrainedSync
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Finding>) {
        for (id, s) in ctx.circuit().syncs() {
            if ctx.is_isolated(id) {
                push(
                    out,
                    self.rule(),
                    Severity::Warn,
                    s.name.clone(),
                    format!(
                        "{} `{}` has no fan-in and no fan-out; it constrains nothing",
                        s.kind, s.name
                    ),
                );
            }
        }
    }
}

/// `dead-phase`: a phase controlling no synchronizer.
struct DeadPhasePass;

impl Pass for DeadPhasePass {
    fn rule(&self) -> Rule {
        Rule::DeadPhase
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Finding>) {
        for i in 0..ctx.circuit().num_phases() {
            if !ctx.phase_used(i) {
                let phase = PhaseId::new(i);
                push(
                    out,
                    self.rule(),
                    Severity::Warn,
                    phase.to_string(),
                    format!("phase {phase} controls no synchronizer"),
                );
            }
        }
    }
}

/// `duplicate-edge`: repeated `(from, to)` pairs in the delay closure.
struct DuplicateEdgePass;

impl Pass for DuplicateEdgePass {
    fn rule(&self) -> Rule {
        Rule::DuplicateEdge
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Finding>) {
        let circuit = ctx.circuit();
        for (&(from, to), pair) in ctx.pair_delays() {
            let from = circuit.sync(LatchId::new(from));
            let to = circuit.sync(LatchId::new(to));
            for &dup in pair.edges.iter().skip(1) {
                push(
                    out,
                    self.rule(),
                    Severity::Warn,
                    format!("{}→{}#{}", from.name, to.name, dup),
                    format!(
                        "duplicate path `{}` → `{}`; only the slower delay constrains long paths",
                        from.name, to.name
                    ),
                );
            }
        }
    }
}

/// `zero-delay-loop`: an all-latch feedback cycle with zero total delay
/// (combinational + Δ_DQ) — data races around it while every latch on the
/// loop is transparent, and no clock schedule can stop it.
struct ZeroDelayLoopPass;

impl Pass for ZeroDelayLoopPass {
    fn rule(&self) -> Rule {
        Rule::ZeroDelayLoop
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Finding>) {
        let circuit = ctx.circuit();
        for cycle in ctx.cycles() {
            let all_latches = cycle
                .latches
                .iter()
                .all(|&l| circuit.sync(l).kind == SyncKind::Latch);
            if all_latches && circuit.cycle_delay(cycle) <= 0.0 {
                // Render with latch names, not the id-based `Cycle` display.
                let mut path: Vec<&str> = cycle
                    .latches
                    .iter()
                    .map(|&l| circuit.sync(l).name.as_str())
                    .collect();
                if let Some(&first) = path.first() {
                    path.push(first);
                }
                push(
                    out,
                    self.rule(),
                    Severity::Error,
                    path.join("→"),
                    format!(
                        "zero-delay loop through transparent latches ({}): critical race",
                        path.join(" → ")
                    ),
                );
            }
        }
    }
}

/// `hold-margin`: same-phase fan-in into a flip-flop with a hold
/// requirement larger than the short-path (contamination) delay.
///
/// When the edge carries a measured short path (`mindelay` in the netlist
/// or [`connect_min_max`](smo_circuit::CircuitBuilder::connect_min_max)),
/// the comparison is exact. Without a measurement the long-path delay is
/// the only data available, so the rule falls back to a heuristic: assume
/// early data can beat the long path by half and flag only when even
/// [`HEURISTIC_SHORT_FRACTION`]` × max_delay` undercuts the hold time.
struct HoldMarginPass;

impl Pass for HoldMarginPass {
    fn rule(&self) -> Rule {
        Rule::HoldMargin
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Finding>) {
        let circuit = ctx.circuit();
        for (idx, e) in circuit.edges().iter().enumerate() {
            let dst = circuit.sync(e.to);
            let src = circuit.sync(e.from);
            if dst.kind != SyncKind::FlipFlop || dst.hold <= 0.0 || src.phase != dst.phase {
                continue;
            }
            let location = format!("{}→{}#{}", src.name, dst.name, idx);
            if e.min_specified {
                if e.min_delay < dst.hold {
                    push(
                        out,
                        self.rule(),
                        Severity::Warn,
                        location,
                        format!(
                            "flip-flop `{}` requires hold {} but the same-phase path from `{}` \
                             can arrive after only {}",
                            dst.name, dst.hold, src.name, e.min_delay
                        ),
                    );
                }
            } else if HEURISTIC_SHORT_FRACTION * e.max_delay < dst.hold {
                push(
                    out,
                    self.rule(),
                    Severity::Warn,
                    location,
                    format!(
                        "flip-flop `{}` requires hold {} but the same-phase path from `{}` has \
                         no measured short-path delay, and half its long-path delay {} is only \
                         {}; add a `mindelay` line to settle it",
                        dst.name,
                        dst.hold,
                        src.name,
                        e.max_delay,
                        HEURISTIC_SHORT_FRACTION * e.max_delay
                    ),
                );
            }
        }
    }
}

/// `unreachable-from-core`: synchronizers with no path to or from any
/// cyclic SCC. A feed-forward circuit has no recurrent core, so the rule
/// is skipped entirely there rather than flagging every latch.
struct UnreachableFromCorePass;

impl Pass for UnreachableFromCorePass {
    fn rule(&self) -> Rule {
        Rule::UnreachableFromCore
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Finding>) {
        if !ctx.has_cyclic_core() {
            return;
        }
        for (id, s) in ctx.circuit().syncs() {
            // Completely isolated synchronizers are unconstrained-sync
            // territory; double-flagging them here is noise.
            if ctx.is_isolated(id) {
                continue;
            }
            if !ctx.downstream_of_core(id) && !ctx.upstream_of_core(id) {
                push(
                    out,
                    self.rule(),
                    Severity::Warn,
                    s.name.clone(),
                    format!(
                        "{} `{}` has no path to or from any feedback loop; it floats \
                         free of the circuit's recurrent core",
                        s.kind, s.name
                    ),
                );
            }
        }
    }
}

/// `disconnected-components`: the latch graph (ignoring completely
/// isolated synchronizers, which `unconstrained-sync` already flags)
/// splits into several weakly connected islands.
struct DisconnectedComponentsPass;

impl Pass for DisconnectedComponentsPass {
    fn rule(&self) -> Rule {
        Rule::DisconnectedComponents
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Finding>) {
        let roots = ctx.component_roots();
        if roots.len() > 1 {
            let names: Vec<String> = roots
                .iter()
                .map(|&r| format!("`{}`", ctx.circuit().sync(LatchId::new(r)).name))
                .collect();
            push(
                out,
                self.rule(),
                Severity::Warn,
                "graph".to_string(),
                format!(
                    "the constraint graph splits into {} disconnected components \
                     (containing {}); they couple only through the shared clock",
                    roots.len(),
                    names.join(", ")
                ),
            );
        }
    }
}

/// `suspicious-ratio`: zero setup, or Δ_DQ far larger than setup.
struct SuspiciousRatioPass;

impl Pass for SuspiciousRatioPass {
    fn rule(&self) -> Rule {
        Rule::SuspiciousRatio
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Finding>) {
        for (_, s) in ctx.circuit().syncs() {
            if s.setup <= 0.0 && s.dq > 0.0 {
                push(
                    out,
                    self.rule(),
                    Severity::Info,
                    s.name.clone(),
                    format!(
                        "{} `{}` has zero setup time but Δ_DQ = {}; setup rows degenerate",
                        s.kind, s.name, s.dq
                    ),
                );
            } else if s.setup > 0.0 && s.dq / s.setup > RATIO_LIMIT {
                push(
                    out,
                    self.rule(),
                    Severity::Info,
                    s.name.clone(),
                    format!(
                        "{} `{}` has Δ_DQ = {} over {}× its setup {}; check the units",
                        s.kind, s.name, s.dq, RATIO_LIMIT, s.setup
                    ),
                );
            }
        }
    }
}
