//! Shared analysis facts, computed once per circuit.
//!
//! Every lint pass used to recompute its own graph facts (SCCs,
//! reachability, connectivity) inline; [`AnalysisContext`] hoists them so
//! the pass framework computes each fact exactly once and every
//! [`Pass`](crate::passes::Pass) reads the same data.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use smo_circuit::{Circuit, Cycle, LatchId, PhaseId};
use std::collections::BTreeMap;

/// Bound on enumerated feedback cycles (cycle counts can be exponential).
pub(crate) const CYCLE_LIMIT: usize = 256;

/// Shared facts about one circuit: the graph decompositions and delay
/// summaries every pass may consult.
pub struct AnalysisContext<'c> {
    circuit: &'c Circuit,
    /// Representative feedback cycles (capped at [`CYCLE_LIMIT`]).
    cycles: Vec<Cycle>,
    /// Per-synchronizer: member of a cyclic SCC (feedback core).
    in_cyclic: Vec<bool>,
    /// Per-synchronizer: reachable *from* some cyclic core.
    downstream: Vec<bool>,
    /// Per-synchronizer: reaches some cyclic core.
    upstream: Vec<bool>,
    /// Union-find root per synchronizer (weak connectivity).
    component: Vec<usize>,
    /// Deduplicated roots of components containing at least one edge.
    component_roots: Vec<usize>,
    /// Per-phase: controls at least one synchronizer.
    phase_used: Vec<bool>,
    /// Delay closure over parallel paths: for each ordered `(from, to)`
    /// pair, the edge indices plus the envelope
    /// `(min short_delay, max max_delay)` across them.
    pairs: BTreeMap<(usize, usize), PairDelays>,
}

/// The delay envelope of all parallel `from → to` edges.
#[derive(Debug, Clone, PartialEq)]
pub struct PairDelays {
    /// Indices into [`Circuit::edges`] in declaration order.
    pub edges: Vec<usize>,
    /// Smallest effective short-path delay across the parallel edges.
    pub short_delay: f64,
    /// Largest long-path delay across the parallel edges.
    pub max_delay: f64,
}

impl<'c> AnalysisContext<'c> {
    /// Computes every shared fact for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        let n = circuit.num_syncs();

        // Feedback cores: SCCs of size > 1, or singletons with a self-edge.
        let mut in_cyclic = vec![false; n];
        for comp in circuit.sccs() {
            let cyclic = comp.len() > 1
                || comp.len() == 1 && {
                    let l = comp[0];
                    circuit.fanout(l).iter().any(|&e| {
                        let edge = &circuit.edges()[e.index()];
                        edge.to == l
                    })
                };
            if cyclic {
                for l in comp {
                    in_cyclic[l.index()] = true;
                }
            }
        }

        // Forward/backward reachability from the cyclic cores.
        let reach = |forward: bool| -> Vec<bool> {
            let mut seen = in_cyclic.clone();
            let mut stack: Vec<usize> = (0..n).filter(|&i| in_cyclic[i]).collect();
            while let Some(i) = stack.pop() {
                let id = LatchId::new(i);
                let edges = if forward {
                    circuit.fanout(id)
                } else {
                    circuit.fanin(id)
                };
                for &e in edges {
                    let edge = &circuit.edges()[e.index()];
                    let next = if forward { edge.to } else { edge.from };
                    if !seen[next.index()] {
                        seen[next.index()] = true;
                        stack.push(next.index());
                    }
                }
            }
            seen
        };
        let downstream = reach(true);
        let upstream = reach(false);

        // Weak connectivity by union-find with path halving.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for e in circuit.edges() {
            let (a, b) = (
                find(&mut parent, e.from.index()),
                find(&mut parent, e.to.index()),
            );
            parent[a] = b;
        }
        let component: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
        let mut component_roots: Vec<usize> = (0..n)
            .filter(|&i| {
                let id = LatchId::new(i);
                !(circuit.fanin(id).is_empty() && circuit.fanout(id).is_empty())
            })
            .map(|i| component[i])
            .collect();
        component_roots.sort_unstable();
        component_roots.dedup();

        // Phase usage.
        let phase_used = (0..circuit.num_phases())
            .map(|i| circuit.syncs_on_phase(PhaseId::new(i)).next().is_some())
            .collect();

        // Parallel-path delay closure.
        let mut pairs: BTreeMap<(usize, usize), PairDelays> = BTreeMap::new();
        for (idx, e) in circuit.edges().iter().enumerate() {
            let entry = pairs
                .entry((e.from.index(), e.to.index()))
                .or_insert(PairDelays {
                    edges: Vec::new(),
                    short_delay: f64::INFINITY,
                    max_delay: f64::NEG_INFINITY,
                });
            entry.edges.push(idx);
            entry.short_delay = entry.short_delay.min(e.short_delay());
            entry.max_delay = entry.max_delay.max(e.max_delay);
        }

        AnalysisContext {
            circuit,
            cycles: circuit.cycles(CYCLE_LIMIT),
            in_cyclic,
            downstream,
            upstream,
            component,
            component_roots,
            phase_used,
            pairs,
        }
    }

    /// The circuit under analysis.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Representative feedback cycles, capped at [`CYCLE_LIMIT`].
    pub fn cycles(&self) -> &[Cycle] {
        &self.cycles
    }

    /// `true` when the synchronizer belongs to a cyclic SCC.
    pub fn in_cyclic_core(&self, id: LatchId) -> bool {
        self.in_cyclic[id.index()]
    }

    /// `true` when any cyclic SCC exists.
    pub fn has_cyclic_core(&self) -> bool {
        self.in_cyclic.iter().any(|&c| c)
    }

    /// `true` when the synchronizer is reachable from some cyclic core.
    pub fn downstream_of_core(&self, id: LatchId) -> bool {
        self.downstream[id.index()]
    }

    /// `true` when the synchronizer reaches some cyclic core.
    pub fn upstream_of_core(&self, id: LatchId) -> bool {
        self.upstream[id.index()]
    }

    /// `true` when the synchronizer has neither fan-in nor fan-out.
    pub fn is_isolated(&self, id: LatchId) -> bool {
        self.circuit.fanin(id).is_empty() && self.circuit.fanout(id).is_empty()
    }

    /// Union-find root of the synchronizer's weakly connected component.
    pub fn component_root(&self, id: LatchId) -> usize {
        self.component[id.index()]
    }

    /// Deduplicated, sorted roots of components containing at least one
    /// edge (isolated synchronizers are excluded — they are
    /// `unconstrained-sync` territory).
    pub fn component_roots(&self) -> &[usize] {
        &self.component_roots
    }

    /// `true` when the phase controls at least one synchronizer.
    pub fn phase_used(&self, index: usize) -> bool {
        self.phase_used[index]
    }

    /// The parallel-path delay closure, keyed by
    /// `(from.index(), to.index())` in sorted order.
    pub fn pair_delays(&self) -> &BTreeMap<(usize, usize), PairDelays> {
        &self.pairs
    }
}
