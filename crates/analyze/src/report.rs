//! `smo analyze` — the constraint-system report.
//!
//! One pass that cross-checks the three views of a circuit's cycle time:
//!
//! 1. the **combinatorial bracket** `lower ≤ Tc* ≤ upper` from
//!    [`smo_core::cycle_time_bounds`] (no LP),
//! 2. the **LP optimum** solved through the presolve pipeline
//!    ([`Problem::solve_with_presolve`](smo_lp::Problem::solve_with_presolve)),
//! 3. the **LP optimum without presolve**, as a soundness witness.
//!
//! The three must agree — the bracket must contain the optimum and the two
//! solves must return the same objective — or [`analyze`] returns a hard
//! [`AnalyzeError`] rather than a report: a disagreement means a bug in the
//! bound derivation or the presolve reductions, not in the circuit.
//!
//! The report also names, family by family (the paper's C1–C3 clock rows,
//! L1 setup, L2R propagation, flip-flop rows), which constraints presolve
//! removed before the simplex ran.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use smo_circuit::Circuit;
use smo_core::{
    classify_model, cycle_time_bounds, min_cycle_time_with, Backend, ConstraintKind,
    CycleTimeBounds, MlpOptions, TimingError, TimingModel,
};
use smo_lp::{LpError, PresolveOptions, PresolveStats, RowFate, SimplexVariant};
use std::fmt;

/// Objective agreement tolerance between the presolved and plain solves.
/// On the shipped circuits the two paths are bit-identical; the tolerance
/// only guards against platform-dependent rounding on exotic inputs.
const AGREE_TOL: f64 = 1e-9;

/// The paper-facing constraint families used for the removal breakdown.
/// Ordered as they appear in §III of the paper.
const FAMILIES: [&str; 8] = [
    "C1",
    "C2",
    "C3",
    "L1",
    "L2R",
    "FF setup",
    "FF departure",
    "extra",
];

/// Maps a row's provenance to its paper family (index into [`FAMILIES`]).
fn family_index(kind: ConstraintKind) -> usize {
    match kind {
        ConstraintKind::PeriodicityWidth | ConstraintKind::PeriodicityStart => 0,
        ConstraintKind::PhaseOrder => 1,
        ConstraintKind::PhaseNonoverlap => 2,
        ConstraintKind::Setup => 3,
        ConstraintKind::Propagation => 4,
        ConstraintKind::FlipFlopSetup => 5,
        ConstraintKind::FlipFlopDeparture => 6,
        ConstraintKind::MinWidth
        | ConstraintKind::CycleBound
        | ConstraintKind::SymmetricClock
        | ConstraintKind::PinnedDeparture => 7,
    }
}

/// Why [`analyze`] could not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// Building or solving the timing model failed.
    Timing(String),
    /// The LP optimum fell outside the combinatorial bracket — an internal
    /// soundness failure (bug in the bounds or the model), never a property
    /// of the circuit.
    BoundsDisagree {
        /// Certified combinatorial lower bound.
        lower: f64,
        /// Certified combinatorial upper bound.
        upper: f64,
        /// The LP optimum that escaped the bracket.
        optimum: f64,
    },
    /// The presolved and plain solves returned different optima — an
    /// internal soundness failure in the presolve/postsolve pair.
    PresolveDisagree {
        /// Optimum through the presolve pipeline.
        with_presolve: f64,
        /// Optimum of the untouched problem.
        without_presolve: f64,
    },
    /// The difference-constraint graph backend and the simplex returned
    /// different optima on a pure-difference model — an internal soundness
    /// failure in one of the two solvers.
    BackendDisagree {
        /// Exact optimum from the min-cycle-ratio graph solver.
        graph: f64,
        /// Optimum from the (certified) simplex.
        lp: f64,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Timing(reason) => write!(f, "{reason}"),
            AnalyzeError::BoundsDisagree {
                lower,
                upper,
                optimum,
            } => write!(
                f,
                "soundness failure: LP optimum {optimum} escapes the certified \
                 combinatorial bracket [{lower}, {upper}]"
            ),
            AnalyzeError::PresolveDisagree {
                with_presolve,
                without_presolve,
            } => write!(
                f,
                "soundness failure: presolved solve returned {with_presolve} but the \
                 plain solve returned {without_presolve}"
            ),
            AnalyzeError::BackendDisagree { graph, lp } => write!(
                f,
                "soundness failure: graph backend returned Tc* = {graph} but the \
                 simplex returned {lp} on a pure difference-constraint model"
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<TimingError> for AnalyzeError {
    fn from(e: TimingError) -> Self {
        AnalyzeError::Timing(e.to_string())
    }
}

impl From<LpError> for AnalyzeError {
    fn from(e: LpError) -> Self {
        AnalyzeError::Timing(e.to_string())
    }
}

/// The `smo analyze` report: bracket, LP optimum, and presolve breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeReport {
    /// Synchronizer count of the circuit.
    pub num_syncs: usize,
    /// Combinational path count of the circuit.
    pub num_edges: usize,
    /// Clock phase count of the circuit.
    pub num_phases: usize,
    /// The combinatorial bracket and its per-SCC critical cycles.
    pub bounds: CycleTimeBounds,
    /// Names of the synchronizers on each critical cycle, one string per
    /// cyclic SCC, in the same (decreasing-ratio) order as
    /// `bounds.critical`.
    pub critical_names: Vec<String>,
    /// The LP optimum `Tc*`, solved through the presolve pipeline and
    /// cross-checked against the plain solve.
    pub optimum: f64,
    /// `optimum == bounds.lower` up to `1e-6` relative — the bracket is
    /// tight and the critical cycle alone determines the cycle time.
    pub lower_is_tight: bool,
    /// Row/variable reduction counters from presolve.
    pub presolve: PresolveStats,
    /// Rows removed by presolve per paper family, in §III order:
    /// C1, C2, C3, L1, L2R, FF setup, FF departure, extra.
    pub removed_by_family: Vec<(&'static str, usize)>,
    /// Constraint-classifier coverage per paper family, in §III order:
    /// `(family, rows, difference_rows)` where `difference_rows` counts the
    /// rows in the difference fragment (two-variable difference,
    /// single-variable, or parameter-only under the recombination).
    pub classified_by_family: Vec<(&'static str, usize, usize)>,
    /// Rows outside the difference fragment (zero means the graph backend
    /// solves this model exactly).
    pub num_general_rows: usize,
    /// Exact optimum from the min-cycle-ratio graph backend, when the model
    /// is pure-difference (`None` when general rows force the simplex).
    /// Always cross-checked against the LP optimum before the report is
    /// returned.
    pub graph_optimum: Option<f64>,
    /// Independent KKT certificate for the plain cross-check solve: the
    /// reported optimum is not just "what the simplex said" but has been
    /// re-verified from the raw constraint data (primal/dual feasibility,
    /// complementary slackness, duality gap).
    pub certificate: Option<smo_lp::Certificate>,
}

impl AnalyzeReport {
    /// Total rows presolve removed (any family).
    pub fn rows_removed(&self) -> usize {
        self.presolve.rows_removed()
    }

    /// Renders the report as a JSON object (hand-rolled, schema mirroring
    /// the `Display` output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"synchronizers\": {},\n", self.num_syncs));
        out.push_str(&format!("  \"paths\": {},\n", self.num_edges));
        out.push_str(&format!("  \"phases\": {},\n", self.num_phases));
        out.push_str(&format!(
            "  \"bracket\": {{\"lower\": {}, \"upper\": {}, \"stage_bound\": {}, \"setup_floor\": {}}},\n",
            self.bounds.lower, self.bounds.upper, self.bounds.stage_bound, self.bounds.setup_floor
        ));
        out.push_str("  \"critical_cycles\": [\n");
        for (i, (c, names)) in self
            .bounds
            .critical
            .iter()
            .zip(&self.critical_names)
            .enumerate()
        {
            out.push_str(&format!(
                "    {{\"cycle\": \"{}\", \"delay\": {}, \"wraps\": {}, \"ratio\": {}}}{}\n",
                json_escape(names),
                c.weight,
                c.wraps,
                c.ratio,
                if i + 1 < self.bounds.critical.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"optimum\": {},\n", self.optimum));
        match &self.certificate {
            Some(cert) => {
                out.push_str("  \"certificate\": {");
                out.push_str(&format!(
                    "\"valid\": {}, \"tolerance\": {:e}, \"worst_residual\": {:e}, \"residuals\": {{",
                    cert.is_valid(),
                    cert.tol(),
                    cert.worst()
                ));
                for (j, (name, value)) in cert.residuals().iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {:e}", json_escape(name), value));
                }
                out.push_str("}},\n");
            }
            None => out.push_str("  \"certificate\": null,\n"),
        }
        out.push_str(&format!("  \"lower_is_tight\": {},\n", self.lower_is_tight));
        out.push_str(&format!(
            "  \"presolve\": {{\"rows_before\": {}, \"rows_after\": {}, \"vars_before\": {}, \
             \"vars_after\": {}, \"fixed_vars\": {}, \"tightened_bounds\": {}, \"passes\": {}}},\n",
            self.presolve.rows_before,
            self.presolve.rows_after,
            self.presolve.vars_before,
            self.presolve.vars_after,
            self.presolve.fixed_vars,
            self.presolve.tightened_bounds,
            self.presolve.passes
        ));
        out.push_str("  \"removed_by_family\": {");
        let mut first = true;
        for (family, n) in &self.removed_by_family {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {}", json_escape(family), n));
        }
        out.push_str("},\n");
        let total_rows: usize = self.classified_by_family.iter().map(|(_, r, _)| r).sum();
        let diff_rows: usize = self.classified_by_family.iter().map(|(_, _, d)| d).sum();
        out.push_str(&format!(
            "  \"classification\": {{\"rows\": {total_rows}, \"difference\": {diff_rows}, \
             \"general\": {}, \"by_family\": {{",
            self.num_general_rows
        ));
        let mut first = true;
        for (family, rows, diff) in &self.classified_by_family {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{}\": {{\"rows\": {rows}, \"difference\": {diff}}}",
                json_escape(family)
            ));
        }
        out.push_str("}},\n");
        match self.graph_optimum {
            Some(g) => out.push_str(&format!("  \"graph_optimum\": {g}\n}}")),
            None => out.push_str("  \"graph_optimum\": null\n}"),
        }
        out
    }
}

impl fmt::Display for AnalyzeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} synchronizer(s), {} path(s), {} phase(s)",
            self.num_syncs, self.num_edges, self.num_phases
        )?;
        writeln!(
            f,
            "cycle-time bracket: {} <= Tc* <= {}  (worst flip-flop stage W = {})",
            self.bounds.lower, self.bounds.upper, self.bounds.stage_bound
        )?;
        if self.bounds.critical.is_empty() {
            writeln!(
                f,
                "  no feedback cycles; lower bound from single-row floors"
            )?;
        }
        for (c, names) in self.bounds.critical.iter().zip(&self.critical_names) {
            writeln!(
                f,
                "  critical cycle: {}  (delay {} over {} wrap(s): Tc >= {})",
                names, c.weight, c.wraps, c.ratio
            )?;
        }
        writeln!(
            f,
            "LP optimum: Tc* = {}{}",
            self.optimum,
            if self.lower_is_tight {
                "  (lower bound is tight: the critical cycle sets the clock)"
            } else {
                ""
            }
        )?;
        if let Some(cert) = &self.certificate {
            writeln!(f, "  {cert}")?;
        }
        let total_rows: usize = self.classified_by_family.iter().map(|(_, r, _)| r).sum();
        let diff_rows: usize = self.classified_by_family.iter().map(|(_, _, d)| d).sum();
        let pct = if total_rows > 0 {
            100.0 * diff_rows as f64 / total_rows as f64
        } else {
            100.0
        };
        writeln!(
            f,
            "constraint classes: {diff_rows}/{total_rows} rows ({pct:.1}%) in the \
             difference fragment, {} general",
            self.num_general_rows
        )?;
        let by_family: Vec<String> = self
            .classified_by_family
            .iter()
            .filter(|(_, rows, _)| *rows > 0)
            .map(|(family, rows, diff)| format!("{family} {diff}/{rows}"))
            .collect();
        if !by_family.is_empty() {
            writeln!(f, "  by family: {}", by_family.join(", "))?;
        }
        match self.graph_optimum {
            Some(g) => writeln!(
                f,
                "graph backend: Tc* = {g} (exact min-cycle-ratio, agrees with the LP)"
            )?,
            None => writeln!(
                f,
                "graph backend: not exact here (general rows present); simplex decides"
            )?,
        }
        writeln!(f, "presolve: {}", self.presolve)?;
        let removed: Vec<String> = self
            .removed_by_family
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(family, n)| format!("{family} x{n}"))
            .collect();
        if removed.is_empty() {
            writeln!(f, "  no rows removed; the model is already irredundant")?;
        } else {
            writeln!(f, "  removed by family: {}", removed.join(", "))?;
        }
        Ok(())
    }
}

/// Analyzes `circuit`: computes the combinatorial bracket, solves the LP
/// through presolve, cross-checks both against the plain solve, and
/// reports what presolve removed.
///
/// # Errors
///
/// [`AnalyzeError::Timing`] when the model cannot be built or solved;
/// [`AnalyzeError::BoundsDisagree`] / [`AnalyzeError::PresolveDisagree`]
/// when a soundness cross-check fails (these indicate an internal bug, and
/// `smo analyze` surfaces them with a distinct exit code).
pub fn analyze(circuit: &Circuit) -> Result<AnalyzeReport, AnalyzeError> {
    let model = TimingModel::build(circuit)?;

    // Static classification: which rows the difference-constraint graph
    // backend can represent, family by family.
    let cls = classify_model(circuit, &model)?;
    let mut class_rows = vec![0usize; FAMILIES.len()];
    let mut class_diff = vec![0usize; FAMILIES.len()];
    for info in model.constraints() {
        let fam = family_index(info.kind);
        class_rows[fam] += 1;
        if cls.class(info.row).is_difference_fragment() {
            class_diff[fam] += 1;
        }
    }

    // Presolve for the reduction breakdown.
    let opts = PresolveOptions::default();
    let pre = model.problem().presolve(&opts);
    let mut removed = vec![0usize; FAMILIES.len()];
    for info in model.constraints() {
        match pre.row_fate(info.row) {
            RowFate::Kept(_) => {}
            _ => removed[family_index(info.kind)] += 1,
        }
    }

    // Solve twice — through presolve and plain — and insist they agree.
    let presolved_sol = model
        .problem()
        .solve_with_presolve(SimplexVariant::Dense, &opts)?;
    let with_presolve = match presolved_sol.status() {
        smo_lp::Status::Optimal => match presolved_sol.objective() {
            Some(objective) => objective,
            None => {
                return Err(AnalyzeError::Timing(
                    "presolved solve reported optimal without an objective".into(),
                ))
            }
        },
        smo_lp::Status::Infeasible => {
            return Err(AnalyzeError::Timing(
                "the clock and latch constraints admit no schedule".into(),
            ))
        }
        smo_lp::Status::Unbounded => return Err(TimingError::Unbounded.into()),
    };
    // The plain solve doubles as the certified witness: its verdict is
    // re-verified from the raw constraint data (walking the numerical
    // recovery ladder if the first attempt does not certify).
    let (plain_sol, certificate) = model.solve_lp_certified(&smo_lp::RecoveryPolicy::default())?;
    let without_presolve = plain_sol.objective();
    if (with_presolve - without_presolve).abs() > AGREE_TOL * (1.0 + without_presolve.abs()) {
        return Err(AnalyzeError::PresolveDisagree {
            with_presolve,
            without_presolve,
        });
    }

    // On pure-difference models the graph backend solves the same problem
    // exactly; its optimum and the simplex's must coincide.
    let graph_optimum = if cls.is_pure() {
        let graph_sol = min_cycle_time_with(
            circuit,
            &MlpOptions {
                backend: Backend::Graph,
                ..Default::default()
            },
        )?;
        let graph = graph_sol.cycle_time();
        if (graph - without_presolve).abs() > AGREE_TOL * (1.0 + without_presolve.abs()) {
            return Err(AnalyzeError::BackendDisagree {
                graph,
                lp: without_presolve,
            });
        }
        Some(graph)
    } else {
        None
    };

    // The combinatorial bracket must contain the optimum.
    let bounds = cycle_time_bounds(circuit);
    if !bounds.brackets(with_presolve) {
        return Err(AnalyzeError::BoundsDisagree {
            lower: bounds.lower,
            upper: bounds.upper,
            optimum: with_presolve,
        });
    }

    let critical_names = bounds
        .critical
        .iter()
        .map(|c| {
            let mut names: Vec<&str> = c
                .cycle
                .latches
                .iter()
                .map(|&l| circuit.sync(l).name.as_str())
                .collect();
            if let Some(&first) = names.first() {
                names.push(first);
            }
            names.join(" → ")
        })
        .collect();
    let lower_is_tight = (with_presolve - bounds.lower).abs() <= 1e-6 * (1.0 + bounds.lower.abs());

    Ok(AnalyzeReport {
        num_syncs: circuit.num_syncs(),
        num_edges: circuit.num_edges(),
        num_phases: circuit.num_phases(),
        bounds,
        critical_names,
        optimum: with_presolve,
        lower_is_tight,
        presolve: *pre.stats(),
        removed_by_family: FAMILIES.iter().copied().zip(removed).collect(),
        classified_by_family: FAMILIES
            .iter()
            .copied()
            .zip(class_rows.iter().copied().zip(class_diff.iter().copied()))
            .map(|(f, (r, d))| (f, r, d))
            .collect(),
        num_general_rows: cls.num_general(),
        graph_optimum,
        certificate: Some(certificate),
    })
}

/// Which paper family a given original LP row belongs to, by provenance.
/// Exposed for callers that want their own breakdowns over
/// [`TimingModel::constraints`].
pub fn constraint_family(kind: ConstraintKind) -> &'static str {
    FAMILIES[family_index(kind)]
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    /// The paper's Example 1 (Fig. 5) at Δ41 = 80 ns; optimum Tc = 110.
    fn example1() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 10.0, 10.0);
        let l2 = b.add_latch("L2", p(2), 10.0, 10.0);
        let l3 = b.add_latch("L3", p(1), 10.0, 10.0);
        let l4 = b.add_latch("L4", p(2), 10.0, 10.0);
        b.connect(l1, l2, 20.0);
        b.connect(l2, l3, 20.0);
        b.connect(l3, l4, 60.0);
        b.connect(l4, l1, 80.0);
        b.build().unwrap()
    }

    #[test]
    fn example1_report_is_tight_and_names_the_loop() {
        let r = analyze(&example1()).unwrap();
        assert_eq!(r.optimum, 110.0);
        assert_eq!(r.bounds.lower, 110.0);
        assert!(r.lower_is_tight);
        assert_eq!(r.critical_names.len(), 1);
        assert_eq!(r.critical_names[0], "L1 → L2 → L3 → L4 → L1");
        let text = r.to_string();
        assert!(text.contains("110 <= Tc* <= 180"), "{text}");
        assert!(text.contains("critical cycle: L1 → L2 → L3 → L4 → L1"));
        assert!(text.contains("lower bound is tight"));
    }

    #[test]
    fn flip_flops_feed_the_presolve_breakdown() {
        // Flip-flop departures are `D = 0` equality singletons: presolve
        // folds them and the breakdown names the family.
        let mut b = CircuitBuilder::new(2);
        let f1 = b.add_flip_flop("F1", p(1), 1.0, 2.0);
        let f2 = b.add_flip_flop("F2", p(2), 1.0, 2.0);
        b.connect(f1, f2, 10.0);
        b.connect(f2, f1, 10.0);
        let r = analyze(&b.build().unwrap()).unwrap();
        assert!(r.rows_removed() >= 2, "stats: {}", r.presolve);
        let ff = r
            .removed_by_family
            .iter()
            .find(|(f, _)| *f == "FF departure")
            .unwrap();
        assert!(ff.1 >= 2);
        assert!(r.to_string().contains("FF departure x"));
    }

    #[test]
    fn json_mirrors_the_display_content() {
        let r = analyze(&example1()).unwrap();
        let json = r.to_json();
        assert!(json.contains("\"optimum\": 110"));
        assert!(json.contains("\"lower\": 110"));
        assert!(json.contains("\"upper\": 180"));
        assert!(json.contains("L1 → L2 → L3 → L4 → L1"));
        assert!(json.contains("\"removed_by_family\""));
    }

    #[test]
    fn report_carries_a_valid_certificate() {
        let r = analyze(&example1()).unwrap();
        let cert = r.certificate.as_ref().expect("cross-check is certified");
        assert!(cert.is_valid(), "{cert}");
        assert!(r.to_string().contains("certified optimal"));
        let json = r.to_json();
        assert!(json.contains("\"certificate\": {\"valid\": true"), "{json}");
        assert!(json.contains("\"worst_residual\""), "{json}");
        assert!(json.contains("\"duality gap\""), "{json}");
    }

    #[test]
    fn families_cover_every_constraint_kind() {
        for kind in [
            ConstraintKind::PeriodicityWidth,
            ConstraintKind::PeriodicityStart,
            ConstraintKind::PhaseOrder,
            ConstraintKind::PhaseNonoverlap,
            ConstraintKind::Setup,
            ConstraintKind::FlipFlopSetup,
            ConstraintKind::Propagation,
            ConstraintKind::FlipFlopDeparture,
            ConstraintKind::MinWidth,
            ConstraintKind::CycleBound,
            ConstraintKind::SymmetricClock,
            ConstraintKind::PinnedDeparture,
        ] {
            assert!(FAMILIES.contains(&constraint_family(kind)));
        }
        assert_eq!(constraint_family(ConstraintKind::PhaseNonoverlap), "C3");
        assert_eq!(constraint_family(ConstraintKind::Propagation), "L2R");
    }

    #[test]
    fn classifier_coverage_is_total_on_default_models() {
        let r = analyze(&example1()).unwrap();
        // Every default-model row lies in the difference fragment, so the
        // graph backend is exact and must agree with the simplex.
        assert_eq!(r.num_general_rows, 0);
        let total: usize = r.classified_by_family.iter().map(|(_, n, _)| n).sum();
        let diff: usize = r.classified_by_family.iter().map(|(_, _, d)| d).sum();
        assert_eq!(total, diff);
        assert!(total > 0);
        assert_eq!(r.graph_optimum, Some(110.0));
        let text = r.to_string();
        assert!(text.contains("difference fragment"), "{text}");
        assert!(text.contains("graph backend: Tc* = 110"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"classification\""), "{json}");
        assert!(json.contains("\"graph_optimum\": 110"), "{json}");
        assert!(json.contains("\"L1\": {\"rows\": "), "{json}");
    }

    #[test]
    fn disagreement_errors_render_distinctly() {
        let b = AnalyzeError::BoundsDisagree {
            lower: 10.0,
            upper: 20.0,
            optimum: 25.0,
        };
        assert!(b.to_string().contains("escapes the certified"));
        let p = AnalyzeError::PresolveDisagree {
            with_presolve: 10.0,
            without_presolve: 11.0,
        };
        assert!(p.to_string().contains("presolved solve"));
        let g = AnalyzeError::BackendDisagree {
            graph: 10.0,
            lp: 11.0,
        };
        assert!(g.to_string().contains("graph backend"));
    }
}
