//! "Why is there no feasible schedule?" — the diagnosis entry points.
//!
//! Thin orchestration over [`smo_core::diagnose_infeasibility`]: build the
//! timing model (optionally with a cycle-time cap), solve it, and either
//! report the optimum or explain the conflict.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use smo_circuit::Circuit;
use smo_core::{
    diagnose_infeasibility, ConstraintOptions, InfeasibilityReport, TimingError, TimingModel,
};
use std::fmt;

/// The outcome of a diagnosis run.
#[derive(Debug, Clone, PartialEq)]
pub enum Diagnosis {
    /// A schedule exists; `min_cycle` is the optimal cycle time under the
    /// options used (i.e. the smallest feasible `T_c`).
    Feasible {
        /// Optimal cycle time.
        min_cycle: f64,
    },
    /// No schedule exists; the report names the conflicting constraints.
    Infeasible(InfeasibilityReport),
}

impl Diagnosis {
    /// `true` for the [`Diagnosis::Feasible`] arm.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Diagnosis::Feasible { .. })
    }

    /// The infeasibility report, if any.
    pub fn report(&self) -> Option<&InfeasibilityReport> {
        match self {
            Diagnosis::Feasible { .. } => None,
            Diagnosis::Infeasible(r) => Some(r),
        }
    }

    /// Renders the diagnosis as a JSON object (hand-rolled, matching
    /// [`InfeasibilityReport::to_json`] in the infeasible case).
    pub fn to_json(&self) -> String {
        match self {
            Diagnosis::Feasible { min_cycle } => {
                format!("{{\n  \"feasible\": true,\n  \"min_cycle\": {min_cycle}\n}}")
            }
            Diagnosis::Infeasible(r) => r.to_json(),
        }
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnosis::Feasible { min_cycle } => {
                write!(f, "feasible: minimum cycle time {min_cycle}")
            }
            Diagnosis::Infeasible(r) => write!(f, "{r}"),
        }
    }
}

/// Diagnoses `circuit` under explicit [`ConstraintOptions`].
///
/// # Errors
///
/// Propagates model-building and LP errors; an unbounded LP maps to
/// [`TimingError::Unbounded`].
pub fn diagnose_with(
    circuit: &Circuit,
    options: &ConstraintOptions,
) -> Result<Diagnosis, TimingError> {
    let model = TimingModel::build_with(circuit, options)?;
    match diagnose_infeasibility(circuit, &model)? {
        Some(report) => Ok(Diagnosis::Infeasible(report)),
        None => {
            let sol = model.solve_lp()?;
            Ok(Diagnosis::Feasible {
                min_cycle: sol.objective(),
            })
        }
    }
}

/// Diagnoses `circuit`, optionally capped at a target cycle time.
///
/// With `cycle_time = None` the plain SMO model is solved (always
/// feasible for a valid circuit, so this reports the optimum `T_c`).
/// With `Some(t)` an upper bound `T_c ≤ t` is added — the "can I clock
/// this at `t`?" question — and an infeasible answer comes back with the
/// full conflict report.
///
/// # Errors
///
/// See [`diagnose_with`].
pub fn diagnose(circuit: &Circuit, cycle_time: Option<f64>) -> Result<Diagnosis, TimingError> {
    let options = ConstraintOptions {
        max_cycle: cycle_time,
        ..Default::default()
    };
    diagnose_with(circuit, &options)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId};
    use smo_core::ConstraintKind;

    /// The paper's Example 1 (Fig. 5) at Δ41 = 80 ns; optimum Tc = 110.
    fn example1() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let p1 = PhaseId::from_number(1);
        let p2 = PhaseId::from_number(2);
        let l1 = b.add_latch("L1", p1, 10.0, 10.0);
        let l2 = b.add_latch("L2", p2, 10.0, 10.0);
        let l3 = b.add_latch("L3", p1, 10.0, 10.0);
        let l4 = b.add_latch("L4", p2, 10.0, 10.0);
        b.connect(l1, l2, 20.0);
        b.connect(l2, l3, 20.0);
        b.connect(l3, l4, 60.0);
        b.connect(l4, l1, 80.0);
        b.build().unwrap()
    }

    #[test]
    fn uncapped_example1_reports_the_paper_optimum() {
        let d = diagnose(&example1(), None).unwrap();
        match d {
            Diagnosis::Feasible { min_cycle } => assert!((min_cycle - 110.0).abs() < 1e-6),
            Diagnosis::Infeasible(_) => panic!("plain SMO model must be feasible"),
        }
        assert!(d.to_json().contains("\"feasible\": true"));
    }

    #[test]
    fn achievable_cap_stays_feasible() {
        let d = diagnose(&example1(), Some(120.0)).unwrap();
        assert!(d.is_feasible());
    }

    #[test]
    fn impossible_cap_names_the_conflict() {
        let d = diagnose(&example1(), Some(100.0)).unwrap();
        let report = d.report().expect("Tc ≤ 100 < 110 is infeasible");
        assert!(report.certified);
        assert!(report.involves(ConstraintKind::CycleBound));
        let text = d.to_string();
        assert!(text.contains("no feasible clock schedule at cycle time 100"));
        assert!(d.to_json().contains("\"feasible\": false"));
    }
}
