//! Circuit lints: structural and parametric sanity checks.
//!
//! The timing engine answers "what is the minimum cycle time?"; the linter
//! answers "does this circuit description even make sense?". Each rule is
//! a [`Pass`](crate::passes::Pass) over a shared
//! [`AnalysisContext`](crate::AnalysisContext) — no LP is solved — and
//! reports [`Finding`]s at three severities:
//!
//! * [`Severity::Error`] — the circuit is analysable but almost certainly
//!   wrong (e.g. a zero-delay loop of transparent latches, a critical
//!   race no schedule can fix);
//! * [`Severity::Warn`] — suspicious structure that usually indicates a
//!   netlist mistake (dangling synchronizers, dead phases, duplicate
//!   paths, thin hold margins);
//! * [`Severity::Info`] — unusual parameter ratios worth a second look.
//!
//! A [`PassConfig`] suppresses rules (`allow`) or re-grades them
//! (`deny` / `severity`); findings are sorted by (severity, rule,
//! location, message) so reports — including `--json` output — are
//! byte-deterministic for a given circuit and configuration.
//!
//! All shipped `circuits/*.ckt` lint clean; the rules are tuned to flag
//! genuine modelling accidents, not stylistic variance.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::context::AnalysisContext;
use crate::passes::registry;
use smo_circuit::Circuit;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Unusual but possibly intentional; worth a look.
    Info,
    /// Usually a netlist mistake.
    Warn,
    /// Almost certainly wrong; the analysis results are suspect.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The analysis rules: one per structural check, plus the race rule the
/// full [`check`](crate::check) pipeline adds on top of the solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A synchronizer with no fan-in *and* no fan-out: it constrains
    /// nothing and is probably a leftover or a typo in a `path` line.
    UnconstrainedSync,
    /// A clock phase that controls no synchronizer: the schedule still
    /// allocates time to it.
    DeadPhase,
    /// Two `path` lines with the same endpoints: only the slower one
    /// matters for long paths, which usually means a duplicated line.
    DuplicateEdge,
    /// A feedback loop of transparent latches with zero combinational
    /// delay around it: a critical race no clock schedule can fix.
    ZeroDelayLoop,
    /// A flip-flop whose hold requirement exceeds the short-path delay of
    /// a same-phase fan-in edge (same-edge race). Uses measured
    /// `mindelay` data when present; falls back to a half-the-long-path
    /// heuristic otherwise.
    HoldMargin,
    /// Suspicious latch parameters: zero setup, or `Δ_DQ` much larger
    /// than setup.
    SuspiciousRatio,
    /// A synchronizer with no path to or from any cyclic SCC of the latch
    /// graph: it floats free of the circuit's recurrent core, so its
    /// steady-state timing constrains nothing the clock cares about
    /// (likely a mis-specified source or sink). Skipped entirely on
    /// feed-forward circuits (no cyclic SCC at all).
    UnreachableFromCore,
    /// The constraint graph splits into several disconnected components:
    /// the LP couples them only through the shared clock, which usually
    /// means two unrelated netlists were pasted together.
    DisconnectedComponents,
    /// A double-clocking race at the solved schedule: early data crosses
    /// a short path and lands before the destination's hold deadline, so
    /// the *next* wave overwrites state in the *current* cycle. Only the
    /// full `check` pipeline (lint + solve + race analysis) emits this.
    /// Error-severity when the short path is measured (`mindelay`),
    /// warn-severity when only the max-delay assumption supports it.
    DoubleClockingRace,
}

impl Rule {
    /// Every rule, in a stable order (used by CLI filters and docs).
    pub const ALL: [Rule; 9] = [
        Rule::UnconstrainedSync,
        Rule::DeadPhase,
        Rule::DuplicateEdge,
        Rule::ZeroDelayLoop,
        Rule::HoldMargin,
        Rule::SuspiciousRatio,
        Rule::UnreachableFromCore,
        Rule::DisconnectedComponents,
        Rule::DoubleClockingRace,
    ];

    /// Stable kebab-case identifier (used in reports and filters).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnconstrainedSync => "unconstrained-sync",
            Rule::DeadPhase => "dead-phase",
            Rule::DuplicateEdge => "duplicate-edge",
            Rule::ZeroDelayLoop => "zero-delay-loop",
            Rule::HoldMargin => "hold-margin",
            Rule::SuspiciousRatio => "suspicious-ratio",
            Rule::UnreachableFromCore => "unreachable-from-core",
            Rule::DisconnectedComponents => "disconnected-components",
            Rule::DoubleClockingRace => "double-clocking-race",
        }
    }

    /// Parses the kebab-case identifier back into a rule (the inverse of
    /// [`Rule::name`]); `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// How bad it is.
    pub severity: Severity,
    /// Where it fired: a synchronizer name, `from→to#edge`, a phase, or a
    /// loop chain — stable across runs, used as the sort tiebreaker.
    pub location: String,
    /// What, specifically, is wrong (names the circuit elements).
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.severity, self.rule, self.message)
    }
}

/// Per-rule configuration for a lint/check run: suppressions and
/// severity overrides, applied to findings after the passes run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PassConfig {
    allowed: BTreeSet<Rule>,
    severities: BTreeMap<Rule, Severity>,
}

impl PassConfig {
    /// The default configuration: nothing suppressed, stock severities.
    pub fn new() -> Self {
        PassConfig::default()
    }

    /// Suppresses every finding of `rule` (CLI `--allow RULE`).
    pub fn allow(mut self, rule: Rule) -> Self {
        self.allowed.insert(rule);
        self
    }

    /// Escalates `rule` to [`Severity::Error`] (CLI `--deny RULE`), so it
    /// fails the `check` exit code. Overrides a prior `severity` call.
    pub fn deny(self, rule: Rule) -> Self {
        self.severity(rule, Severity::Error)
    }

    /// Overrides the severity of `rule`'s findings.
    pub fn severity(mut self, rule: Rule, severity: Severity) -> Self {
        self.severities.insert(rule, severity);
        self
    }

    /// `true` when `rule` is suppressed.
    pub fn is_allowed(&self, rule: Rule) -> bool {
        self.allowed.contains(&rule)
    }

    /// Applies the configuration to one finding: `None` if suppressed,
    /// otherwise the finding with any severity override applied.
    pub(crate) fn apply(&self, mut finding: Finding) -> Option<Finding> {
        if self.is_allowed(finding.rule) {
            return None;
        }
        if let Some(&severity) = self.severities.get(&finding.rule) {
            finding.severity = severity;
        }
        Some(finding)
    }
}

/// The result of linting one circuit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All findings, sorted by (severity — errors first, rule, location,
    /// message) so a report is byte-deterministic for a given circuit and
    /// configuration.
    pub findings: Vec<Finding>,
}

/// Sorts findings into the canonical report order: errors first, then by
/// rule name, location and message. Stable output is part of the findings
/// format contract (machine consumers may diff `--json` byte-for-byte).
pub(crate) fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (Reverse(a.severity), a.rule.name(), &a.location, &a.message).cmp(&(
            Reverse(b.severity),
            b.rule.name(),
            &b.location,
            &b.message,
        ))
    });
}

impl LintReport {
    /// `true` when no rule fired at any severity.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The highest severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// `true` when at least one [`Severity::Error`] finding exists.
    pub fn has_errors(&self) -> bool {
        self.worst() == Some(Severity::Error)
    }

    /// Number of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Renders the report as a JSON object (hand-rolled, mirroring the
    /// `Display` content): a `clean` flag, per-severity counts, and the
    /// sorted findings with rule name, severity, location and message.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {},\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out.push_str(&findings_json(&self.findings, "  "));
        out.push_str("\n}");
        out
    }
}

/// Renders the shared `"findings": [...]` JSON fragment (no trailing
/// newline) at the given indent. Both `lint --json` and `check --json`
/// embed this, so the per-finding schema cannot drift between them.
pub(crate) fn findings_json(findings: &[Finding], indent: &str) -> String {
    let mut out = format!("{indent}\"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "{indent}  {{\"rule\": \"{}\", \"severity\": \"{}\", \"location\": \"{}\", \
             \"message\": \"{}\"}}{}\n",
            f.rule,
            f.severity,
            json_escape(&f.location),
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!("{indent}]"));
    out
}

/// Escapes a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean: no findings");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} info",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )
    }
}

/// Runs every lint pass over `circuit` with the stock configuration.
pub fn lint(circuit: &Circuit) -> LintReport {
    lint_with(circuit, &PassConfig::default())
}

/// Runs every lint pass over `circuit`: computes the shared
/// [`AnalysisContext`] once, runs each registered pass, applies `config`
/// (suppressions and severity overrides) and sorts the surviving findings
/// into canonical order.
pub fn lint_with(circuit: &Circuit, config: &PassConfig) -> LintReport {
    let ctx = AnalysisContext::new(circuit);
    let mut findings = Vec::new();
    for pass in registry() {
        pass.run(&ctx, &mut findings);
    }
    let mut findings: Vec<Finding> = findings
        .into_iter()
        .filter_map(|f| config.apply(f))
        .collect();
    sort_findings(&mut findings);
    LintReport { findings }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId, Synchronizer};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    #[test]
    fn healthy_circuit_is_clean() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let report = lint(&b.build().unwrap());
        assert!(report.is_clean(), "unexpected findings: {report}");
        assert_eq!(report.worst(), None);
    }

    #[test]
    fn flags_unconstrained_sync_and_dead_phase() {
        let mut b = CircuitBuilder::new(3); // phase 3 unused
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.add_latch("orphan", p(1), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let report = lint(&b.build().unwrap());
        assert_eq!(report.count(Severity::Warn), 2);
        let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::UnconstrainedSync));
        assert!(rules.contains(&Rule::DeadPhase));
        assert!(report.to_string().contains("orphan"));
        assert!(report.to_string().contains("φ3"));
    }

    #[test]
    fn flags_duplicate_edges() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l1, l2, 7.0); // duplicate
        b.connect(l2, l1, 5.0);
        let report = lint(&b.build().unwrap());
        assert_eq!(report.count(Severity::Warn), 1);
        assert_eq!(report.findings[0].rule, Rule::DuplicateEdge);
        assert_eq!(report.findings[0].location, "L1→L2#1");
    }

    #[test]
    fn flags_zero_delay_latch_loop_as_error() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_sync(Synchronizer::latch("L1", p(1), 0.0, 0.0));
        let l2 = b.add_sync(Synchronizer::latch("L2", p(2), 0.0, 0.0));
        b.connect(l1, l2, 0.0);
        b.connect(l2, l1, 0.0);
        let report = lint(&b.build().unwrap());
        assert!(report.has_errors());
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::ZeroDelayLoop));
    }

    #[test]
    fn edge_triggering_breaks_the_race() {
        // The same zero-delay loop, but through a flip-flop: no error.
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_sync(Synchronizer::latch("L1", p(1), 0.0, 0.0));
        let ff = b.add_sync(Synchronizer::flip_flop("F1", p(2), 0.0, 0.0));
        b.connect(l1, ff, 0.0);
        b.connect(ff, l1, 0.0);
        let report = lint(&b.build().unwrap());
        assert!(!report.has_errors());
    }

    #[test]
    fn flags_thin_hold_margin() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_sync(Synchronizer::flip_flop("A", p(1), 0.1, 0.2));
        let c = b.add_sync(Synchronizer::flip_flop("C", p(1), 0.1, 0.2).with_hold(0.5));
        b.connect_min_max(a, c, 0.1, 3.0); // short path 0.1 < hold 0.5
        b.connect(c, a, 3.0);
        let report = lint(&b.build().unwrap());
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::HoldMargin && f.severity == Severity::Warn));
    }

    #[test]
    fn measured_short_path_above_hold_is_clean() {
        // Same shape, but the measured short path clears the hold time:
        // the heuristic (half of max = 1.5 > 0.5) never enters into it.
        let mut b = CircuitBuilder::new(2);
        let a = b.add_sync(Synchronizer::flip_flop("A", p(1), 0.1, 0.2));
        let c = b.add_sync(Synchronizer::flip_flop("C", p(1), 0.1, 0.2).with_hold(0.5));
        b.connect_min_max(a, c, 0.6, 3.0);
        b.connect(c, a, 3.0);
        let report = lint(&b.build().unwrap());
        assert!(
            !report.findings.iter().any(|f| f.rule == Rule::HoldMargin),
            "{report}"
        );
    }

    #[test]
    fn unmeasured_short_path_uses_the_heuristic_fallback() {
        // No mindelay data: the rule assumes early data can beat the long
        // path by half. hold 0.5 > 0.5 × max 0.8 = 0.4 → flagged, and the
        // message says the data is missing.
        let mut b = CircuitBuilder::new(2);
        let a = b.add_sync(Synchronizer::flip_flop("A", p(1), 0.1, 0.2));
        let c = b.add_sync(Synchronizer::flip_flop("C", p(1), 0.1, 0.2).with_hold(0.5));
        b.connect(a, c, 0.8);
        b.connect(c, a, 3.0);
        let report = lint(&b.build().unwrap());
        let finding = report
            .findings
            .iter()
            .find(|f| f.rule == Rule::HoldMargin)
            .expect("heuristic should fire");
        assert!(finding.message.contains("no measured short-path delay"));
        assert!(finding.message.contains("mindelay"));

        // A comfortably long unmeasured path does not fire: half of max
        // 3.0 = 1.5 clears hold 0.5.
        let mut b = CircuitBuilder::new(2);
        let a = b.add_sync(Synchronizer::flip_flop("A", p(1), 0.1, 0.2));
        let c = b.add_sync(Synchronizer::flip_flop("C", p(1), 0.1, 0.2).with_hold(0.5));
        b.connect(a, c, 3.0);
        b.connect(c, a, 3.0);
        let report = lint(&b.build().unwrap());
        assert!(
            !report.findings.iter().any(|f| f.rule == Rule::HoldMargin),
            "{report}"
        );
    }

    #[test]
    fn flags_suspicious_ratio_as_info() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 0.01, 2.0); // dq = 200× setup
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let report = lint(&b.build().unwrap());
        assert_eq!(report.worst(), Some(Severity::Info));
        assert_eq!(report.count(Severity::Info), 1);
    }

    #[test]
    fn flags_latch_floating_free_of_the_core() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        // `tap` is driven by the loop (reachable) — fine. `ghost` → `tap`
        // neither reaches nor is reached by the loop core... but `ghost`
        // does reach `tap`, which is downstream of the core; only a latch
        // with no path in either direction is flagged, so attach a pair
        // that touches nothing.
        let tap = b.add_latch("tap", p(1), 1.0, 2.0);
        b.connect(l2, tap, 3.0);
        let g1 = b.add_latch("G1", p(1), 1.0, 2.0);
        let g2 = b.add_latch("G2", p(2), 1.0, 2.0);
        b.connect(g1, g2, 4.0);
        let report = lint(&b.build().unwrap());
        let floating: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::UnreachableFromCore)
            .collect();
        assert_eq!(floating.len(), 2, "{report}");
        assert!(floating.iter().all(|f| f.severity == Severity::Warn));
        assert!(report.to_string().contains("G1"));
        assert!(!report.to_string().contains("`tap` has no path"));
        // The G1→G2 island is also a disconnected component.
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::DisconnectedComponents));
    }

    #[test]
    fn feed_forward_circuits_skip_the_core_rule() {
        // No cyclic SCC at all: flagging every latch would be noise.
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        let l3 = b.add_latch("L3", p(1), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l3, 5.0);
        let report = lint(&b.build().unwrap());
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.rule == Rule::UnreachableFromCore),
            "{report}"
        );
    }

    #[test]
    fn flags_disconnected_constraint_graphs() {
        let mut b = CircuitBuilder::new(2);
        let a1 = b.add_latch("A1", p(1), 1.0, 2.0);
        let a2 = b.add_latch("A2", p(2), 1.0, 2.0);
        b.connect(a1, a2, 5.0);
        b.connect(a2, a1, 5.0);
        let b1 = b.add_latch("B1", p(1), 1.0, 2.0);
        let b2 = b.add_latch("B2", p(2), 1.0, 2.0);
        b.connect(b1, b2, 5.0);
        b.connect(b2, b1, 5.0);
        let report = lint(&b.build().unwrap());
        let disc: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::DisconnectedComponents)
            .collect();
        assert_eq!(disc.len(), 1, "{report}");
        assert!(disc[0].message.contains("2 disconnected components"));
        // Both islands are cyclic, so neither floats free of a core.
        assert!(!report
            .findings
            .iter()
            .any(|f| f.rule == Rule::UnreachableFromCore));
    }

    #[test]
    fn connected_single_component_does_not_fire() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        // An isolated latch is unconstrained-sync territory, not a
        // disconnected component.
        b.add_latch("orphan", p(1), 1.0, 2.0);
        let report = lint(&b.build().unwrap());
        assert!(!report
            .findings
            .iter()
            .any(|f| f.rule == Rule::DisconnectedComponents));
    }

    #[test]
    fn json_report_mirrors_findings() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.add_latch("orphan", p(1), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let json = lint(&b.build().unwrap()).to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"warnings\": 1"));
        assert!(json.contains("\"rule\": \"unconstrained-sync\""));
        assert!(json.contains("\"location\": \"orphan\""));
        assert!(json.contains("orphan"));
    }

    #[test]
    fn json_report_of_clean_circuit_is_clean() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let json = lint(&b.build().unwrap()).to_json();
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"errors\": 0"));
    }

    #[test]
    fn severity_ordering_is_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    /// A circuit that trips several rules at several severities in one go.
    fn noisy_circuit() -> smo_circuit::Circuit {
        let mut b = CircuitBuilder::new(3); // phase 3 dead
        let l1 = b.add_latch("L1", p(1), 0.01, 2.0); // suspicious ratio
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.add_latch("orphan", p(1), 1.0, 2.0); // unconstrained
        b.connect(l1, l2, 5.0);
        b.connect(l1, l2, 7.0); // duplicate
        b.connect(l2, l1, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn findings_are_sorted_by_severity_then_rule_then_location() {
        let report = lint(&noisy_circuit());
        assert!(report.findings.len() >= 4, "{report}");
        let keys: Vec<(Reverse<Severity>, &str, &String)> = report
            .findings
            .iter()
            .map(|f| (Reverse(f.severity), f.rule.name(), &f.location))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "{report}");
        // Errors (none here) would come first; warns precede infos.
        assert_eq!(
            report.findings.last().map(|f| f.severity),
            Some(Severity::Info)
        );
    }

    #[test]
    fn json_output_is_byte_deterministic() {
        let circuit = noisy_circuit();
        let a = lint(&circuit).to_json();
        let b = lint(&circuit).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn allow_suppresses_and_deny_escalates() {
        let circuit = noisy_circuit();
        let stock = lint(&circuit);
        assert!(stock.findings.iter().any(|f| f.rule == Rule::DeadPhase));
        assert!(!stock.has_errors());

        let allowed = lint_with(&circuit, &PassConfig::new().allow(Rule::DeadPhase));
        assert!(!allowed.findings.iter().any(|f| f.rule == Rule::DeadPhase));
        assert_eq!(allowed.findings.len(), stock.findings.len() - 1);

        let denied = lint_with(&circuit, &PassConfig::new().deny(Rule::SuspiciousRatio));
        assert!(denied.has_errors());
        // Escalated findings sort to the front.
        assert_eq!(denied.findings[0].rule, Rule::SuspiciousRatio);
        assert_eq!(denied.findings[0].severity, Severity::Error);

        let downgraded = lint_with(
            &circuit,
            &PassConfig::new().severity(Rule::DuplicateEdge, Severity::Info),
        );
        assert!(downgraded
            .findings
            .iter()
            .any(|f| f.rule == Rule::DuplicateEdge && f.severity == Severity::Info));
    }
}
