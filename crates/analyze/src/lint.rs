//! Circuit lints: structural and parametric sanity checks.
//!
//! The timing engine answers "what is the minimum cycle time?"; the linter
//! answers "does this circuit description even make sense?". Each rule
//! inspects the [`Circuit`] graph — no LP is solved — and reports
//! [`Finding`]s at three severities:
//!
//! * [`Severity::Error`] — the circuit is analysable but almost certainly
//!   wrong (e.g. a zero-delay loop of transparent latches, a critical
//!   race no schedule can fix);
//! * [`Severity::Warn`] — suspicious structure that usually indicates a
//!   netlist mistake (dangling synchronizers, dead phases, duplicate
//!   paths, thin hold margins);
//! * [`Severity::Info`] — unusual parameter ratios worth a second look.
//!
//! All shipped `circuits/*.ckt` lint clean; the rules are tuned to flag
//! genuine modelling accidents, not stylistic variance.

use smo_circuit::{Circuit, SyncKind};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Unusual but possibly intentional; worth a look.
    Info,
    /// Usually a netlist mistake.
    Warn,
    /// Almost certainly wrong; the analysis results are suspect.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The lint rules, one per structural check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A synchronizer with no fan-in *and* no fan-out: it constrains
    /// nothing and is probably a leftover or a typo in a `path` line.
    UnconstrainedSync,
    /// A clock phase that controls no synchronizer: the schedule still
    /// allocates time to it.
    DeadPhase,
    /// Two `path` lines with the same endpoints: only the slower one
    /// matters for long paths, which usually means a duplicated line.
    DuplicateEdge,
    /// A feedback loop of transparent latches with zero combinational
    /// delay around it: a critical race no clock schedule can fix.
    ZeroDelayLoop,
    /// A flip-flop whose hold requirement exceeds the short-path delay of
    /// a same-phase fan-in edge (same-edge race).
    HoldMargin,
    /// Suspicious latch parameters: zero setup, or `Δ_DQ` much larger
    /// than setup.
    SuspiciousRatio,
    /// A synchronizer with no path to or from any cyclic SCC of the latch
    /// graph: it floats free of the circuit's recurrent core, so its
    /// steady-state timing constrains nothing the clock cares about
    /// (likely a mis-specified source or sink). Skipped entirely on
    /// feed-forward circuits (no cyclic SCC at all).
    UnreachableFromCore,
    /// The constraint graph splits into several disconnected components:
    /// the LP couples them only through the shared clock, which usually
    /// means two unrelated netlists were pasted together.
    DisconnectedComponents,
}

impl Rule {
    /// Stable kebab-case identifier (used in reports and filters).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnconstrainedSync => "unconstrained-sync",
            Rule::DeadPhase => "dead-phase",
            Rule::DuplicateEdge => "duplicate-edge",
            Rule::ZeroDelayLoop => "zero-delay-loop",
            Rule::HoldMargin => "hold-margin",
            Rule::SuspiciousRatio => "suspicious-ratio",
            Rule::UnreachableFromCore => "unreachable-from-core",
            Rule::DisconnectedComponents => "disconnected-components",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// How bad it is.
    pub severity: Severity,
    /// What, specifically, is wrong (names the circuit elements).
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.severity, self.rule, self.message)
    }
}

/// The result of linting one circuit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All findings, in rule order (errors are not sorted first; use
    /// [`LintReport::worst`] for the headline).
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// `true` when no rule fired at any severity.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The highest severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// `true` when at least one [`Severity::Error`] finding exists.
    pub fn has_errors(&self) -> bool {
        self.worst() == Some(Severity::Error)
    }

    /// Number of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Renders the report as a JSON object (hand-rolled, mirroring the
    /// `Display` content): a `clean` flag, per-severity counts, and the
    /// findings with rule name, severity and message.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {},\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}{}\n",
                f.rule,
                f.severity,
                json_escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean: no findings");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} info",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )
    }
}

/// Bound on enumerated feedback cycles (cycle counts can be exponential).
const CYCLE_LIMIT: usize = 256;

/// `Δ_DQ / Δ_DC` ratio above which [`Rule::SuspiciousRatio`] fires.
const RATIO_LIMIT: f64 = 10.0;

/// Runs every lint rule over `circuit`.
pub fn lint(circuit: &Circuit) -> LintReport {
    let mut findings = Vec::new();
    let mut push = |rule, severity, message| {
        findings.push(Finding {
            rule,
            severity,
            message,
        });
    };

    // unconstrained-sync: no fan-in and no fan-out.
    for (id, s) in circuit.syncs() {
        if circuit.fanin(id).is_empty() && circuit.fanout(id).is_empty() {
            push(
                Rule::UnconstrainedSync,
                Severity::Warn,
                format!(
                    "{} `{}` has no fan-in and no fan-out; it constrains nothing",
                    s.kind, s.name
                ),
            );
        }
    }

    // dead-phase: a phase controlling no synchronizer.
    for i in 0..circuit.num_phases() {
        let phase = smo_circuit::PhaseId::new(i);
        if circuit.syncs_on_phase(phase).next().is_none() {
            push(
                Rule::DeadPhase,
                Severity::Warn,
                format!("phase {phase} controls no synchronizer"),
            );
        }
    }

    // duplicate-edge: repeated (from, to) pairs.
    let mut seen = std::collections::HashSet::new();
    for e in circuit.edges() {
        if !seen.insert((e.from, e.to)) {
            push(
                Rule::DuplicateEdge,
                Severity::Warn,
                format!(
                    "duplicate path `{}` → `{}`; only the slower delay constrains long paths",
                    circuit.sync(e.from).name,
                    circuit.sync(e.to).name
                ),
            );
        }
    }

    // zero-delay-loop: an all-latch feedback cycle with zero total delay
    // (combinational + Δ_DQ) — data races around it while every latch on
    // the loop is transparent, and no clock schedule can stop it.
    for cycle in circuit.cycles(CYCLE_LIMIT) {
        let all_latches = cycle
            .latches
            .iter()
            .all(|&l| circuit.sync(l).kind == SyncKind::Latch);
        if all_latches && circuit.cycle_delay(&cycle) <= 0.0 {
            // Render with latch names, not the id-based `Cycle` display.
            let mut path: Vec<&str> = cycle
                .latches
                .iter()
                .map(|&l| circuit.sync(l).name.as_str())
                .collect();
            if let Some(&first) = path.first() {
                path.push(first);
            }
            push(
                Rule::ZeroDelayLoop,
                Severity::Error,
                format!(
                    "zero-delay loop through transparent latches ({}): critical race",
                    path.join(" → ")
                ),
            );
        }
    }

    // hold-margin: same-phase fan-in into a flip-flop with a hold
    // requirement larger than the short-path (contamination) delay.
    for e in circuit.edges() {
        let dst = circuit.sync(e.to);
        let src = circuit.sync(e.from);
        if dst.kind == SyncKind::FlipFlop
            && dst.hold > 0.0
            && src.phase == dst.phase
            && e.min_delay < dst.hold
        {
            push(
                Rule::HoldMargin,
                Severity::Warn,
                format!(
                    "flip-flop `{}` requires hold {} but the same-phase path from `{}` \
                     can arrive after only {}",
                    dst.name, dst.hold, src.name, e.min_delay
                ),
            );
        }
    }

    // unreachable-from-core: synchronizers with no path to or from any
    // cyclic SCC. Reuses the same SCC decomposition that powers
    // `cycle_time_bounds`' per-component critical cycles. A feed-forward
    // circuit has no recurrent core, so the rule is skipped entirely there
    // rather than flagging every latch.
    let n = circuit.num_syncs();
    let mut in_cyclic = vec![false; n];
    for comp in circuit.sccs() {
        let cyclic = comp.len() > 1
            || comp.len() == 1 && {
                let l = comp[0];
                circuit.fanout(l).iter().any(|&e| {
                    let edge = &circuit.edges()[e.index()];
                    edge.to == l
                })
            };
        if cyclic {
            for l in comp {
                in_cyclic[l.index()] = true;
            }
        }
    }
    if in_cyclic.iter().any(|&c| c) {
        // Forward and backward reachability from the cyclic cores.
        let reach = |forward: bool| -> Vec<bool> {
            let mut seen = in_cyclic.clone();
            let mut stack: Vec<usize> = (0..n).filter(|&i| in_cyclic[i]).collect();
            while let Some(i) = stack.pop() {
                let id = smo_circuit::LatchId::new(i);
                let edges = if forward {
                    circuit.fanout(id)
                } else {
                    circuit.fanin(id)
                };
                for &e in edges {
                    let edge = &circuit.edges()[e.index()];
                    let next = if forward { edge.to } else { edge.from };
                    if !seen[next.index()] {
                        seen[next.index()] = true;
                        stack.push(next.index());
                    }
                }
            }
            seen
        };
        let downstream = reach(true);
        let upstream = reach(false);
        for (id, s) in circuit.syncs() {
            let i = id.index();
            // Completely isolated synchronizers are unconstrained-sync
            // territory; double-flagging them here is noise.
            if circuit.fanin(id).is_empty() && circuit.fanout(id).is_empty() {
                continue;
            }
            if !downstream[i] && !upstream[i] {
                push(
                    Rule::UnreachableFromCore,
                    Severity::Warn,
                    format!(
                        "{} `{}` has no path to or from any feedback loop; it floats \
                         free of the circuit's recurrent core",
                        s.kind, s.name
                    ),
                );
            }
        }
    }

    // disconnected-components: the latch graph (ignoring completely
    // isolated synchronizers, which unconstrained-sync already flags)
    // splits into several weakly connected islands.
    {
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for e in circuit.edges() {
            let (a, b) = (
                find(&mut parent, e.from.index()),
                find(&mut parent, e.to.index()),
            );
            parent[a] = b;
        }
        let mut roots: Vec<usize> = (0..n)
            .filter(|&i| {
                let id = smo_circuit::LatchId::new(i);
                !(circuit.fanin(id).is_empty() && circuit.fanout(id).is_empty())
            })
            .map(|i| find(&mut parent, i))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        if roots.len() > 1 {
            let names: Vec<String> = roots
                .iter()
                .map(|&r| format!("`{}`", circuit.sync(smo_circuit::LatchId::new(r)).name))
                .collect();
            push(
                Rule::DisconnectedComponents,
                Severity::Warn,
                format!(
                    "the constraint graph splits into {} disconnected components \
                     (containing {}); they couple only through the shared clock",
                    roots.len(),
                    names.join(", ")
                ),
            );
        }
    }

    // suspicious-ratio: zero setup, or Δ_DQ far larger than setup.
    for (_, s) in circuit.syncs() {
        if s.setup <= 0.0 && s.dq > 0.0 {
            push(
                Rule::SuspiciousRatio,
                Severity::Info,
                format!(
                    "{} `{}` has zero setup time but Δ_DQ = {}; setup rows degenerate",
                    s.kind, s.name, s.dq
                ),
            );
        } else if s.setup > 0.0 && s.dq / s.setup > RATIO_LIMIT {
            push(
                Rule::SuspiciousRatio,
                Severity::Info,
                format!(
                    "{} `{}` has Δ_DQ = {} over {}× its setup {}; check the units",
                    s.kind, s.name, s.dq, RATIO_LIMIT, s.setup
                ),
            );
        }
    }

    LintReport { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId, Synchronizer};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    #[test]
    fn healthy_circuit_is_clean() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let report = lint(&b.build().unwrap());
        assert!(report.is_clean(), "unexpected findings: {report}");
        assert_eq!(report.worst(), None);
    }

    #[test]
    fn flags_unconstrained_sync_and_dead_phase() {
        let mut b = CircuitBuilder::new(3); // phase 3 unused
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.add_latch("orphan", p(1), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let report = lint(&b.build().unwrap());
        assert_eq!(report.count(Severity::Warn), 2);
        let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::UnconstrainedSync));
        assert!(rules.contains(&Rule::DeadPhase));
        assert!(report.to_string().contains("orphan"));
        assert!(report.to_string().contains("φ3"));
    }

    #[test]
    fn flags_duplicate_edges() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l1, l2, 7.0); // duplicate
        b.connect(l2, l1, 5.0);
        let report = lint(&b.build().unwrap());
        assert_eq!(report.count(Severity::Warn), 1);
        assert_eq!(report.findings[0].rule, Rule::DuplicateEdge);
    }

    #[test]
    fn flags_zero_delay_latch_loop_as_error() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_sync(Synchronizer::latch("L1", p(1), 0.0, 0.0));
        let l2 = b.add_sync(Synchronizer::latch("L2", p(2), 0.0, 0.0));
        b.connect(l1, l2, 0.0);
        b.connect(l2, l1, 0.0);
        let report = lint(&b.build().unwrap());
        assert!(report.has_errors());
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::ZeroDelayLoop));
    }

    #[test]
    fn edge_triggering_breaks_the_race() {
        // The same zero-delay loop, but through a flip-flop: no error.
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_sync(Synchronizer::latch("L1", p(1), 0.0, 0.0));
        let ff = b.add_sync(Synchronizer::flip_flop("F1", p(2), 0.0, 0.0));
        b.connect(l1, ff, 0.0);
        b.connect(ff, l1, 0.0);
        let report = lint(&b.build().unwrap());
        assert!(!report.has_errors());
    }

    #[test]
    fn flags_thin_hold_margin() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_sync(Synchronizer::flip_flop("A", p(1), 0.1, 0.2));
        let c = b.add_sync(Synchronizer::flip_flop("C", p(1), 0.1, 0.2).with_hold(0.5));
        b.connect_min_max(a, c, 0.1, 3.0); // short path 0.1 < hold 0.5
        b.connect(c, a, 3.0);
        let report = lint(&b.build().unwrap());
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::HoldMargin && f.severity == Severity::Warn));
    }

    #[test]
    fn flags_suspicious_ratio_as_info() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 0.01, 2.0); // dq = 200× setup
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let report = lint(&b.build().unwrap());
        assert_eq!(report.worst(), Some(Severity::Info));
        assert_eq!(report.count(Severity::Info), 1);
    }

    #[test]
    fn flags_latch_floating_free_of_the_core() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        // `tap` is driven by the loop (reachable) — fine. `ghost` → `tap`
        // neither reaches nor is reached by the loop core... but `ghost`
        // does reach `tap`, which is downstream of the core; only a latch
        // with no path in either direction is flagged, so attach a pair
        // that touches nothing.
        let tap = b.add_latch("tap", p(1), 1.0, 2.0);
        b.connect(l2, tap, 3.0);
        let g1 = b.add_latch("G1", p(1), 1.0, 2.0);
        let g2 = b.add_latch("G2", p(2), 1.0, 2.0);
        b.connect(g1, g2, 4.0);
        let report = lint(&b.build().unwrap());
        let floating: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::UnreachableFromCore)
            .collect();
        assert_eq!(floating.len(), 2, "{report}");
        assert!(floating.iter().all(|f| f.severity == Severity::Warn));
        assert!(report.to_string().contains("G1"));
        assert!(!report.to_string().contains("`tap` has no path"));
        // The G1→G2 island is also a disconnected component.
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::DisconnectedComponents));
    }

    #[test]
    fn feed_forward_circuits_skip_the_core_rule() {
        // No cyclic SCC at all: flagging every latch would be noise.
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        let l3 = b.add_latch("L3", p(1), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l3, 5.0);
        let report = lint(&b.build().unwrap());
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.rule == Rule::UnreachableFromCore),
            "{report}"
        );
    }

    #[test]
    fn flags_disconnected_constraint_graphs() {
        let mut b = CircuitBuilder::new(2);
        let a1 = b.add_latch("A1", p(1), 1.0, 2.0);
        let a2 = b.add_latch("A2", p(2), 1.0, 2.0);
        b.connect(a1, a2, 5.0);
        b.connect(a2, a1, 5.0);
        let b1 = b.add_latch("B1", p(1), 1.0, 2.0);
        let b2 = b.add_latch("B2", p(2), 1.0, 2.0);
        b.connect(b1, b2, 5.0);
        b.connect(b2, b1, 5.0);
        let report = lint(&b.build().unwrap());
        let disc: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::DisconnectedComponents)
            .collect();
        assert_eq!(disc.len(), 1, "{report}");
        assert!(disc[0].message.contains("2 disconnected components"));
        // Both islands are cyclic, so neither floats free of a core.
        assert!(!report
            .findings
            .iter()
            .any(|f| f.rule == Rule::UnreachableFromCore));
    }

    #[test]
    fn connected_single_component_does_not_fire() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        // An isolated latch is unconstrained-sync territory, not a
        // disconnected component.
        b.add_latch("orphan", p(1), 1.0, 2.0);
        let report = lint(&b.build().unwrap());
        assert!(!report
            .findings
            .iter()
            .any(|f| f.rule == Rule::DisconnectedComponents));
    }

    #[test]
    fn json_report_mirrors_findings() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.add_latch("orphan", p(1), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let json = lint(&b.build().unwrap()).to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"warnings\": 1"));
        assert!(json.contains("\"rule\": \"unconstrained-sync\""));
        assert!(json.contains("orphan"));
    }

    #[test]
    fn json_report_of_clean_circuit_is_clean() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 1.0, 2.0);
        let l2 = b.add_latch("L2", p(2), 1.0, 2.0);
        b.connect(l1, l2, 5.0);
        b.connect(l2, l1, 5.0);
        let json = lint(&b.build().unwrap()).to_json();
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"errors\": 0"));
    }

    #[test]
    fn severity_ordering_is_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }
}
