//! `smo check`: lint passes + solve + short-path race analysis, one shot.
//!
//! [`check`] is the everything-at-once static gate: it runs every lint
//! pass over the shared [`AnalysisContext`](crate::AnalysisContext),
//! solves the design problem (graph or LP backend) for the minimum cycle
//! time — or verifies a user-pinned one — and then runs the paper's
//! short-path (hold) constraint family at the canonical schedule. Each
//! double-clocking race becomes a finding under
//! [`Rule::DoubleClockingRace`], carrying the full
//! [`ShortPathWitness`](smo_core::ShortPathWitness) text: the offending
//! short path, the arithmetic that breaks the hold deadline, and the
//! clock-separation increase that would retire the race.
//!
//! Severity follows the evidence: a race across a **measured** short path
//! (`mindelay` in the netlist) is a [`Severity::Error`] — the witness
//! arithmetic is exact — while a race that exists only under the
//! max-delay assumption (no `mindelay` line) is a [`Severity::Warn`],
//! because the short path was never characterised. `--deny
//! double-clocking-race` escalates the latter for strict gates.
//!
//! The merged findings share the lint sort order and JSON schema, so a
//! `check --json` report embeds the same `"findings"` array a
//! `lint --json` report does — machine consumers parse one format.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::lint::{
    findings_json, lint_with, sort_findings, Finding, LintReport, PassConfig, Rule, Severity,
};
use crate::report::AnalyzeError;
use smo_circuit::Circuit;
use smo_core::{race_analysis, Backend, RaceOptions, RaceReport};
use std::fmt;

/// Options for the [`check`] pipeline.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Per-rule suppressions and severity overrides, applied to lint
    /// findings *and* to the race findings layered on top.
    pub config: PassConfig,
    /// Solver backend for the cycle-time solve feeding the race analysis.
    pub backend: Backend,
    /// Analyse at this pinned cycle time instead of the solved optimum.
    pub cycle_time: Option<f64>,
}

/// The result of one [`check`] run: the merged findings plus the race
/// report they were derived from.
#[derive(Debug, Clone)]
pub struct CheckReport {
    findings: LintReport,
    race: RaceReport,
}

impl CheckReport {
    /// The merged lint + race findings, in canonical sorted order.
    pub fn findings(&self) -> &LintReport {
        &self.findings
    }

    /// The underlying race analysis (schedule, slacks, witnesses).
    pub fn race(&self) -> &RaceReport {
        &self.race
    }

    /// The cycle time the race analysis ran at (solved or pinned).
    pub fn cycle_time(&self) -> f64 {
        self.race.cycle_time()
    }

    /// `true` when at least one [`Severity::Error`] finding survived the
    /// configuration — the CLI exits 2 in that case.
    pub fn has_errors(&self) -> bool {
        self.findings.has_errors()
    }

    /// Renders the report as a JSON object: the solve context
    /// (`cycle_time`, `worst_hold_slack`, `races`) wrapped around the
    /// same counts + `"findings"` array `lint --json` emits.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"clean\": {},\n", self.findings.is_clean()));
        out.push_str(&format!("  \"cycle_time\": {},\n", self.cycle_time()));
        let worst = self.race.worst_slack();
        if worst.is_finite() {
            out.push_str(&format!("  \"worst_hold_slack\": {worst},\n"));
        } else {
            out.push_str("  \"worst_hold_slack\": null,\n");
        }
        out.push_str(&format!("  \"races\": {},\n", self.race.races().len()));
        out.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {},\n",
            self.findings.count(Severity::Error),
            self.findings.count(Severity::Warn),
            self.findings.count(Severity::Info)
        ));
        out.push_str(&findings_json(&self.findings.findings, "  "));
        out.push_str("\n}");
        out
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycle time Tc = {}", self.cycle_time())?;
        let worst = self.race.worst_slack();
        if worst.is_finite() {
            writeln!(f, "worst hold slack = {worst}")?;
        }
        write!(f, "{}", self.findings)
    }
}

/// Runs the full static gate over `circuit`: lint passes, the cycle-time
/// solve (or a pinned `--cycle-time`), and the short-path race analysis,
/// merging every race into the findings as a
/// [`Rule::DoubleClockingRace`] error.
///
/// Solve failures (infeasible pinned cycle time, unbounded or malformed
/// models) surface as [`AnalyzeError::Timing`] rather than findings: they
/// mean the race analysis never ran, not that the circuit is race-free.
pub fn check(circuit: &Circuit, options: &CheckOptions) -> Result<CheckReport, AnalyzeError> {
    let lint_report = lint_with(circuit, &options.config);
    let race = race_analysis(
        circuit,
        &RaceOptions {
            backend: options.backend,
            cycle_time: options.cycle_time,
            ..RaceOptions::default()
        },
    )?;

    let mut findings = lint_report.findings;
    for witness in race.races() {
        let finding = Finding {
            rule: Rule::DoubleClockingRace,
            // Measured short path → the arithmetic is exact → error.
            // Max-delay assumption → the path was never characterised →
            // warn (escalate with `--deny double-clocking-race`).
            severity: if witness.min_specified {
                Severity::Error
            } else {
                Severity::Warn
            },
            location: format!("{}→{}#{}", witness.from, witness.to, witness.edge.index()),
            message: witness.to_string(),
        };
        if let Some(finding) = options.config.apply(finding) {
            findings.push(finding);
        }
    }
    sort_findings(&mut findings);

    Ok(CheckReport {
        findings: LintReport { findings },
        race,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId, Synchronizer};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    /// The paper's Example 1 (Fig. 5) at Δ41 = 80: clean and race-free.
    fn example1() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 10.0, 10.0);
        let l2 = b.add_latch("L2", p(2), 10.0, 10.0);
        let l3 = b.add_latch("L3", p(1), 10.0, 10.0);
        let l4 = b.add_latch("L4", p(2), 10.0, 10.0);
        b.connect(l1, l2, 20.0);
        b.connect(l2, l3, 20.0);
        b.connect(l3, l4, 60.0);
        b.connect(l4, l1, 80.0);
        b.build().unwrap()
    }

    /// Three same-phase flip-flops with one measured-short feedback edge:
    /// a certain double-clocking race at any cycle time.
    fn racy() -> Circuit {
        let mut b = CircuitBuilder::new(1);
        let a = b.add_sync(Synchronizer::flip_flop("A", p(1), 1.0, 0.3));
        let d = b.add_sync(Synchronizer::flip_flop("D", p(1), 1.0, 0.3).with_hold(2.0));
        b.connect_min_max(a, d, 0.1, 5.0);
        b.connect_min_max(d, a, 0.1, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn example1_checks_clean() {
        let report = check(&example1(), &CheckOptions::default()).unwrap();
        assert!(!report.has_errors(), "{report}");
        assert!(report.race().is_race_free());
        assert!((report.cycle_time() - 110.0).abs() < 1e-6);
    }

    #[test]
    fn racy_circuit_reports_double_clocking_errors() {
        let report = check(&racy(), &CheckOptions::default()).unwrap();
        assert!(report.has_errors(), "{report}");
        let races: Vec<&Finding> = report
            .findings()
            .findings
            .iter()
            .filter(|f| f.rule == Rule::DoubleClockingRace)
            .collect();
        assert_eq!(races.len(), report.race().races().len());
        assert!(!races.is_empty());
        assert!(races.iter().all(|f| f.severity == Severity::Error));
        // Errors sort first, and the witness text names the short path.
        assert_eq!(report.findings().findings[0].rule, Rule::DoubleClockingRace);
        assert!(races[0].message.contains("short path"));
        assert!(races[0].message.contains("clock separation"));
    }

    #[test]
    fn unmeasured_race_is_a_warning_not_an_error() {
        // Same shape as racy(), but no mindelay data: the race only
        // exists under the max-delay assumption, so it must not fail the
        // gate — unless the user denies the rule explicitly.
        let mut b = CircuitBuilder::new(1);
        let a = b.add_sync(Synchronizer::flip_flop("A", p(1), 1.0, 0.3));
        let d = b.add_sync(Synchronizer::flip_flop("D", p(1), 1.0, 0.3).with_hold(2.0));
        b.connect(a, d, 0.5);
        b.connect(d, a, 0.5);
        let circuit = b.build().unwrap();

        let report = check(&circuit, &CheckOptions::default()).unwrap();
        assert!(!report.race().is_race_free());
        assert!(!report.has_errors(), "{report}");
        assert!(report
            .findings()
            .findings
            .iter()
            .any(|f| f.rule == Rule::DoubleClockingRace && f.severity == Severity::Warn));

        let denied = check(
            &circuit,
            &CheckOptions {
                config: PassConfig::new().deny(Rule::DoubleClockingRace),
                ..CheckOptions::default()
            },
        )
        .unwrap();
        assert!(denied.has_errors());
    }

    #[test]
    fn allow_suppresses_race_findings_but_keeps_the_report() {
        let options = CheckOptions {
            config: PassConfig::new().allow(Rule::DoubleClockingRace),
            ..CheckOptions::default()
        };
        let report = check(&racy(), &options).unwrap();
        assert!(!report.has_errors(), "{report}");
        // The race analysis itself still records the hazard.
        assert!(!report.race().is_race_free());
    }

    #[test]
    fn pinned_cycle_time_is_respected() {
        let report = check(
            &example1(),
            &CheckOptions {
                cycle_time: Some(150.0),
                ..CheckOptions::default()
            },
        )
        .unwrap();
        assert!((report.cycle_time() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_pinned_cycle_time_is_an_error_not_a_finding() {
        let err = check(
            &example1(),
            &CheckOptions {
                cycle_time: Some(50.0),
                ..CheckOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, AnalyzeError::Timing(_)));
    }

    #[test]
    fn backends_agree_on_the_check_verdict() {
        for circuit in [example1(), racy()] {
            let graph = check(
                &circuit,
                &CheckOptions {
                    backend: Backend::Graph,
                    ..CheckOptions::default()
                },
            )
            .unwrap();
            let lp = check(
                &circuit,
                &CheckOptions {
                    backend: Backend::Lp,
                    ..CheckOptions::default()
                },
            )
            .unwrap();
            assert_eq!(graph.has_errors(), lp.has_errors());
            assert_eq!(graph.race().races().len(), lp.race().races().len());
        }
    }

    #[test]
    fn check_json_embeds_the_lint_findings_schema() {
        let report = check(&racy(), &CheckOptions::default()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"cycle_time\": "));
        assert!(json.contains("\"worst_hold_slack\": "));
        assert!(json.contains("\"races\": "));
        assert!(json.contains("\"rule\": \"double-clocking-race\""));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(
            json.contains("\"location\": \"A→D#0\"") || json.contains("\"location\": \"D→A#1\"")
        );
        // Byte-determinism: two runs render identically.
        let again = check(&racy(), &CheckOptions::default()).unwrap().to_json();
        assert_eq!(json, again);
    }
}
