//! The daemon's error taxonomy: every failure a request can hit maps to a
//! stable machine-readable *kind* slug plus a human-readable message.
//!
//! The kinds are part of the wire protocol (golden-tested), so clients can
//! branch on them without parsing prose: `limit` and `parse` mean "your
//! netlist is bad", `budget` means "your deadline expired", `overload` and
//! `shutting-down` mean "retry elsewhere / later", `panic` and
//! `quarantined` mean "this input broke the engine and is now fenced off".

use smo_circuit::CircuitError;
use smo_core::TimingError;
use smo_lp::LpError;
use std::fmt;

/// Machine-readable failure category. The wire slug is
/// [`ErrorKind::slug`]; the discriminants are ordered roughly
/// client-fault → server-fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line is not valid JSON, or is missing/has malformed
    /// fields (unknown command, bad types, …).
    BadRequest,
    /// The netlist text failed to parse.
    Parse,
    /// The netlist exceeded an input limit (size, line count, …).
    Limit,
    /// The netlist parsed but describes an invalid circuit (bad phase,
    /// negative delay, combinational cycle, …), or the request's options
    /// are invalid.
    InvalidCircuit,
    /// The timing constraints admit no solution.
    Infeasible,
    /// The LP was unbounded (a modelling error).
    Unbounded,
    /// The request's deadline expired (or its iteration budget ran out)
    /// before the solve finished.
    Budget,
    /// The departure-time fixpoint failed to converge.
    NotConverged,
    /// The handler panicked on this input. The input's fingerprint is
    /// quarantined; resubmitting it returns `quarantined` without
    /// re-running the engine.
    Panic,
    /// This input previously panicked the engine and is fenced off.
    Quarantined,
    /// The server is saturated (active + queued slots full); the request
    /// was shed without being run. Retry with backoff.
    Overload,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// Any other engine failure (numerical breakdown, internal misuse).
    Internal,
}

impl ErrorKind {
    /// The stable wire slug for this kind.
    pub fn slug(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Parse => "parse",
            ErrorKind::Limit => "limit",
            ErrorKind::InvalidCircuit => "invalid-circuit",
            ErrorKind::Infeasible => "infeasible",
            ErrorKind::Unbounded => "unbounded",
            ErrorKind::Budget => "budget",
            ErrorKind::NotConverged => "not-converged",
            ErrorKind::Panic => "panic",
            ErrorKind::Quarantined => "quarantined",
            ErrorKind::Overload => "overload",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Whether the client may usefully retry the same request later
    /// (transient server-side condition rather than a property of the
    /// input).
    pub fn retryable(self) -> bool {
        matches!(self, ErrorKind::Overload | ErrorKind::ShuttingDown)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// A categorized failure: kind slug plus message. This is what turns into
/// the `"error"` object of a response envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable explanation.
    pub message: String,
}

impl ApiError {
    /// Builds an error of `kind` with `message`.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ApiError {
            kind,
            message: message.into(),
        }
    }

    /// Shorthand for a `bad-request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError::new(ErrorKind::BadRequest, message)
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<CircuitError> for ApiError {
    fn from(e: CircuitError) -> Self {
        let kind = match &e {
            CircuitError::ParseNetlist { .. } => ErrorKind::Parse,
            CircuitError::InputLimit { .. } => ErrorKind::Limit,
            _ => ErrorKind::InvalidCircuit,
        };
        ApiError::new(kind, e.to_string())
    }
}

impl From<LpError> for ApiError {
    fn from(e: LpError) -> Self {
        let kind = match &e {
            LpError::Budget { .. } => ErrorKind::Budget,
            _ => ErrorKind::Internal,
        };
        ApiError::new(kind, e.to_string())
    }
}

impl From<TimingError> for ApiError {
    fn from(e: TimingError) -> Self {
        match e {
            TimingError::Circuit(c) => c.into(),
            TimingError::Lp(lp) => {
                // Preserve the outer "lp solver error" framing the CLI
                // prints, but classify by the inner error.
                let inner: ApiError = lp.into();
                ApiError::new(inner.kind, format!("lp solver error: {}", inner.message))
            }
            TimingError::Infeasible { ref reason } => {
                ApiError::new(ErrorKind::Infeasible, reason.clone())
            }
            TimingError::Unbounded => ApiError::new(ErrorKind::Unbounded, e.to_string()),
            TimingError::InvalidOptions { ref reason } => {
                ApiError::new(ErrorKind::InvalidCircuit, reason.clone())
            }
            TimingError::NotConverged { .. } => {
                ApiError::new(ErrorKind::NotConverged, e.to_string())
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_stable() {
        // These strings are wire protocol: changing one breaks clients.
        let all = [
            (ErrorKind::BadRequest, "bad-request"),
            (ErrorKind::Parse, "parse"),
            (ErrorKind::Limit, "limit"),
            (ErrorKind::InvalidCircuit, "invalid-circuit"),
            (ErrorKind::Infeasible, "infeasible"),
            (ErrorKind::Unbounded, "unbounded"),
            (ErrorKind::Budget, "budget"),
            (ErrorKind::NotConverged, "not-converged"),
            (ErrorKind::Panic, "panic"),
            (ErrorKind::Quarantined, "quarantined"),
            (ErrorKind::Overload, "overload"),
            (ErrorKind::ShuttingDown, "shutting-down"),
            (ErrorKind::Internal, "internal"),
        ];
        for (kind, slug) in all {
            assert_eq!(kind.slug(), slug);
        }
    }

    #[test]
    fn circuit_errors_classify() {
        let parse = CircuitError::ParseNetlist {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(ApiError::from(parse).kind, ErrorKind::Parse);
        let limit = CircuitError::InputLimit {
            what: "input bytes",
            limit: 8,
            actual: 9,
        };
        assert_eq!(ApiError::from(limit).kind, ErrorKind::Limit);
        assert_eq!(
            ApiError::from(CircuitError::EmptyCircuit).kind,
            ErrorKind::InvalidCircuit
        );
    }

    #[test]
    fn timing_errors_classify() {
        let budget = TimingError::Lp(LpError::Budget {
            iterations: 7,
            timed_out: true,
        });
        let e = ApiError::from(budget);
        assert_eq!(e.kind, ErrorKind::Budget);
        assert!(e.message.contains("lp solver error"));
        assert_eq!(
            ApiError::from(TimingError::Infeasible {
                reason: "no".into()
            })
            .kind,
            ErrorKind::Infeasible
        );
    }

    #[test]
    fn only_load_conditions_are_retryable() {
        assert!(ErrorKind::Overload.retryable());
        assert!(ErrorKind::ShuttingDown.retryable());
        assert!(!ErrorKind::Budget.retryable());
        assert!(!ErrorKind::Quarantined.retryable());
    }
}
