//! Wire requests: one JSON object per line.
//!
//! Every request is an object with a `"cmd"` field plus command-specific
//! fields. Optional everywhere:
//!
//! - `"id"` — any string, echoed verbatim in the response so clients can
//!   pipeline requests over one connection;
//! - `"deadline_ms"` — wall-clock budget for this request; on expiry the
//!   engine aborts the solve and returns a `budget` error instead of
//!   holding the connection.
//!
//! Work commands (`solve`, `verify`, `check`, `diagnose`, `sweep`) carry
//! the netlist *inline* as the `"netlist"` string field — the daemon never
//! reads the client's filesystem. Control commands (`ping`, `stats`,
//! `shutdown`, `debug-panic`) take no payload and bypass the load gate.

use crate::error::ApiError;
use crate::json::Json;
use smo_core::Backend;

/// A parsed request: envelope fields plus the typed command.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<String>,
    /// Per-request wall-clock budget in milliseconds. `Some(0)` is legal
    /// and means "already expired": the engine returns a `budget` error
    /// without starting the solve (useful for probing queue state).
    pub deadline_ms: Option<u64>,
    /// What to do.
    pub command: Command,
}

/// The command payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe; returns `{"ok":true}`.
    Ping,
    /// Server counters: requests served, cache hits, sheds, panics, …
    Stats,
    /// Begin graceful shutdown: drain in-flight work, then exit.
    Shutdown,
    /// Deliberately panic inside the handler. Exists so the
    /// panic-isolation path is testable end-to-end; undocumented in the
    /// usage banner.
    DebugPanic,
    /// Certified minimum cycle time (the daemon twin of `smo solve`).
    Solve {
        /// Netlist text (either dialect; auto-detected).
        netlist: String,
        /// Solver backend.
        backend: Backend,
        /// Independently check every solver verdict. The degradation
        /// ladder may clear this under load.
        certify: bool,
        /// Simplex pricing strategy (`"devex"`, `"partial"`, `"bland"`);
        /// honored by the sparse-LU variant, ignored by the others.
        pricing: smo_lp::Pricing,
    },
    /// Check a concrete schedule (the daemon twin of `smo verify`).
    Verify {
        /// Netlist text.
        netlist: String,
        /// Cycle time to check.
        cycle_time: f64,
        /// One `[start, width]` pair per phase.
        phases: Vec<(f64, f64)>,
        /// Solver backend for the existence cross-check.
        backend: Backend,
    },
    /// Lint + solve + race analysis (the daemon twin of `smo check`).
    Check {
        /// Netlist text.
        netlist: String,
        /// Optional target cycle time.
        cycle_time: Option<f64>,
        /// Solver backend.
        backend: Backend,
    },
    /// Feasibility diagnosis (the daemon twin of `smo diagnose`).
    Diagnose {
        /// Netlist text.
        netlist: String,
        /// Optional target cycle time.
        cycle_time: Option<f64>,
    },
    /// Warm-started parameter sweep (the daemon twin of `smo sweep`).
    Sweep {
        /// Netlist text.
        netlist: String,
        /// `"tc"` or `"delay"`.
        param: String,
        /// Number of sweep points.
        runs: usize,
        /// Edge index (for `param = "tc"`).
        edge: usize,
        /// Upper end of the delay grid (for `param = "tc"`); default
        /// `2 ×` the edge's present delay.
        max_delay: Option<f64>,
        /// Relative jitter (for `param = "delay"`).
        spread: f64,
        /// RNG seed (for `param = "delay"`).
        seed: u64,
        /// KKT-certify every re-solve.
        certify: bool,
        /// Simplex pricing strategy for every re-solve (sparse-LU only).
        pricing: smo_lp::Pricing,
    },
}

impl Command {
    /// The wire name of this command.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Ping => "ping",
            Command::Stats => "stats",
            Command::Shutdown => "shutdown",
            Command::DebugPanic => "debug-panic",
            Command::Solve { .. } => "solve",
            Command::Verify { .. } => "verify",
            Command::Check { .. } => "check",
            Command::Diagnose { .. } => "diagnose",
            Command::Sweep { .. } => "sweep",
        }
    }

    /// Control commands bypass the load gate, the cache and the
    /// degradation ladder; they must stay cheap and always answer.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Command::Ping | Command::Stats | Command::Shutdown | Command::DebugPanic
        )
    }

    /// The inline netlist text, for work commands.
    pub fn netlist(&self) -> Option<&str> {
        match self {
            Command::Solve { netlist, .. }
            | Command::Verify { netlist, .. }
            | Command::Check { netlist, .. }
            | Command::Diagnose { netlist, .. }
            | Command::Sweep { netlist, .. } => Some(netlist),
            _ => None,
        }
    }
}

impl Request {
    /// Parses one request line. All failures are `bad-request` errors with
    /// messages naming the offending field.
    pub fn parse(line: &str) -> Result<Request, ApiError> {
        let value =
            Json::parse(line).map_err(|e| ApiError::bad_request(format!("request line: {e}")))?;
        if !matches!(value, Json::Obj(_)) {
            return Err(ApiError::bad_request("request must be a JSON object"));
        }
        let id = match value.get("id") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(ApiError::bad_request("`id` must be a string")),
        };
        let deadline_ms = match value.get("deadline_ms") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ApiError::bad_request("`deadline_ms` must be a non-negative integer")
            })?),
        };
        let cmd = value
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("missing string field `cmd`"))?;
        let command = match cmd {
            "ping" => Command::Ping,
            "stats" => Command::Stats,
            "shutdown" => Command::Shutdown,
            "debug-panic" => Command::DebugPanic,
            "solve" => Command::Solve {
                netlist: req_netlist(&value)?,
                backend: opt_backend(&value)?,
                certify: opt_bool(&value, "certify")?.unwrap_or(true),
                pricing: opt_pricing(&value)?,
            },
            "verify" => {
                let phases = match value.get("phases") {
                    Some(Json::Arr(items)) => {
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                                ApiError::bad_request(
                                    "`phases` must be an array of [start, width] pairs",
                                )
                            })?;
                            let s = finite(&pair[0], "phases[].start")?;
                            let w = finite(&pair[1], "phases[].width")?;
                            out.push((s, w));
                        }
                        out
                    }
                    _ => {
                        return Err(ApiError::bad_request(
                            "verify needs `phases`: an array of [start, width] pairs",
                        ))
                    }
                };
                Command::Verify {
                    netlist: req_netlist(&value)?,
                    cycle_time: req_finite(&value, "cycle_time")?,
                    phases,
                    backend: opt_backend(&value)?,
                }
            }
            "check" => Command::Check {
                netlist: req_netlist(&value)?,
                cycle_time: opt_finite(&value, "cycle_time")?,
                backend: opt_backend(&value)?,
            },
            "diagnose" => Command::Diagnose {
                netlist: req_netlist(&value)?,
                cycle_time: opt_finite(&value, "cycle_time")?,
            },
            "sweep" => {
                let param = match value.get("param").and_then(Json::as_str) {
                    None => "delay".to_string(),
                    Some(p @ ("tc" | "delay")) => p.to_string(),
                    Some(other) => {
                        return Err(ApiError::bad_request(format!(
                            "`param` must be \"tc\" or \"delay\", got \"{other}\""
                        )))
                    }
                };
                let runs = opt_usize(&value, "runs")?.unwrap_or(16);
                if runs == 0 {
                    return Err(ApiError::bad_request("`runs` must be at least 1"));
                }
                Command::Sweep {
                    netlist: req_netlist(&value)?,
                    param,
                    runs,
                    edge: opt_usize(&value, "edge")?.unwrap_or(0),
                    max_delay: opt_finite(&value, "max_delay")?,
                    spread: opt_finite(&value, "spread")?.unwrap_or(0.1),
                    seed: match value.get("seed") {
                        None => 0,
                        Some(v) => v.as_u64().ok_or_else(|| {
                            ApiError::bad_request("`seed` must be a non-negative integer")
                        })?,
                    },
                    certify: opt_bool(&value, "certify")?.unwrap_or(false),
                    pricing: opt_pricing(&value)?,
                }
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown command `{other}` (known: ping, stats, shutdown, \
                     solve, verify, check, diagnose, sweep)"
                )))
            }
        };
        Ok(Request {
            id,
            deadline_ms,
            command,
        })
    }
}

fn req_netlist(value: &Json) -> Result<String, ApiError> {
    value
        .get("netlist")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_request("missing string field `netlist`"))
}

fn finite(v: &Json, field: &str) -> Result<f64, ApiError> {
    v.as_f64()
        .filter(|x| x.is_finite())
        .ok_or_else(|| ApiError::bad_request(format!("`{field}` must be a finite number")))
}

fn req_finite(value: &Json, field: &str) -> Result<f64, ApiError> {
    let v = value
        .get(field)
        .ok_or_else(|| ApiError::bad_request(format!("missing numeric field `{field}`")))?;
    finite(v, field)
}

fn opt_finite(value: &Json, field: &str) -> Result<Option<f64>, ApiError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => finite(v, field).map(Some),
    }
}

fn opt_bool(value: &Json, field: &str) -> Result<Option<bool>, ApiError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| ApiError::bad_request(format!("`{field}` must be a boolean"))),
    }
}

fn opt_usize(value: &Json, field: &str) -> Result<Option<usize>, ApiError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(|n| Some(n as usize)).ok_or_else(|| {
            ApiError::bad_request(format!("`{field}` must be a non-negative integer"))
        }),
    }
}

fn opt_pricing(value: &Json) -> Result<smo_lp::Pricing, ApiError> {
    match value.get("pricing") {
        None | Some(Json::Null) => Ok(smo_lp::Pricing::default()),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| ApiError::bad_request("`pricing` must be a string"))?;
            s.parse()
                .map_err(|e: String| ApiError::bad_request(format!("`pricing`: {e}")))
        }
    }
}

fn opt_backend(value: &Json) -> Result<Backend, ApiError> {
    match value.get("backend") {
        None | Some(Json::Null) => Ok(Backend::Auto),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| ApiError::bad_request("`backend` must be a string"))?;
            s.parse()
                .map_err(|e: String| ApiError::bad_request(format!("`backend`: {e}")))
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_solve_request() {
        let r = Request::parse(
            r#"{"id":"a1","cmd":"solve","netlist":"clock 2\n","deadline_ms":250,"backend":"graph","certify":false}"#,
        )
        .unwrap();
        assert_eq!(r.id.as_deref(), Some("a1"));
        assert_eq!(r.deadline_ms, Some(250));
        match r.command {
            Command::Solve {
                netlist,
                backend,
                certify,
                pricing,
            } => {
                assert_eq!(netlist, "clock 2\n");
                assert_eq!(backend, Backend::Graph);
                assert!(!certify);
                assert_eq!(pricing, smo_lp::Pricing::default());
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn defaults_are_applied() {
        let r = Request::parse(r#"{"cmd":"solve","netlist":""}"#).unwrap();
        assert_eq!(r.id, None);
        assert_eq!(r.deadline_ms, None);
        assert!(matches!(
            r.command,
            Command::Solve {
                backend: Backend::Auto,
                certify: true,
                ..
            }
        ));
    }

    #[test]
    fn verify_needs_phase_pairs() {
        let r = Request::parse(
            r#"{"cmd":"verify","netlist":"x","cycle_time":10,"phases":[[0,5],[5,5]]}"#,
        )
        .unwrap();
        match r.command {
            Command::Verify {
                cycle_time, phases, ..
            } => {
                assert_eq!(cycle_time, 10.0);
                assert_eq!(phases, vec![(0.0, 5.0), (5.0, 5.0)]);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let e = Request::parse(r#"{"cmd":"verify","netlist":"x","cycle_time":10,"phases":[[0]]}"#)
            .unwrap_err();
        assert!(e.message.contains("phases"));
    }

    #[test]
    fn hostile_requests_are_bad_request() {
        for line in [
            "",
            "not json",
            "[]",
            "42",
            r#"{"cmd":"frobnicate"}"#,
            r#"{"netlist":"x"}"#,
            r#"{"cmd":"solve"}"#,
            r#"{"cmd":"solve","netlist":7}"#,
            r#"{"cmd":"solve","netlist":"","deadline_ms":-1}"#,
            r#"{"cmd":"solve","netlist":"","deadline_ms":1.5}"#,
            r#"{"cmd":"sweep","netlist":"","param":"voltage"}"#,
            r#"{"cmd":"sweep","netlist":"","runs":0}"#,
            r#"{"cmd":"check","netlist":"","cycle_time":"ten"}"#,
            r#"{"cmd":"solve","netlist":"","backend":"quantum"}"#,
            r#"{"cmd":"solve","netlist":"","pricing":"quantum"}"#,
            r#"{"cmd":"sweep","netlist":"","pricing":7}"#,
        ] {
            let e = Request::parse(line).unwrap_err();
            assert_eq!(e.kind, crate::error::ErrorKind::BadRequest, "line: {line}");
        }
    }

    #[test]
    fn control_commands_carry_no_payload() {
        for (line, name) in [
            (r#"{"cmd":"ping"}"#, "ping"),
            (r#"{"cmd":"stats"}"#, "stats"),
            (r#"{"cmd":"shutdown"}"#, "shutdown"),
            (r#"{"cmd":"debug-panic"}"#, "debug-panic"),
        ] {
            let r = Request::parse(line).unwrap();
            assert!(r.command.is_control());
            assert_eq!(r.command.name(), name);
            assert_eq!(r.command.netlist(), None);
        }
    }
}
