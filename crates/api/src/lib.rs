//! smo-api — the shared request/response layer behind the `smo` CLI and
//! the `smo serve` daemon.
//!
//! The 1990 SMO program was a batch tool: parse one netlist, solve one
//! LP, print, exit. This crate is what turns that batch core into a
//! *service* without forking the code path: the CLI and the daemon both
//! call [`ops`], so a cycle time computed over a socket is byte-for-byte
//! the JSON the CLI would have printed (compacted onto one line).
//!
//! Layering, bottom up:
//!
//! - [`json`] — a std-only JSON value with a hostile-input-safe parser
//!   and a byte-deterministic compact renderer (the wire format);
//! - [`error`] — the failure taxonomy: every error a request can hit
//!   maps to a stable machine-readable kind slug;
//! - [`request`] — the wire protocol: one JSON object per line, with
//!   per-request ids and wall-clock deadlines;
//! - [`ops`] — the operations themselves (solve / verify / check /
//!   diagnose / sweep), shared verbatim by both frontends;
//! - [`cache`] — fingerprint-keyed LRU caches (parsed circuits, warm
//!   simplex bases, finished results) under hard byte budgets, plus the
//!   quarantine set for inputs that crashed the engine;
//! - [`engine`] — deadline mapping, the load-based degradation ladder,
//!   per-request panic isolation, and the response envelope;
//! - [`server`] — the TCP front end: thread-per-connection, bounded
//!   admission gate with explicit load-shedding, graceful drain;
//! - [`bench`] — the `smo bench-serve` load generator.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]
#![allow(clippy::missing_panics_doc)]

pub mod bench;
pub mod cache;
pub mod engine;
pub mod error;
pub mod json;
pub mod ops;
pub mod request;
pub mod server;

pub use cache::{fingerprint, ApiCache, CacheConfig, CacheStats};
pub use engine::{Degradation, Engine, EngineConfig, Load, Reply};
pub use error::{ApiError, ErrorKind};
pub use json::{Json, JsonError};
pub use ops::{parse_netlist, solve_json, sweep_json, ParseLimits};
pub use request::{Command, Request};
pub use server::{serve, Client, ServerConfig, ServerHandle};
