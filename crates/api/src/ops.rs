//! The operations shared by the `smo` CLI and the `smo serve` daemon.
//!
//! Both frontends funnel through this module so there is exactly one
//! implementation of each query and one JSON rendering of each result:
//! the CLI prints the pretty multi-line form directly, the daemon
//! re-renders it compactly (see [`crate::json`]) — same structure, same
//! numbers, byte-deterministic either way.

use crate::error::ApiError;
use smo_circuit::{netlist, Circuit, CircuitError, ClockSchedule, EdgeId};
use smo_core::{
    graph_feasible_at_within, min_cycle_time_warm, sweep_cycle_time, verify, Backend, MlpOptions,
    SweepOptions, SweepParam, SweepReport, TimingSolution,
};
use smo_lp::{Basis, SolveBudget};

pub use smo_circuit::netlist::ParseLimits;

/// Parses netlist text, auto-detecting the gate-level dialect (the
/// file-reading half of the CLI's loader lives in the binary; the daemon
/// receives netlists inline and never touches the filesystem).
pub fn parse_netlist(src: &str, limits: &ParseLimits) -> Result<Circuit, CircuitError> {
    let gate_level = src.lines().any(|l| {
        let t = l.split('#').next().unwrap_or("").trim_start();
        t.starts_with("gate ") || t.starts_with("wire ")
    });
    if gate_level {
        netlist::parse_gates_with_limits(src, limits)
    } else {
        netlist::parse_with_limits(src, limits)
    }
}

/// Renders a solve result as a JSON object (hand-rolled, matching the
/// other subcommands' `to_json` style).
pub fn solve_json(sol: &TimingSolution) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cycle_time\": {:.6},\n", sol.cycle_time()));
    out.push_str(&format!("  \"certified\": {},\n", sol.certified()));
    out.push_str(&format!(
        "  \"backend\": \"{}\",\n",
        if sol.graph_certificate().is_some() {
            "graph"
        } else {
            "lp"
        }
    ));
    if let Some(gc) = sol.graph_certificate() {
        out.push_str(&format!(
            "  \"graph_certificate\": {{\"valid\": {}, \"implied_lower\": {:.6}, \
             \"witness_rows\": {}, \"max_violation\": {:e}}},\n",
            gc.is_valid(),
            gc.implied_lower(),
            gc.witness_rows(),
            gc.max_violation()
        ));
    }
    out.push_str(&format!(
        "  \"lp_iterations\": {},\n  \"update_iterations\": {},\n  \"num_constraints\": {},\n",
        sol.lp_iterations(),
        sol.update_iterations(),
        sol.num_constraints()
    ));
    out.push_str("  \"certificates\": [");
    for (i, cert) in sol.certificates().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"valid\": {},\n", cert.is_valid()));
        out.push_str(&format!("      \"tolerance\": {:e},\n", cert.tol()));
        out.push_str(&format!("      \"worst_residual\": {:e},\n", cert.worst()));
        out.push_str("      \"residuals\": {");
        for (j, (name, value)) in cert.residuals().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {value:e}"));
        }
        out.push_str("}\n    }");
    }
    if !sol.certificates().is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// Renders a sweep report as JSON. Deliberately excludes anything
/// wall-clock-dependent so the bytes are identical for any `--jobs` value.
pub fn sweep_json(report: &SweepReport, options: &SweepOptions) -> String {
    let mut out = String::from("{\n");
    match &options.param {
        SweepParam::Tc { edge, max_delay } => {
            out.push_str(&format!(
                "  \"param\": \"tc\",\n  \"edge\": {},\n  \"max_delay\": {:.6},\n",
                edge.index(),
                max_delay
            ));
        }
        SweepParam::Delay { spread } => {
            out.push_str(&format!(
                "  \"param\": \"delay\",\n  \"spread\": {spread:.6},\n  \"seed\": {},\n",
                options.seed
            ));
        }
    }
    out.push_str(&format!(
        "  \"certified\": {},\n  \"base_cycle_time\": {:.6},\n  \"base_iterations\": {},\n",
        options.certify, report.base_cycle_time, report.base_iterations
    ));
    out.push_str(&format!(
        "  \"min_cycle_time\": {:.6},\n  \"max_cycle_time\": {:.6},\n  \"mean_cycle_time\": {:.6},\n  \"warm_iterations\": {},\n",
        report.min_cycle_time, report.max_cycle_time, report.mean_cycle_time, report.warm_iterations
    ));
    out.push_str("  \"breakpoints\": [");
    for (i, b) in report.breakpoints.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{b:.6}"));
    }
    out.push_str("],\n  \"runs\": [");
    for (i, run) in report.runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"index\": {}, \"value\": {:.6}, \"cycle_time\": {:.6}, \"iterations\": {}}}",
            run.index, run.value, run.cycle_time, run.iterations
        ));
    }
    out.push_str("\n  ]\n}");
    out
}

/// Solves for the minimum cycle time, optionally warm-starting from a
/// cached basis, and returns the pretty JSON plus the basis to cache for
/// the next same-topology request.
pub fn run_solve(
    circuit: &Circuit,
    options: &MlpOptions,
    warm: Option<&Basis>,
) -> Result<(String, Option<Basis>), ApiError> {
    let (sol, basis) = min_cycle_time_warm(circuit, options, warm)?;
    Ok((solve_json(&sol), basis))
}

/// Checks a concrete schedule row by row and (except on the pure-LP
/// backend) cross-checks existence on the difference graph, under
/// `budget`.
pub fn run_verify(
    circuit: &Circuit,
    cycle_time: f64,
    phases: &[(f64, f64)],
    backend: Backend,
    budget: &SolveBudget,
) -> Result<String, ApiError> {
    if phases.len() != circuit.num_phases() {
        return Err(ApiError::bad_request(format!(
            "{} phase(s) given but the circuit has {}",
            phases.len(),
            circuit.num_phases()
        )));
    }
    let starts: Vec<f64> = phases.iter().map(|p| p.0).collect();
    let widths: Vec<f64> = phases.iter().map(|p| p.1).collect();
    let sched = ClockSchedule::new(cycle_time, starts, widths)?;
    let report = verify(circuit, &sched);
    let exists = if backend == Backend::Lp {
        None
    } else {
        graph_feasible_at_within(circuit, cycle_time, budget)?
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cycle_time\": {cycle_time:.6},\n"));
    out.push_str(&format!("  \"feasible\": {},\n", report.is_feasible()));
    let worst = report.worst_slack();
    if worst.is_finite() {
        out.push_str(&format!("  \"worst_slack\": {worst:.6},\n"));
    } else {
        out.push_str("  \"worst_slack\": null,\n");
    }
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&crate::json::escape(&v.to_string()));
    }
    out.push_str("],\n");
    match exists {
        Some(e) => out.push_str(&format!("  \"exists_at_tc\": {e}\n")),
        None => out.push_str("  \"exists_at_tc\": null\n"),
    }
    out.push('}');
    Ok(out)
}

/// Lint + solve + race analysis; returns the report's own JSON.
pub fn run_check(
    circuit: &Circuit,
    options: &smo_analyze::CheckOptions,
) -> Result<String, ApiError> {
    let report = smo_analyze::check(circuit, options)
        .map_err(|e| ApiError::new(crate::error::ErrorKind::Internal, e.to_string()))?;
    Ok(report.to_json())
}

/// Feasibility diagnosis; returns the report's own JSON.
pub fn run_diagnose(circuit: &Circuit, cycle_time: Option<f64>) -> Result<String, ApiError> {
    let d = smo_analyze::diagnose(circuit, cycle_time)?;
    Ok(d.to_json())
}

/// Warm-started parameter sweep. The daemon always runs sweeps
/// single-threaded (`jobs = 1`): concurrency belongs to the connection
/// layer, and the report bytes are identical for any jobs value anyway.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep(
    circuit: &Circuit,
    param: &str,
    runs: usize,
    edge: usize,
    max_delay: Option<f64>,
    spread: f64,
    seed: u64,
    certify: bool,
    pricing: smo_lp::Pricing,
) -> Result<String, ApiError> {
    let param = match param {
        "tc" => {
            if edge >= circuit.num_edges() {
                return Err(ApiError::bad_request(format!(
                    "`edge` {edge} out of range ({} edges)",
                    circuit.num_edges()
                )));
            }
            let max_delay = max_delay.unwrap_or(2.0 * circuit.edge(EdgeId::new(edge)).max_delay);
            SweepParam::Tc {
                edge: EdgeId::new(edge),
                max_delay,
            }
        }
        _ => SweepParam::Delay { spread },
    };
    let options = SweepOptions {
        param,
        runs,
        seed,
        jobs: 1,
        certify,
        pricing,
        ..Default::default()
    };
    let reports = sweep_cycle_time(std::slice::from_ref(circuit), &options)?;
    Ok(sweep_json(&reports[0], &options))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use smo_gen::paper;

    #[test]
    fn parse_netlist_detects_dialects() {
        let latch = netlist::write(&paper::example2());
        assert!(parse_netlist(&latch, &ParseLimits::default()).is_ok());
        // A gate-level line flips the parser.
        let bad_gate = "clock 2 10\ngate g1 = misparsed";
        let e = parse_netlist(bad_gate, &ParseLimits::default()).unwrap_err();
        assert!(matches!(e, CircuitError::ParseNetlist { .. }));
    }

    #[test]
    fn run_solve_matches_plain_solve_and_returns_a_basis() {
        let circuit = paper::example2();
        let options = MlpOptions::default();
        let (json, _basis) = run_solve(&circuit, &options, None).unwrap();
        let direct = smo_core::min_cycle_time_with(&circuit, &options).unwrap();
        assert_eq!(json, solve_json(&direct));
    }

    #[test]
    fn run_verify_reports_both_verdicts() {
        let circuit = paper::example2();
        let sol = smo_core::min_cycle_time(&circuit).unwrap();
        let sched = sol.schedule();
        let phases: Vec<(f64, f64)> = (0..circuit.num_phases())
            .map(|i| {
                let p = smo_circuit::PhaseId::new(i);
                (sched.start(p), sched.width(p))
            })
            .collect();
        let json = run_verify(
            &circuit,
            sched.cycle(),
            &phases,
            Backend::Auto,
            &SolveBudget::UNLIMITED,
        )
        .unwrap();
        assert!(json.contains("\"feasible\": true"));
        assert!(json.contains("\"exists_at_tc\": true"));
        // Wrong phase count is a bad request, not a panic.
        let e =
            run_verify(&circuit, 10.0, &[], Backend::Auto, &SolveBudget::UNLIMITED).unwrap_err();
        assert_eq!(e.kind, crate::error::ErrorKind::BadRequest);
    }

    #[test]
    fn run_sweep_rejects_out_of_range_edges() {
        let circuit = paper::example2();
        let e = run_sweep(
            &circuit,
            "tc",
            4,
            10_000,
            None,
            0.1,
            0,
            false,
            Default::default(),
        )
        .unwrap_err();
        assert_eq!(e.kind, crate::error::ErrorKind::BadRequest);
        let json = run_sweep(
            &circuit,
            "delay",
            3,
            0,
            None,
            0.05,
            7,
            false,
            Default::default(),
        )
        .unwrap();
        assert!(json.contains("\"param\": \"delay\""));
    }
}
