//! Fingerprint-keyed caches with LRU eviction under a hard byte budget.
//!
//! The daemon sees the same netlists over and over (CI re-checks, sweep
//! dashboards, editor integrations), so it caches at three levels:
//!
//! 1. **circuits** — parsed [`Circuit`]s keyed by a fingerprint of the
//!    netlist bytes, skipping the parser entirely on a repeat;
//! 2. **bases** — the optimal simplex [`Basis`] from a previous solve of
//!    the same netlist, warm-starting the next solve (delay-perturbed
//!    requests of the same topology converge in a handful of pivots);
//! 3. **results** — finished response payloads keyed by
//!    `(fingerprint, request signature)`, served without running the
//!    engine at all.
//!
//! Every entry carries an approximate byte cost; the cache evicts
//! least-recently-used entries whenever a budget is exceeded, so a hostile
//! client streaming unique netlists cannot grow the daemon without bound.
//! A separate **quarantine** set records fingerprints whose requests
//! panicked the engine: they are fenced off permanently (never evicted —
//! a panic is a bug, and re-running the bug on retry helps nobody).

use smo_circuit::Circuit;
use smo_lp::Basis;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

/// FNV-1a 64-bit hash — the cache key for netlist bytes. Not
/// collision-resistant against adversaries, but a collision only yields a
/// wrong *cached* answer for the colliding netlist, never memory
/// unsafety; and the daemon is not a trust boundary between clients.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A byte-budgeted LRU map. Recency is a monotone counter stamped on
/// every touch; eviction scans for the stale minimum (the maps here hold
/// tens of entries, so O(n) eviction beats the constant factor of an
/// intrusive list).
struct LruMap<K, V> {
    entries: HashMap<K, (V, u64, usize)>, // value, last-use stamp, cost
    clock: u64,
    total_cost: usize,
    max_cost: usize,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    fn new(max_cost: usize) -> Self {
        LruMap {
            entries: HashMap::new(),
            clock: 0,
            total_cost: 0,
            max_cost,
        }
    }

    fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(v, stamp, _)| {
            *stamp = clock;
            &*v
        })
    }

    fn insert(&mut self, key: K, value: V, cost: usize) {
        if cost > self.max_cost {
            return; // would evict everything and still not fit
        }
        if let Some((_, _, old)) = self.entries.remove(&key) {
            self.total_cost -= old;
        }
        self.clock += 1;
        self.entries.insert(key, (value, self.clock, cost));
        self.total_cost += cost;
        while self.total_cost > self.max_cost {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some((_, _, c)) = self.entries.remove(&oldest) {
                self.total_cost -= c;
            }
        }
    }

    fn remove(&mut self, key: &K) {
        if let Some((_, _, cost)) = self.entries.remove(key) {
            self.total_cost -= cost;
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Cache sizing knobs (bytes, approximate).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Budget for parsed circuits.
    pub circuit_bytes: usize,
    /// Budget for finished response payloads.
    pub result_bytes: usize,
    /// Budget for warm-start bases.
    pub basis_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            circuit_bytes: 8 << 20,
            result_bytes: 8 << 20,
            basis_bytes: 4 << 20,
        }
    }
}

/// Running hit/miss counters, surfaced by the `stats` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Result-cache hits (engine skipped entirely).
    pub result_hits: u64,
    /// Parsed-circuit hits (parser skipped).
    pub circuit_hits: u64,
    /// Warm-basis hits (solver warm-started).
    pub basis_hits: u64,
    /// Requests refused because their input is quarantined.
    pub quarantined: u64,
}

/// The daemon's shared cache. Not internally synchronized — the engine
/// wraps it in a `Mutex` and holds the lock only for lookups and
/// insertions, never across a solve.
pub struct ApiCache {
    circuits: LruMap<u64, Arc<Circuit>>,
    results: LruMap<(u64, String), Arc<str>>,
    bases: LruMap<u64, Basis>,
    quarantine: HashSet<u64>,
    /// Counters; publicly readable via [`ApiCache::stats`].
    stats: CacheStats,
}

impl ApiCache {
    /// Creates an empty cache under `config`'s budgets.
    pub fn new(config: &CacheConfig) -> Self {
        ApiCache {
            circuits: LruMap::new(config.circuit_bytes),
            results: LruMap::new(config.result_bytes),
            bases: LruMap::new(config.basis_bytes),
            quarantine: HashSet::new(),
            stats: CacheStats::default(),
        }
    }

    /// Whether `fp` previously panicked the engine.
    pub fn is_quarantined(&mut self, fp: u64) -> bool {
        let hit = self.quarantine.contains(&fp);
        if hit {
            self.stats.quarantined += 1;
        }
        hit
    }

    /// Fences `fp` off permanently and purges every cached artifact
    /// derived from it — a panic mid-handler may have left half-built
    /// state behind, and quarantined entries must not be servable.
    pub fn quarantine(&mut self, fp: u64) {
        self.quarantine.insert(fp);
        self.circuits.remove(&fp);
        self.bases.remove(&fp);
        // Result keys are (fp, signature); collect then remove.
        let stale: Vec<(u64, String)> = self
            .results
            .entries
            .keys()
            .filter(|(f, _)| *f == fp)
            .cloned()
            .collect();
        for key in stale {
            self.results.remove(&key);
        }
    }

    /// A cached parsed circuit for `fp`.
    pub fn circuit(&mut self, fp: u64) -> Option<Arc<Circuit>> {
        let hit = self.circuits.get(&fp).cloned();
        if hit.is_some() {
            self.stats.circuit_hits += 1;
        }
        hit
    }

    /// Caches a parsed circuit. Cost model: edges and syncs dominate.
    pub fn store_circuit(&mut self, fp: u64, circuit: Arc<Circuit>) {
        let cost = 256 + circuit.num_syncs() * 128 + circuit.num_edges() * 64;
        self.circuits.insert(fp, circuit, cost);
    }

    /// A cached finished response for `(fp, signature)`.
    pub fn result(&mut self, fp: u64, signature: &str) -> Option<Arc<str>> {
        let hit = self.results.get(&(fp, signature.to_string())).cloned();
        if hit.is_some() {
            self.stats.result_hits += 1;
        }
        hit
    }

    /// Caches a finished response payload.
    pub fn store_result(&mut self, fp: u64, signature: String, payload: Arc<str>) {
        let cost = 64 + signature.len() + payload.len();
        self.results.insert((fp, signature), payload, cost);
    }

    /// A cached warm-start basis for `fp`.
    pub fn basis(&mut self, fp: u64) -> Option<Basis> {
        let hit = self.bases.get(&fp).cloned();
        if hit.is_some() {
            self.stats.basis_hits += 1;
        }
        hit
    }

    /// Caches the optimal basis from a finished solve of `fp`.
    pub fn store_basis(&mut self, fp: u64, basis: Basis) {
        // `size()` counts basic columns; a warm basis may also carry a
        // dense size×size B⁻¹, which dominates — budget for it.
        let cost = 64 + basis.size() * basis.size() * std::mem::size_of::<f64>();
        self.bases.insert(fp, basis, cost);
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entry counts (circuits, results, bases, quarantined) for `stats`.
    pub fn sizes(&self) -> (usize, usize, usize, usize) {
        (
            self.circuits.len(),
            self.results.len(),
            self.bases.len(),
            self.quarantine.len(),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use smo_gen::paper;

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
    }

    #[test]
    fn lru_evicts_the_coldest_entry_under_budget_pressure() {
        let mut m: LruMap<u32, &'static str> = LruMap::new(100);
        m.insert(1, "a", 40);
        m.insert(2, "b", 40);
        assert_eq!(m.get(&1), Some(&"a")); // touch 1 → 2 is now coldest
        m.insert(3, "c", 40); // over budget → evict 2
        assert_eq!(m.get(&2), None);
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&3), Some(&"c"));
        // An entry larger than the whole budget is refused outright.
        m.insert(4, "d", 1000);
        assert_eq!(m.get(&4), None);
    }

    #[test]
    fn quarantine_purges_and_fences() {
        let mut cache = ApiCache::new(&CacheConfig::default());
        let fp = fingerprint(b"poison");
        cache.store_circuit(fp, Arc::new(paper::example2()));
        cache.store_result(fp, "solve".into(), Arc::from("{}"));
        assert!(cache.circuit(fp).is_some());
        cache.quarantine(fp);
        assert!(cache.is_quarantined(fp));
        assert!(cache.circuit(fp).is_none());
        assert!(cache.result(fp, "solve").is_none());
        assert_eq!(cache.stats().quarantined, 1);
    }

    #[test]
    fn result_cache_round_trips() {
        let mut cache = ApiCache::new(&CacheConfig::default());
        let fp = fingerprint(b"x");
        assert!(cache.result(fp, "sig").is_none());
        cache.store_result(fp, "sig".into(), Arc::from("payload"));
        assert_eq!(cache.result(fp, "sig").as_deref(), Some("payload"));
        assert!(cache.result(fp, "other-sig").is_none());
        assert_eq!(cache.stats().result_hits, 1);
    }
}
