//! A minimal, std-only JSON value: parser and byte-deterministic
//! compact renderer.
//!
//! The daemon protocol is line-delimited JSON over untrusted sockets, and
//! the build environment vendors no real `serde`, so this module carries
//! the whole responsibility: parse hostile request bytes under hard depth
//! and size limits (never panic, never allocate unboundedly), and render
//! responses compactly with *stable bytes* — object insertion order is
//! preserved, floats format exactly as Rust's shortest-roundtrip `{}`, so
//! the same value always serializes to the same line. The CLI's existing
//! pretty `to_json()` reports are re-parsed through [`Json::parse`] and
//! re-rendered with [`Json::render_compact`] to become single-line daemon
//! payloads, guaranteeing both frontends speak byte-identical structures.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]. Generous for every
/// report the tools emit (≤ 6), tight enough that `[[[[…` cannot blow the
/// parser's stack.
const MAX_DEPTH: usize = 48;

/// A parsed JSON value. Objects keep insertion order (`Vec`, not a map):
/// rendering is deterministic and key order survives a parse→render trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has one numeric type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// A structured parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed input, nesting beyond the depth cap, or
    /// trailing non-whitespace bytes.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing bytes after the value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions,
    /// negatives and values beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace), preserving object key order.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_num(*n)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats a number the way the reports do: integers without a decimal
/// point, everything else via Rust's shortest-roundtrip float formatting.
/// Non-finite values (unrepresentable in JSON) render as `null`.
pub fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        return "null".into();
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: `s` as a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::new();
    write_escaped(s, &mut out);
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                offset: start,
                message: format!("number `{text}` overflows f64"),
            });
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. Input is a &str, so byte
                    // boundaries are already valid; copy bytes until the
                    // next char boundary.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(chunk);
                    } else {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, combining UTF-16 surrogate
    /// pairs; the leading `\u` is already consumed.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u', "expected low surrogate `\\u`")?;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_rerenders_compactly() {
        let src = r#"{ "a": 1, "b": [true, null, "x\ny"], "c": {"d": 1.5} }"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(
            v.render_compact(),
            r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":1.5}}"#
        );
        // Round trip is a fixpoint.
        let again = Json::parse(&v.render_compact()).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn preserves_object_key_order() {
        let src = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(Json::parse(src).unwrap().render_compact(), src);
    }

    #[test]
    fn rejects_hostile_shapes() {
        assert!(Json::parse(&"[".repeat(1000)).is_err()); // depth bomb
        assert!(Json::parse("{\"a\":1,}").is_err()); // trailing comma
        assert!(Json::parse("1 2").is_err()); // trailing garbage
        assert!(Json::parse("\"abc").is_err()); // unterminated
        assert!(Json::parse("1e999").is_err()); // overflow
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""A😀""#).unwrap(),
            Json::Str("A\u{1F600}".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err()); // unpaired surrogate
    }

    #[test]
    fn number_formatting_is_stable() {
        assert_eq!(fmt_num(110.0), "110");
        assert_eq!(fmt_num(1.5), "1.5");
        assert_eq!(fmt_num(-0.25), "-0.25");
        assert_eq!(fmt_num(f64::NAN), "null");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
