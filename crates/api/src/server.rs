//! The `smo serve` TCP front end: line-delimited JSON over a socket,
//! thread-per-connection, with admission control and graceful shutdown.
//!
//! ## Backpressure
//!
//! Work commands pass through an admission [`Gate`] before touching the
//! engine: up to `max_active` run concurrently, up to `max_queue` more
//! wait on a condvar, and anything beyond that is **shed immediately**
//! with a structured `overload` error — the daemon never buffers unbounded
//! work, and a saturated server answers (with a refusal) in microseconds
//! rather than timing out. Control commands (`ping`, `stats`, `shutdown`)
//! bypass the gate so the daemon stays observable *especially* when it is
//! drowning.
//!
//! ## Shutdown
//!
//! `shutdown` (the command, or [`ServerHandle::shutdown`]) flips a flag;
//! the accept loop wakes via a self-connection and stops accepting,
//! connection threads finish the request they are executing, refuse any
//! newly-read line with `shutting-down`, and exit at their next 250 ms
//! read-timeout tick. [`ServerHandle::wait`] joins everything, so when it
//! returns no request is half-done.

use crate::engine::{Engine, EngineConfig, Load, Reply};
use crate::request::Request;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How often blocked reads wake up to re-check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(250);

/// Server knobs. The defaults are what `smo serve` ships with.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Concurrent work requests actually executing.
    pub max_active: usize,
    /// Work requests allowed to wait for a slot; beyond this, shed.
    pub max_queue: usize,
    /// Hard cap on one request line (the inline netlist dominates).
    pub max_line_bytes: usize,
    /// Engine knobs (parse limits, cache budgets).
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_active: cores.max(1),
            max_queue: 2 * cores.max(1),
            max_line_bytes: 8 << 20,
            engine: EngineConfig::default(),
        }
    }
}

/// Admission gate: a counting semaphore with a bounded wait queue.
struct Gate {
    state: Mutex<(usize, usize)>, // (active, queued)
    freed: Condvar,
    max_active: usize,
    max_queue: usize,
    draining: Arc<AtomicBool>,
}

/// Holding one of these is holding an execution slot.
struct GateGuard<'a> {
    gate: &'a Gate,
}

impl Gate {
    /// Acquires an execution slot, waiting in the bounded queue if the
    /// server is busy. Returns `None` when the queue is full too — the
    /// caller must shed the request.
    fn enter(&self) -> Option<GateGuard<'_>> {
        let mut state = lock(&self.state);
        if state.0 < self.max_active {
            state.0 += 1;
            return Some(GateGuard { gate: self });
        }
        if state.1 >= self.max_queue {
            return None;
        }
        state.1 += 1;
        while state.0 >= self.max_active {
            // Waiting is still bounded in practice: every completing
            // request notifies, and during a drain the executing requests
            // finish (they are the only thing ahead of us).
            state = match self.freed.wait_timeout(state, READ_TICK) {
                Ok((s, _)) => s,
                Err(poisoned) => poisoned.into_inner().0,
            };
            if self.draining.load(Ordering::SeqCst) {
                state.1 -= 1;
                return None;
            }
        }
        state.1 -= 1;
        state.0 += 1;
        Some(GateGuard { gate: self })
    }

    /// Snapshot for the degradation ladder and `stats`.
    fn load(&self) -> Load {
        let state = lock(&self.state);
        Load {
            active: state.0,
            queued: state.1,
            max_active: self.max_active,
            max_queue: self.max_queue,
        }
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        let mut state = lock(&self.gate.state);
        state.0 = state.0.saturating_sub(1);
        drop(state);
        self.gate.freed.notify_one();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] + [`ServerHandle::wait`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain, as if a client had sent `shutdown`.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: it may be blocked in accept().
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the accept loop and every connection thread have
    /// exited (i.e. all in-flight requests have drained).
    pub fn wait(self) {
        let _ = self.accept_thread.join();
    }
}

/// Binds and starts serving. Returns once the listener is live; the
/// accept loop runs on a background thread.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let engine = Arc::new(Engine::new(config.engine.clone()));
    let gate = Arc::new(Gate {
        state: Mutex::new((0, 0)),
        freed: Condvar::new(),
        max_active: config.max_active.max(1),
        max_queue: config.max_queue,
        draining: Arc::clone(&shutdown),
    });

    let accept_shutdown = Arc::clone(&shutdown);
    let max_line_bytes = config.max_line_bytes;
    let accept_thread = std::thread::spawn(move || {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let engine = Arc::clone(&engine);
            let gate = Arc::clone(&gate);
            let shutdown = Arc::clone(&accept_shutdown);
            let addr = addr;
            connections.push(std::thread::spawn(move || {
                handle_connection(stream, &engine, &gate, &shutdown, max_line_bytes, addr);
            }));
            // Reap finished threads so a long-lived daemon doesn't hold a
            // handle per historical connection.
            connections.retain(|h| !h.is_finished());
        }
        for handle in connections {
            let _ = handle.join();
        }
    });

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread,
    })
}

/// One connection: read lines, answer lines, until EOF or drain.
fn handle_connection(
    mut stream: TcpStream,
    engine: &Engine,
    gate: &Gate,
    shutdown: &AtomicBool,
    max_line_bytes: usize,
    addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete line already buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line_bytes[..nl]).into_owned();
            let line = line.trim_end_matches('\r');
            if line.trim().is_empty() {
                continue;
            }
            let reply = answer(line, engine, gate, shutdown);
            let done = reply.shutdown;
            if stream
                .write_all(format!("{}\n", reply.line).as_bytes())
                .is_err()
            {
                return;
            }
            if done {
                shutdown.store(true, Ordering::SeqCst);
                gate.freed.notify_all();
                // Wake the accept loop out of accept().
                let _ = TcpStream::connect(addr);
                return;
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            // Drained: whatever this connection was executing has been
            // answered above; stop reading new work.
            return;
        }
        if buf.len() > max_line_bytes {
            let _ = stream
                .write_all(format!("{}\n", engine.line_too_long_reply(max_line_bytes)).as_bytes());
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // tick: loop re-checks the shutdown flag
            }
            Err(_) => return,
        }
    }
}

/// Routes one line: control commands bypass the gate, work commands pass
/// through it (and may be shed).
fn answer(line: &str, engine: &Engine, gate: &Gate, shutdown: &AtomicBool) -> Reply {
    let parsed = Request::parse(line);
    if shutdown.load(Ordering::SeqCst) {
        let id = parsed.as_ref().ok().and_then(|r| r.id.clone());
        return Reply {
            line: engine.shutting_down_reply(id.as_deref()),
            shutdown: false,
        };
    }
    let is_control = matches!(&parsed, Ok(r) if r.command.is_control());
    if is_control || parsed.is_err() {
        // Errors are cheap to answer and must stay observable under load.
        return engine.handle_request(parsed, gate.load());
    }
    // The degradation rung is decided by the congestion observed on
    // arrival, before this request takes its own slot — otherwise a
    // 1-slot server would count itself and degrade every request it runs.
    let arrival_load = gate.load();
    match gate.enter() {
        Some(_guard) => engine.handle_request(parsed, arrival_load),
        None => {
            let id = parsed.as_ref().ok().and_then(|r| r.id.clone());
            let reply = if shutdown.load(Ordering::SeqCst) {
                engine.shutting_down_reply(id.as_deref())
            } else {
                engine.shed_reply(id.as_deref())
            };
            Reply {
                line: reply,
                shutdown: false,
            }
        }
    }
}

/// A tiny blocking client for the CLI (`smo call`), the load generator
/// and the tests: connects, sends request lines, reads response lines.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request line and reads one response line.
    pub fn call(&mut self, request: &str) -> std::io::Result<String> {
        self.stream.write_all(format!("{request}\n").as_bytes())?;
        self.read_line()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=nl).collect();
                return Ok(String::from_utf8_lossy(&line[..nl]).into_owned());
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tiny_server(max_active: usize, max_queue: usize) -> ServerHandle {
        serve(ServerConfig {
            max_active,
            max_queue,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn ping_round_trip_and_graceful_shutdown() {
        let server = tiny_server(2, 2);
        let addr = server.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let pong = client.call("{\"id\":\"p\",\"cmd\":\"ping\"}").unwrap();
        assert!(pong.contains("\"ok\":true"), "{pong}");
        assert!(pong.contains("\"id\":\"p\""));
        let bye = client.call("{\"cmd\":\"shutdown\"}").unwrap();
        assert!(bye.contains("\"draining\":true"), "{bye}");
        server.wait();
        // The port is closed now.
        assert!(
            Client::connect(&addr).is_err() || {
                // A connect may still succeed briefly on some stacks; a call
                // must then fail.
                let mut c = Client::connect(&addr).unwrap();
                c.call("{\"cmd\":\"ping\"}").is_err()
            }
        );
    }

    #[test]
    fn empty_and_blank_lines_are_ignored() {
        let server = tiny_server(1, 1);
        let addr = server.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        client.stream.write_all(b"\n\r\n  \n").unwrap();
        let pong = client.call("{\"cmd\":\"ping\"}").unwrap();
        assert!(pong.contains("\"ok\":true"));
        server.shutdown();
        server.wait();
    }

    #[test]
    fn gate_sheds_when_queue_is_full() {
        let gate = Gate {
            state: Mutex::new((0, 0)),
            freed: Condvar::new(),
            max_active: 1,
            max_queue: 0,
            draining: Arc::new(AtomicBool::new(false)),
        };
        let first = gate.enter();
        assert!(first.is_some());
        assert!(gate.enter().is_none()); // active full, queue size 0 → shed
        drop(first);
        assert!(gate.enter().is_some());
        assert_eq!(gate.load().max_active, 1);
    }
}
