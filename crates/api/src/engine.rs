//! The request engine: one parsed line in, one response line out, with
//! the whole failure model applied on the way through.
//!
//! Per request, in order:
//!
//! 1. **Parse** the JSON line → `bad-request` on anything malformed.
//! 2. **Quarantine check** — inputs that previously panicked the engine
//!    are refused without re-running the bug.
//! 3. **Deadline** — `deadline_ms` becomes a [`SolveBudget`] fixed at
//!    receipt; an already-expired deadline returns `budget` without
//!    starting the solve.
//! 4. **Degradation** — the load factor picks a rung on the quality
//!    ladder (certified LP → graph fast path → uncertified); the rung is
//!    stamped into the response so clients know what they got.
//! 5. **Cache** — a `(fingerprint, signature)` hit returns the stored
//!    payload with `"cached": true`; the signature includes the
//!    degradation rung so a degraded answer can never impersonate a full
//!    one.
//! 6. **Isolation** — the handler runs under `catch_unwind`; a panic
//!    quarantines the fingerprint, purges its cache entries, and returns
//!    a structured `panic` error instead of killing the worker.
//!
//! The engine is synchronous and `&self`-threadsafe: the TCP server calls
//! [`Engine::handle_line`] from many connection threads at once. The only
//! lock is around the cache, held for lookups/insertions, never across a
//! solve.

use crate::cache::{fingerprint, ApiCache, CacheConfig};
use crate::error::{ApiError, ErrorKind};
use crate::json::{escape, Json};
use crate::ops;
use crate::request::{Command, Request};
use smo_circuit::netlist::ParseLimits;
use smo_core::{Backend, MlpOptions};
use smo_lp::SolveBudget;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Engine knobs. The defaults are what `smo serve` ships with.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Input limits applied to every inline netlist.
    pub limits: ParseLimits,
    /// Cache byte budgets.
    pub cache: CacheConfig,
}

/// A point-in-time load snapshot, provided by the connection layer when
/// it hands a request to the engine.
#[derive(Debug, Clone, Copy)]
pub struct Load {
    /// Requests currently executing.
    pub active: usize,
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// Concurrency limit.
    pub max_active: usize,
    /// Queue depth limit.
    pub max_queue: usize,
}

impl Load {
    /// An idle snapshot (used by the CLI one-shot path and tests).
    pub const IDLE: Load = Load {
        active: 0,
        queued: 0,
        max_active: 1,
        max_queue: 1,
    };

    /// Fraction of total capacity (active + queue) in use, in `[0, 1]`.
    pub fn factor(&self) -> f64 {
        let capacity = (self.max_active + self.max_queue).max(1);
        (self.active + self.queued) as f64 / capacity as f64
    }
}

/// The quality ladder. Under light load every request gets the full
/// certified treatment; as the queue fills, the engine sheds *work*
/// before it sheds *requests*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Degradation {
    /// Load factor < 0.5: exactly what the CLI would compute.
    Full,
    /// Load factor < 0.9: backend forced to `auto` (graph fast path
    /// where the model allows) and schedule canonicalization skipped —
    /// same optimal cycle time, fewer LP solves.
    FastPath,
    /// Load factor ≥ 0.9: certification dropped too; the answer is the
    /// solver's word alone. Still deterministic, no longer
    /// independently checked.
    Uncertified,
}

impl Degradation {
    /// Picks the rung for a load snapshot.
    pub fn from_load(load: &Load) -> Self {
        let f = load.factor();
        if f < 0.5 {
            Degradation::Full
        } else if f < 0.9 {
            Degradation::FastPath
        } else {
            Degradation::Uncertified
        }
    }

    /// The wire slug stamped into every response.
    pub fn slug(self) -> &'static str {
        match self {
            Degradation::Full => "full",
            Degradation::FastPath => "fast-path",
            Degradation::Uncertified => "uncertified",
        }
    }

    /// Applies the rung to a solve's options.
    fn shape(self, options: &mut MlpOptions) {
        match self {
            Degradation::Full => {}
            Degradation::FastPath => {
                options.backend = Backend::Auto;
                options.canonicalize = false;
            }
            Degradation::Uncertified => {
                options.backend = Backend::Auto;
                options.canonicalize = false;
                options.certify = false;
            }
        }
    }
}

/// Monotone counters, surfaced by the `stats` command.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    sheds: AtomicU64,
}

/// What the engine hands back to the connection layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The complete response line (no trailing newline).
    pub line: String,
    /// `true` when the request was a `shutdown` command: the server
    /// should begin draining after writing the line.
    pub shutdown: bool,
}

/// The shared request engine.
pub struct Engine {
    config: EngineConfig,
    cache: Mutex<ApiCache>,
    counters: Counters,
}

impl Engine {
    /// Builds an engine with `config`.
    pub fn new(config: EngineConfig) -> Self {
        let cache = Mutex::new(ApiCache::new(&config.cache));
        Engine {
            config,
            cache,
            counters: Counters::default(),
        }
    }

    /// Handles one request line end to end. Never panics: handler panics
    /// are caught, quarantined and reported as structured errors.
    pub fn handle_line(&self, line: &str, load: Load) -> Reply {
        self.handle_request(Request::parse(line), load)
    }

    /// Like [`Engine::handle_line`] for a line the caller already parsed
    /// (the server parses once to route control commands around the
    /// admission gate, then hands the result here).
    pub fn handle_request(&self, request: Result<Request, ApiError>, load: Load) -> Reply {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let request = match request {
            Ok(r) => r,
            Err(e) => return self.error_reply(None, Degradation::Full, &e),
        };
        let id = request.id.clone();
        if request.command.is_control() {
            return self.handle_control(&request, load);
        }
        let degradation = Degradation::from_load(&load);

        // The netlist fingerprint keys quarantine and all three caches.
        let netlist = request.command.netlist().unwrap_or("");
        let fp = fingerprint(netlist.as_bytes());
        if self.lock_cache().is_quarantined(fp) {
            let e = ApiError::new(
                ErrorKind::Quarantined,
                "this input previously crashed the engine and is quarantined",
            );
            return self.error_reply(id.as_deref(), degradation, &e);
        }

        // Deadlines are absolute from this point; `deadline_ms: 0` means
        // "already expired" and short-circuits before any work.
        let time_limit = request.deadline_ms.map(std::time::Duration::from_millis);
        if time_limit == Some(std::time::Duration::ZERO) {
            let e = ApiError::new(
                ErrorKind::Budget,
                "deadline expired before the request started",
            );
            return self.error_reply(id.as_deref(), degradation, &e);
        }

        // Result cache: the signature is the command with its parameters
        // plus the degradation rung. Deadlines are excluded — a cached
        // answer costs nothing, so any deadline is met.
        let signature = format!(
            "{}\u{1f}{}",
            degradation.slug(),
            command_signature(&request)
        );
        if let Some(hit) = self.lock_cache().result(fp, &signature) {
            return self.ok_reply(id.as_deref(), degradation, &hit, true);
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.execute(&request.command, fp, degradation, time_limit)
        }));
        match outcome {
            Ok(Ok(pretty)) => {
                // Compact the op's pretty JSON into a single wire line.
                let compact: Arc<str> = match Json::parse(&pretty) {
                    Ok(v) => Arc::from(v.render_compact()),
                    Err(e) => {
                        // An op emitted invalid JSON: an internal bug, but
                        // a structured one.
                        let e = ApiError::new(
                            ErrorKind::Internal,
                            format!("result rendering failed: {e}"),
                        );
                        return self.error_reply(id.as_deref(), degradation, &e);
                    }
                };
                self.lock_cache()
                    .store_result(fp, signature, Arc::clone(&compact));
                self.ok_reply(id.as_deref(), degradation, &compact, false)
            }
            Ok(Err(e)) => self.error_reply(id.as_deref(), degradation, &e),
            Err(panic) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                self.lock_cache().quarantine(fp);
                let what = panic_message(&panic);
                let e = ApiError::new(
                    ErrorKind::Panic,
                    format!("handler panicked: {what}; input quarantined"),
                );
                self.error_reply(id.as_deref(), degradation, &e)
            }
        }
    }

    /// The response for a request shed at the admission gate. The server
    /// calls this without entering the engine.
    pub fn shed_reply(&self, id: Option<&str>) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.sheds.fetch_add(1, Ordering::Relaxed);
        let e = ApiError::new(
            ErrorKind::Overload,
            "server saturated (active and queued slots full); retry with backoff",
        );
        self.error_reply(id, Degradation::Uncertified, &e).line
    }

    /// The response for a request refused because the server is draining.
    pub fn shutting_down_reply(&self, id: Option<&str>) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let e = ApiError::new(ErrorKind::ShuttingDown, "server is draining for shutdown");
        self.error_reply(id, Degradation::Uncertified, &e).line
    }

    /// The response for an over-long request line (checked by the server
    /// before buffering the whole line).
    pub fn line_too_long_reply(&self, limit: usize) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let e = ApiError::new(
            ErrorKind::Limit,
            format!("request line exceeds {limit} bytes"),
        );
        self.error_reply(None, Degradation::Full, &e).line
    }

    fn handle_control(&self, request: &Request, load: Load) -> Reply {
        let id = request.id.as_deref();
        match &request.command {
            Command::Ping => self.ok_reply(id, Degradation::Full, "{\"ok\":true}", false),
            Command::Stats => {
                let (circuits, results, bases, quarantined) = {
                    let cache = self.lock_cache();
                    cache.sizes()
                };
                let stats = self.lock_cache().stats();
                let payload = format!(
                    "{{\"requests\":{},\"ok\":{},\"errors\":{},\"panics\":{},\"sheds\":{},\
                     \"active\":{},\"queued\":{},\"max_active\":{},\"max_queue\":{},\
                     \"cache\":{{\"circuits\":{circuits},\"results\":{results},\"bases\":{bases},\
                     \"quarantined\":{quarantined},\"result_hits\":{},\"circuit_hits\":{},\
                     \"basis_hits\":{}}}}}",
                    self.counters.requests.load(Ordering::Relaxed),
                    self.counters.ok.load(Ordering::Relaxed),
                    self.counters.errors.load(Ordering::Relaxed),
                    self.counters.panics.load(Ordering::Relaxed),
                    self.counters.sheds.load(Ordering::Relaxed),
                    load.active,
                    load.queued,
                    load.max_active,
                    load.max_queue,
                    stats.result_hits,
                    stats.circuit_hits,
                    stats.basis_hits,
                );
                self.ok_reply(id, Degradation::Full, &payload, false)
            }
            Command::Shutdown => {
                let mut reply = self.ok_reply(id, Degradation::Full, "{\"draining\":true}", false);
                reply.shutdown = true;
                reply
            }
            Command::DebugPanic => {
                // Deliberately routed through the same catch_unwind the
                // work commands use, so the isolation path is testable
                // without a real engine bug.
                let outcome = catch_unwind(|| -> String {
                    panic!("debug-panic requested");
                });
                debug_assert!(outcome.is_err());
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                let e = ApiError::new(ErrorKind::Panic, "handler panicked: debug-panic requested");
                self.error_reply(id, Degradation::Full, &e)
            }
            _ => unreachable!("handle_control called on a work command"),
        }
    }

    /// Runs a work command. Called inside `catch_unwind`.
    fn execute(
        &self,
        command: &Command,
        fp: u64,
        degradation: Degradation,
        time_limit: Option<std::time::Duration>,
    ) -> Result<String, ApiError> {
        let netlist = command.netlist().unwrap_or("");
        // Test hook for the isolation path: a netlist beginning with
        // `#!panic` (a comment line, so it can never be a real circuit)
        // panics inside the handler exactly like an engine bug would,
        // letting the quarantine machinery be exercised end-to-end.
        if netlist.starts_with("#!panic") {
            panic!("debug netlist panic hook");
        }
        // Bind the lookup first: a `match` on `self.lock_cache().circuit(fp)`
        // would keep the guard alive across the arms and self-deadlock on
        // the store below.
        let cached = self.lock_cache().circuit(fp);
        let circuit = match cached {
            Some(c) => c,
            None => {
                let parsed = Arc::new(ops::parse_netlist(netlist, &self.config.limits)?);
                self.lock_cache().store_circuit(fp, Arc::clone(&parsed));
                parsed
            }
        };
        let budget = match time_limit {
            Some(d) => SolveBudget::with_time_limit(d),
            None => SolveBudget::UNLIMITED,
        };
        match command {
            Command::Solve {
                backend,
                certify,
                pricing,
                ..
            } => {
                let mut options = MlpOptions {
                    backend: *backend,
                    certify: *certify,
                    time_limit,
                    pricing: *pricing,
                    ..Default::default()
                };
                degradation.shape(&mut options);
                let warm = self.lock_cache().basis(fp);
                let (json, basis) = ops::run_solve(&circuit, &options, warm.as_ref())?;
                if let Some(b) = basis {
                    self.lock_cache().store_basis(fp, b);
                }
                Ok(json)
            }
            Command::Verify {
                cycle_time,
                phases,
                backend,
                ..
            } => ops::run_verify(&circuit, *cycle_time, phases, *backend, &budget),
            Command::Check {
                cycle_time,
                backend,
                ..
            } => {
                let options = smo_analyze::CheckOptions {
                    cycle_time: *cycle_time,
                    backend: *backend,
                    ..Default::default()
                };
                ops::run_check(&circuit, &options)
            }
            Command::Diagnose { cycle_time, .. } => ops::run_diagnose(&circuit, *cycle_time),
            Command::Sweep {
                param,
                runs,
                edge,
                max_delay,
                spread,
                seed,
                certify,
                pricing,
                ..
            } => {
                let certify = *certify && degradation < Degradation::Uncertified;
                ops::run_sweep(
                    &circuit, param, *runs, *edge, *max_delay, *spread, *seed, certify, *pricing,
                )
            }
            _ => Err(ApiError::new(
                ErrorKind::Internal,
                "control command reached the work dispatcher",
            )),
        }
    }

    fn ok_reply(
        &self,
        id: Option<&str>,
        degradation: Degradation,
        payload: &str,
        cached: bool,
    ) -> Reply {
        self.counters.ok.fetch_add(1, Ordering::Relaxed);
        Reply {
            line: envelope(id, "ok", degradation, cached, "result", payload),
            shutdown: false,
        }
    }

    fn error_reply(&self, id: Option<&str>, degradation: Degradation, error: &ApiError) -> Reply {
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        let body = format!(
            "{{\"kind\":{},\"message\":{},\"retryable\":{}}}",
            escape(error.kind.slug()),
            escape(&error.message),
            error.kind.retryable()
        );
        Reply {
            line: envelope(id, "error", degradation, false, "error", &body),
            shutdown: false,
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, ApiCache> {
        // A poisoned cache mutex means a panic escaped `catch_unwind`'s
        // coverage *while holding the lock* — the guards here are held
        // only around infallible map operations, so recover the data
        // rather than wedging every future request.
        match self.cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The response envelope. Field order is part of the wire contract:
/// `id`, `status`, `degradation`, `cached`, then `result` or `error`.
fn envelope(
    id: Option<&str>,
    status: &str,
    degradation: Degradation,
    cached: bool,
    key: &str,
    payload: &str,
) -> String {
    let id = match id {
        Some(s) => escape(s),
        None => "null".into(),
    };
    format!(
        "{{\"id\":{id},\"status\":\"{status}\",\"degradation\":\"{}\",\"cached\":{cached},\"{key}\":{payload}}}",
        degradation.slug()
    )
}

/// A canonical string of everything that affects a command's answer
/// (used, with the degradation rung, as the result-cache key).
fn command_signature(request: &Request) -> String {
    match &request.command {
        Command::Solve {
            backend,
            certify,
            pricing,
            ..
        } => format!("solve:{backend:?}:{certify}:{pricing}"),
        Command::Verify {
            cycle_time,
            phases,
            backend,
            ..
        } => {
            let mut s = format!("verify:{backend:?}:{cycle_time:.12e}");
            for (a, b) in phases {
                s.push_str(&format!(":{a:.12e},{b:.12e}"));
            }
            s
        }
        Command::Check {
            cycle_time,
            backend,
            ..
        } => format!("check:{backend:?}:{cycle_time:?}"),
        Command::Diagnose { cycle_time, .. } => format!("diagnose:{cycle_time:?}"),
        Command::Sweep {
            param,
            runs,
            edge,
            max_delay,
            spread,
            seed,
            certify,
            pricing,
            ..
        } => format!(
            "sweep:{param}:{runs}:{edge}:{max_delay:?}:{spread:.12e}:{seed}:{certify}:{pricing}"
        ),
        Command::Ping | Command::Stats | Command::Shutdown | Command::DebugPanic => {
            request.command.name().to_string()
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use smo_circuit::netlist;
    use smo_gen::paper;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    fn solve_line(netlist: &str) -> String {
        format!(
            "{{\"id\":\"t\",\"cmd\":\"solve\",\"netlist\":{}}}",
            escape(netlist)
        )
    }

    #[test]
    fn solve_round_trips_and_caches() {
        let e = engine();
        let src = netlist::write(&paper::example2());
        let line = solve_line(&src);
        let first = e.handle_line(&line, Load::IDLE);
        assert!(first.line.contains("\"status\":\"ok\""), "{}", first.line);
        assert!(first.line.contains("\"cached\":false"));
        assert!(first.line.contains("\"cycle_time\""));
        let second = e.handle_line(&line, Load::IDLE);
        assert!(second.line.contains("\"cached\":true"));
        // Identical payloads modulo the cached flag.
        assert_eq!(
            first.line.replace("\"cached\":false", "X"),
            second.line.replace("\"cached\":true", "X"),
        );
    }

    #[test]
    fn degradation_rung_tracks_load() {
        let idle = Load {
            active: 0,
            queued: 0,
            max_active: 4,
            max_queue: 4,
        };
        let busy = Load {
            active: 4,
            queued: 0,
            max_active: 4,
            max_queue: 4,
        };
        let saturated = Load {
            active: 4,
            queued: 4,
            max_active: 4,
            max_queue: 4,
        };
        assert_eq!(Degradation::from_load(&idle), Degradation::Full);
        assert_eq!(Degradation::from_load(&busy), Degradation::FastPath);
        assert_eq!(Degradation::from_load(&saturated), Degradation::Uncertified);

        // Pin the simplex backend: under load the ladder overrides it to
        // auto, which routes this pure-difference model to the graph.
        let e = engine();
        let src = netlist::write(&paper::example2());
        let line = format!(
            "{{\"cmd\":\"solve\",\"backend\":\"lp\",\"netlist\":{}}}",
            escape(&src)
        );
        let reply = e.handle_line(&line, saturated);
        assert!(reply.line.contains("\"degradation\":\"uncertified\""));
        assert!(
            reply.line.contains("\"backend\":\"graph\""),
            "{}",
            reply.line
        );
        // A full-quality request afterwards is NOT served the degraded
        // cache entry: it honors the requested backend.
        let reply = e.handle_line(&line, idle);
        assert!(reply.line.contains("\"degradation\":\"full\""));
        assert!(reply.line.contains("\"cached\":false"));
        assert!(reply.line.contains("\"backend\":\"lp\""), "{}", reply.line);
    }

    #[test]
    fn expired_deadline_is_a_budget_error() {
        let e = engine();
        let src = netlist::write(&paper::example2());
        let line = format!(
            "{{\"cmd\":\"solve\",\"deadline_ms\":0,\"netlist\":{}}}",
            escape(&src)
        );
        let reply = e.handle_line(&line, Load::IDLE);
        assert!(reply.line.contains("\"kind\":\"budget\""), "{}", reply.line);
    }

    #[test]
    fn debug_panic_is_isolated_and_reported() {
        let e = engine();
        let reply = e.handle_line("{\"cmd\":\"debug-panic\"}", Load::IDLE);
        assert!(reply.line.contains("\"kind\":\"panic\""), "{}", reply.line);
        assert!(!reply.shutdown);
        // The engine still works afterwards.
        let reply = e.handle_line("{\"cmd\":\"ping\"}", Load::IDLE);
        assert!(reply.line.contains("\"ok\":true"));
    }

    #[test]
    fn malformed_netlists_get_structured_errors() {
        let e = engine();
        for (netlist, kind) in [
            ("clock 2 10\nlatch L1 what", "\"kind\":\"parse\""),
            ("", "\"kind\":\"parse\""),
        ] {
            let reply = e.handle_line(&solve_line(netlist), Load::IDLE);
            assert!(reply.line.contains(kind), "{netlist:?}: {}", reply.line);
        }
    }

    #[test]
    fn shed_and_drain_replies_echo_the_id() {
        let e = engine();
        let shed = e.shed_reply(Some("r9"));
        assert!(shed.contains("\"id\":\"r9\""));
        assert!(shed.contains("\"kind\":\"overload\""));
        assert!(shed.contains("\"retryable\":true"));
        let drain = e.shutting_down_reply(None);
        assert!(drain.contains("\"kind\":\"shutting-down\""));
        assert!(drain.contains("\"id\":null"));
        let long = e.line_too_long_reply(64);
        assert!(long.contains("\"kind\":\"limit\""));
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let e = engine();
        let reply = e.handle_line("{\"cmd\":\"shutdown\"}", Load::IDLE);
        assert!(reply.shutdown);
        assert!(reply.line.contains("\"draining\":true"));
    }
}
