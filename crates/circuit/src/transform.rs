//! Circuit simplification transforms.
//!
//! The paper notes (§IV) that "by lumping latches corresponding to vector
//! signals with similar timing (e.g., 32-bit data buses), the number l can
//! be reasonably small even for large circuits". This module provides the
//! timing-preserving reductions a front end would apply before analysis:
//!
//! * [`merge_parallel_edges`] — collapse multiple combinational paths
//!   between the same pair of synchronizers into one edge carrying the
//!   longest `Δ` (and the shortest `δ` for hold analysis); the SMO `max`
//!   semantics make this exactly timing-equivalent while shrinking the LP;
//! * [`lump_equivalent_latches`] — merge synchronizers that are exact
//!   timing replicas of each other (same kind, phase, setup, dq, hold and
//!   identical fan-in/fan-out delay multisets), the "32-bit bus" lumping.

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::ids::LatchId;
use std::collections::BTreeMap;

/// Returns a circuit with all parallel edges merged: for each ordered pair
/// of synchronizers, one edge with the maximum `max_delay` and the minimum
/// `min_delay` of the originals.
///
/// Timing-equivalent: arrival times (eq. 14) are maxima over fan-in, so
/// only the longest delay per pair matters for late mode; hold analysis is
/// conservative with the shortest.
pub fn merge_parallel_edges(circuit: &Circuit) -> Circuit {
    let mut merged: BTreeMap<(LatchId, LatchId), (f64, f64)> = BTreeMap::new();
    for e in circuit.edges() {
        merged
            .entry((e.from, e.to))
            .and_modify(|(max_d, min_d)| {
                *max_d = max_d.max(e.max_delay);
                *min_d = min_d.min(e.min_delay);
            })
            .or_insert((e.max_delay, e.min_delay));
    }
    let mut b = CircuitBuilder::new(circuit.num_phases());
    for (_, s) in circuit.syncs() {
        b.add_sync(s.clone());
    }
    for ((from, to), (max_d, min_d)) in merged {
        b.connect_min_max(from, to, min_d, max_d);
    }
    b.build().expect("merging preserves validity")
}

/// Merges timing-equivalent synchronizers found by fan-in colour
/// refinement (the coarsest timing bisimulation).
///
/// Two synchronizers are merged when they have identical parameters
/// (kind, phase, setup, dq, hold) **and** identical multisets of
/// `(max delay, min delay, source class)` over their fan-in, recursively.
/// Bits of a uniformly wired bus land in the same class even though each
/// bit has a *different* neighbour (its own slice), because the neighbours
/// are themselves equivalent.
///
/// Soundness: departure times depend only on fan-in (eq. 17), so members
/// of a class have equal departures in every least fixpoint; collapsing
/// them (and merging the resulting parallel edges worst-case) leaves the
/// optimal cycle time unchanged. This is property-tested in `tests/` and
/// demonstrated at scale by `examples/bus_lumping.rs`.
///
/// Returns the reduced circuit and, for each original synchronizer, the id
/// of its representative in the reduced circuit.
pub fn lump_equivalent_latches(circuit: &Circuit) -> (Circuit, Vec<LatchId>) {
    let n = circuit.num_syncs();
    // initial colours: local parameters only
    let mut colors: Vec<u64> = circuit
        .latch_ids()
        .map(|id| {
            let s = circuit.sync(id);
            hash_str(&format!(
                "{:?}|{}|{}|{}|{}",
                s.kind,
                s.phase.index(),
                s.setup.to_bits(),
                s.dq.to_bits(),
                s.hold.to_bits()
            ))
        })
        .collect();
    // refine on fan-in multisets until stable (at most n rounds)
    for _ in 0..n {
        let mut next = Vec::with_capacity(n);
        for id in circuit.latch_ids() {
            let mut fanin: Vec<(u64, u64, u64)> = circuit
                .fanin(id)
                .iter()
                .map(|&e| {
                    let e = circuit.edge(e);
                    (
                        e.max_delay.to_bits(),
                        e.min_delay.to_bits(),
                        colors[e.from.index()],
                    )
                })
                .collect();
            fanin.sort_unstable();
            next.push(hash_str(&format!("{}|{:?}", colors[id.index()], fanin)));
        }
        if next == colors {
            break;
        }
        colors = next;
    }

    // group by colour; the smallest id of each class is its representative
    let mut repr_of = vec![LatchId::new(0); n];
    let mut first_of: BTreeMap<u64, LatchId> = BTreeMap::new();
    for id in circuit.latch_ids() {
        let rep = *first_of.entry(colors[id.index()]).or_insert(id);
        repr_of[id.index()] = rep;
    }
    let mut keep: Vec<LatchId> = first_of.values().copied().collect();
    keep.sort();
    let new_index: BTreeMap<LatchId, usize> =
        keep.iter().enumerate().map(|(i, &id)| (id, i)).collect();

    let mut b = CircuitBuilder::new(circuit.num_phases());
    for &old in &keep {
        b.add_sync(circuit.sync(old).clone());
    }
    // edges between representatives, merged worst-case
    let mut merged: BTreeMap<(usize, usize), (f64, f64)> = BTreeMap::new();
    for e in circuit.edges() {
        let f = new_index[&repr_of[e.from.index()]];
        let t = new_index[&repr_of[e.to.index()]];
        merged
            .entry((f, t))
            .and_modify(|(max_d, min_d)| {
                *max_d = max_d.max(e.max_delay);
                *min_d = min_d.min(e.min_delay);
            })
            .or_insert((e.max_delay, e.min_delay));
    }
    for ((f, t), (max_d, min_d)) in merged {
        b.connect_min_max(LatchId::new(f), LatchId::new(t), min_d, max_d);
    }
    let reduced = b.build().expect("lumping preserves validity");
    let map = repr_of
        .into_iter()
        .map(|rep| LatchId::new(new_index[&rep]))
        .collect();
    (reduced, map)
}

fn hash_str(s: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PhaseId;

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    #[test]
    fn parallel_edges_collapse_to_worst_case() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 1.0, 1.0);
        let c2 = b.add_latch("B", p(2), 1.0, 1.0);
        b.connect_min_max(a, c2, 3.0, 10.0);
        b.connect_min_max(a, c2, 1.0, 25.0);
        b.connect_min_max(a, c2, 6.0, 7.0);
        let c = b.build().unwrap();
        let m = merge_parallel_edges(&c);
        assert_eq!(m.num_edges(), 1);
        assert_eq!(m.edges()[0].max_delay, 25.0);
        assert_eq!(m.edges()[0].min_delay, 1.0);
        assert_eq!(m.num_syncs(), 2);
    }

    #[test]
    fn lumping_merges_bit_slices() {
        // a 4-bit "bus": four identical latches fed identically from a
        // source and feeding a sink identically.
        let mut b = CircuitBuilder::new(2);
        let src = b.add_latch("src", p(1), 1.0, 1.0);
        let sink = b.add_latch("sink", p(1), 1.0, 1.0);
        let bits: Vec<LatchId> = (0..4)
            .map(|i| b.add_latch(format!("bus{i}"), p(2), 2.0, 2.0))
            .collect();
        for &bit in &bits {
            b.connect(src, bit, 5.0);
            b.connect(bit, sink, 6.0);
        }
        let c = b.build().unwrap();
        let (reduced, map) = lump_equivalent_latches(&c);
        assert_eq!(reduced.num_syncs(), 3, "{reduced}");
        assert_eq!(reduced.num_edges(), 2);
        // all bits map to the same representative
        let rep = map[bits[0].index()];
        assert!(bits.iter().all(|&bit| map[bit.index()] == rep));
        // src and sink map to themselves (distinct)
        assert_ne!(map[src.index()], map[sink.index()]);
    }

    #[test]
    fn lumping_keeps_distinct_timing_apart() {
        let mut b = CircuitBuilder::new(2);
        let src = b.add_latch("src", p(1), 1.0, 1.0);
        let fast = b.add_latch("fast", p(2), 2.0, 2.0);
        let slow = b.add_latch("slow", p(2), 2.0, 2.0);
        b.connect(src, fast, 5.0);
        b.connect(src, slow, 9.0); // different delay → not equivalent
        let c = b.build().unwrap();
        let (reduced, _) = lump_equivalent_latches(&c);
        assert_eq!(reduced.num_syncs(), 3);
    }

    #[test]
    fn lumping_identity_on_irreducible_circuits() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 1.0, 1.0);
        let c2 = b.add_latch("B", p(2), 2.0, 2.0);
        b.connect(a, c2, 5.0);
        b.connect(c2, a, 7.0);
        let c = b.build().unwrap();
        let (reduced, map) = lump_equivalent_latches(&c);
        assert_eq!(reduced.num_syncs(), 2);
        assert_eq!(reduced.num_edges(), 2);
        assert_eq!(map.len(), 2);
    }
}
