//! k-phase clock specification, concrete schedules, and the phase-shift
//! operator.

use crate::error::CircuitError;
use crate::ids::PhaseId;
use crate::matrix::BoolMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Specification of an arbitrary k-phase clock (§III-A).
///
/// A clock is a collection of `k` periodic phases with a common period `T_c`.
/// The *specification* fixes only `k` (and thereby the phase-ordering matrix
/// `C`, eq. 1); the start times `s_i`, widths `T_i` and period are decision
/// variables of the design problem and live in a [`ClockSchedule`] once
/// chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClockSpec {
    phases: usize,
}

impl ClockSpec {
    /// A clock with `phases ≥ 1` phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is zero.
    pub fn new(phases: usize) -> Self {
        assert!(phases >= 1, "a clock needs at least one phase");
        ClockSpec { phases }
    }

    /// Number of phases `k`.
    pub fn num_phases(&self) -> usize {
        self.phases
    }

    /// Iterates over the phase ids `φ1 … φk`.
    pub fn phases(&self) -> impl Iterator<Item = PhaseId> {
        (0..self.phases).map(PhaseId::new)
    }

    /// The phase-ordering flag `C_ij` (eq. 1): `false` for `i < j`, `true`
    /// for `i ≥ j` — i.e. whether going from `φ_i` to `φ_j` crosses a clock
    /// cycle boundary.
    pub fn c_flag(i: PhaseId, j: PhaseId) -> bool {
        i.index() >= j.index()
    }

    /// The full `C` matrix (eq. 1).
    pub fn c_matrix(&self) -> BoolMatrix {
        let mut m = BoolMatrix::new(self.phases);
        for i in 0..self.phases {
            for j in 0..self.phases {
                m.set(i, j, Self::c_flag(PhaseId::new(i), PhaseId::new(j)));
            }
        }
        m
    }
}

/// A concrete clock schedule: period `T_c`, per-phase start times `s_i` and
/// active-interval widths `T_i` (Fig. 2).
///
/// All phases are active high; phase `i` is enabled on
/// `[s_i, s_i + T_i) mod T_c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockSchedule {
    cycle: f64,
    starts: Vec<f64>,
    widths: Vec<f64>,
}

impl ClockSchedule {
    /// Creates a schedule from raw values. `starts` and `widths` must have
    /// the same length (the number of phases).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSchedule`] when the clock constraints
    /// C1/C2/C4 of the paper are violated: lengths mismatch, non-finite or
    /// negative values, `s_i > T_c` or `T_i > T_c` (periodicity, eqs. 3–4),
    /// or phases out of order (`s_i > s_{i+1}`, eq. 5). Phase *nonoverlap*
    /// (C3, eq. 6) depends on the circuit's `K` matrix and is checked by the
    /// timing engine, not here.
    pub fn new(cycle: f64, starts: Vec<f64>, widths: Vec<f64>) -> Result<Self, CircuitError> {
        let s = ClockSchedule {
            cycle,
            starts,
            widths,
        };
        s.validate()?;
        Ok(s)
    }

    /// An evenly spaced schedule: `s_i = (i−1)·T_c/k`, `T_i = T_c/k − gap`.
    ///
    /// With `gap = 0` the phases tile the cycle edge-to-edge; a positive
    /// `gap` leaves dead time between consecutive phases (classic
    /// non-overlapping two-phase clocking, Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSchedule`] if `gap` is negative, not
    /// finite, or at least `T_c/k`.
    pub fn symmetric(k: usize, cycle: f64, gap: f64) -> Result<Self, CircuitError> {
        if gap.is_nan() || gap < 0.0 || gap >= cycle / k as f64 {
            return Err(CircuitError::InvalidSchedule {
                reason: format!(
                    "symmetric gap {gap} must lie in [0, Tc/k = {})",
                    cycle / k as f64
                ),
            });
        }
        let starts = (0..k).map(|i| i as f64 * cycle / k as f64).collect();
        let widths = vec![cycle / k as f64 - gap; k];
        ClockSchedule::new(cycle, starts, widths)
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.starts.len()
    }

    /// The period `T_c`.
    pub fn cycle(&self) -> f64 {
        self.cycle
    }

    /// Start time `s_i` of a phase, relative to the beginning of the common
    /// clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn start(&self, phase: PhaseId) -> f64 {
        self.starts[phase.index()]
    }

    /// Active-interval width `T_i` of a phase.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn width(&self, phase: PhaseId) -> f64 {
        self.widths[phase.index()]
    }

    /// End of the active interval, `s_i + T_i` (may exceed `T_c`, meaning
    /// the phase wraps into the next cycle).
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn end(&self, phase: PhaseId) -> f64 {
        self.start(phase) + self.width(phase)
    }

    /// The phase-shift operator `S_ij` (eq. 12):
    /// `S_ij = s_i − s_j − C_ij·T_c`.
    ///
    /// Adding `S_{p_j p_i}` to a time referenced to the start of `φ_{p_j}`
    /// re-references it to the start of `φ_{p_i}` of the *next* occurrence
    /// (crossing the cycle boundary exactly when `C` says so). `from` is the
    /// source phase (first subscript), `to` the destination.
    ///
    /// # Panics
    ///
    /// Panics if either phase is out of range.
    pub fn shift(&self, from: PhaseId, to: PhaseId) -> f64 {
        let c = if ClockSpec::c_flag(from, to) {
            self.cycle
        } else {
            0.0
        };
        self.start(from) - self.start(to) - c
    }

    /// Do the active intervals of two distinct phases overlap in time
    /// (considering periodic wrap-around)?
    ///
    /// # Panics
    ///
    /// Panics if either phase is out of range.
    pub fn overlaps(&self, a: PhaseId, b: PhaseId) -> bool {
        if a == b {
            return self.width(a) > 0.0;
        }
        // Compare the two active intervals on a double cycle to handle wrap.
        let ivs = |p: PhaseId| {
            let s = self.start(p).rem_euclid(self.cycle.max(f64::MIN_POSITIVE));
            let w = self.width(p);
            [(s, s + w), (s + self.cycle, s + w + self.cycle)]
        };
        for (s1, e1) in ivs(a) {
            for (s2, e2) in ivs(b) {
                if s1 < e2 && s2 < e1 {
                    return true;
                }
            }
        }
        false
    }

    /// Checks the schedule-only clock constraints (see [`ClockSchedule::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSchedule`] with a human-readable reason.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let bad = |reason: String| Err(CircuitError::InvalidSchedule { reason });
        if self.starts.len() != self.widths.len() {
            return bad(format!(
                "{} start times but {} widths",
                self.starts.len(),
                self.widths.len()
            ));
        }
        if self.starts.is_empty() {
            return bad("schedule has no phases".into());
        }
        if !self.cycle.is_finite() || self.cycle < 0.0 {
            return bad(format!(
                "cycle time {} is not finite and non-negative",
                self.cycle
            ));
        }
        for (i, (&s, &w)) in self.starts.iter().zip(&self.widths).enumerate() {
            let p = PhaseId::new(i);
            if !s.is_finite() || s < 0.0 {
                return bad(format!("start of {p} is {s}"));
            }
            if !w.is_finite() || w < 0.0 {
                return bad(format!("width of {p} is {w}"));
            }
            if s > self.cycle + 1e-9 {
                return bad(format!(
                    "start of {p} ({s}) exceeds the cycle time {}",
                    self.cycle
                ));
            }
            if w > self.cycle + 1e-9 {
                return bad(format!(
                    "width of {p} ({w}) exceeds the cycle time {}",
                    self.cycle
                ));
            }
        }
        for i in 1..self.starts.len() {
            if self.starts[i] + 1e-9 < self.starts[i - 1] {
                return bad(format!(
                    "phases out of order: s{} = {} < s{} = {}",
                    i + 1,
                    self.starts[i],
                    i,
                    self.starts[i - 1]
                ));
            }
        }
        Ok(())
    }

    /// Returns a copy of this schedule with every time scaled by `factor`
    /// (useful for unit conversions and property tests).
    pub fn scaled(&self, factor: f64) -> ClockSchedule {
        ClockSchedule {
            cycle: self.cycle * factor,
            starts: self.starts.iter().map(|s| s * factor).collect(),
            widths: self.widths.iter().map(|w| w * factor).collect(),
        }
    }
}

impl fmt::Display for ClockSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tc = {:.4}", self.cycle)?;
        for i in 0..self.num_phases() {
            let p = PhaseId::new(i);
            writeln!(
                f,
                "{p}: start {:.4}, width {:.4}, end {:.4}",
                self.start(p),
                self.width(p),
                self.end(p)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    #[test]
    fn c_matrix_is_lower_triangular_inclusive() {
        let spec = ClockSpec::new(3);
        let c = spec.c_matrix();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.get(i, j), i >= j);
            }
        }
    }

    #[test]
    fn shift_matches_paper_appendix() {
        // Four-phase clock; check all nine operators listed in the appendix.
        let sched = ClockSchedule::new(
            100.0,
            vec![0.0, 20.0, 45.0, 70.0],
            vec![15.0, 20.0, 20.0, 25.0],
        )
        .unwrap();
        let s = |i: usize| sched.start(p(i));
        let tc = sched.cycle();
        assert_eq!(sched.shift(p(1), p(3)), s(1) - s(3)); // S13
        assert_eq!(sched.shift(p(1), p(4)), s(1) - s(4)); // S14
        assert_eq!(sched.shift(p(2), p(1)), s(2) - s(1) - tc); // S21
        assert_eq!(sched.shift(p(2), p(3)), s(2) - s(3)); // S23
        assert_eq!(sched.shift(p(2), p(4)), s(2) - s(4)); // S24
        assert_eq!(sched.shift(p(3), p(1)), s(3) - s(1) - tc); // S31
        assert_eq!(sched.shift(p(3), p(2)), s(3) - s(2) - tc); // S32
        assert_eq!(sched.shift(p(4), p(2)), s(4) - s(2) - tc); // S42
        assert_eq!(sched.shift(p(4), p(3)), s(4) - s(3) - tc); // S43
    }

    #[test]
    fn symmetric_two_phase_tiles_the_cycle() {
        let sched = ClockSchedule::symmetric(2, 100.0, 0.0).unwrap();
        assert_eq!(sched.start(p(1)), 0.0);
        assert_eq!(sched.start(p(2)), 50.0);
        assert_eq!(sched.width(p(1)), 50.0);
        assert_eq!(sched.end(p(2)), 100.0);
        assert!(!sched.overlaps(p(1), p(2)));
    }

    #[test]
    fn symmetric_rejects_bad_gap() {
        assert!(ClockSchedule::symmetric(2, 100.0, -1.0).is_err());
        assert!(ClockSchedule::symmetric(2, 100.0, 50.0).is_err());
        assert!(ClockSchedule::symmetric(2, 100.0, f64::NAN).is_err());
    }

    #[test]
    fn validate_rejects_out_of_order_phases() {
        let r = ClockSchedule::new(10.0, vec![5.0, 1.0], vec![1.0, 1.0]);
        assert!(matches!(r, Err(CircuitError::InvalidSchedule { .. })));
    }

    #[test]
    fn validate_rejects_width_exceeding_cycle() {
        let r = ClockSchedule::new(10.0, vec![0.0], vec![11.0]);
        assert!(r.is_err());
    }

    #[test]
    fn overlap_detects_containment_and_wrap() {
        // φ3 completely inside φ1 (the GaAs example's precharge overlap).
        let sched = ClockSchedule::new(10.0, vec![0.0, 3.0, 5.0], vec![9.0, 1.0, 2.0]).unwrap();
        assert!(sched.overlaps(p(1), p(3)));
        assert!(!sched.overlaps(p(2), p(3)));
        // wrap-around: a phase ending past Tc overlaps the next cycle's φ1.
        let wrap = ClockSchedule::new(10.0, vec![0.0, 8.0], vec![3.0, 4.0]).unwrap();
        assert!(wrap.overlaps(p(2), p(1)));
    }

    #[test]
    fn zero_width_phase_never_overlaps() {
        let sched = ClockSchedule::new(10.0, vec![0.0, 0.0], vec![0.0, 5.0]).unwrap();
        assert!(!sched.overlaps(p(1), p(2)));
        assert!(!sched.overlaps(p(1), p(1)));
    }

    #[test]
    fn scaled_preserves_shape() {
        let sched = ClockSchedule::symmetric(3, 30.0, 1.0).unwrap();
        let big = sched.scaled(2.0);
        assert_eq!(big.cycle(), 60.0);
        assert_eq!(big.start(p(2)), 20.0);
        assert_eq!(big.width(p(1)), 18.0);
    }

    #[test]
    fn display_lists_each_phase() {
        let sched = ClockSchedule::symmetric(2, 100.0, 10.0).unwrap();
        let s = sched.to_string();
        assert!(s.contains("Tc = 100"));
        assert!(s.contains("φ2"));
    }
}
