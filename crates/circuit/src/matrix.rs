//! Small dense boolean matrix used for the paper's `C` and `K` matrices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense `k × k` boolean matrix.
///
/// Used for the phase-ordering matrix `C` (eq. 1) and the input/output
/// phase-pair matrix `K` (eq. 2). Displays in the paper's bracketed 0/1
/// layout:
///
/// ```
/// use smo_circuit::BoolMatrix;
/// let mut m = BoolMatrix::new(2);
/// m.set(0, 1, true);
/// assert_eq!(m.to_string(), "[ 0 1 ]\n[ 0 0 ]\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BoolMatrix {
    dim: usize,
    data: Vec<bool>,
}

impl BoolMatrix {
    /// Creates an all-false `dim × dim` matrix.
    pub fn new(dim: usize) -> Self {
        BoolMatrix {
            dim,
            data: vec![false; dim * dim],
        }
    }

    /// Matrix dimension `k`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Element at zero-based `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.dim && col < self.dim, "index out of range");
        self.data[row * self.dim + col]
    }

    /// Sets the element at zero-based `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.dim && col < self.dim, "index out of range");
        self.data[row * self.dim + col] = value;
    }

    /// Number of `true` entries.
    pub fn count_ones(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Iterates over the `(row, col)` coordinates of `true` entries in
    /// row-major order.
    pub fn ones(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.data
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(move |(i, _)| (i / self.dim, i % self.dim))
    }
}

impl fmt::Display for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.dim {
            write!(f, "[")?;
            for c in 0..self.dim {
                write!(f, " {}", u8::from(self.get(r, c)))?;
            }
            writeln!(f, " ]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut m = BoolMatrix::new(3);
        m.set(1, 2, true);
        m.set(2, 0, true);
        assert!(m.get(1, 2));
        assert!(m.get(2, 0));
        assert!(!m.get(0, 0));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn ones_iterates_row_major() {
        let mut m = BoolMatrix::new(2);
        m.set(0, 1, true);
        m.set(1, 0, true);
        let coords: Vec<_> = m.ones().collect();
        assert_eq!(coords, vec![(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let m = BoolMatrix::new(2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn display_matches_paper_layout() {
        // The appendix K matrix for Fig. 1.
        let mut k = BoolMatrix::new(4);
        for (i, j) in [
            (0, 2),
            (0, 3),
            (1, 0),
            (1, 2),
            (1, 3),
            (2, 0),
            (2, 1),
            (3, 1),
            (3, 2),
        ] {
            k.set(i, j, true);
        }
        let s = k.to_string();
        assert_eq!(s, "[ 0 0 1 1 ]\n[ 1 0 1 1 ]\n[ 1 1 0 0 ]\n[ 0 1 1 0 ]\n");
    }
}
