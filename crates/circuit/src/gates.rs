//! Gate-level front end: from a gate netlist to the latch-to-latch delay
//! graph the SMO model needs.
//!
//! The paper assumes (§III) that "the circuit has been decomposed into
//! clocked combinational stages, and that the various delay parameters have
//! been calculated". This module performs that decomposition: given gates
//! with min/max propagation delays and synchronizers wired through them, it
//! computes, for every latch pair `(j, i)` connected by gate-only paths,
//! the long-path delay `Δ_ji` (longest path) and short-path delay `δ_ji`
//! (shortest path), producing a [`Circuit`].
//!
//! Combinational cycles (a gate loop with no synchronizer on it) are
//! rejected — the paper's stages are "feedback-free combinational logic".
//!
//! ```
//! use smo_circuit::gates::GateNetlistBuilder;
//! use smo_circuit::PhaseId;
//!
//! # fn main() -> Result<(), smo_circuit::CircuitError> {
//! let mut g = GateNetlistBuilder::new(2);
//! let a = g.add_latch("A", PhaseId::from_number(1), 1.0, 1.0);
//! let x = g.add_gate("and1", 2.0, 3.0);
//! let y = g.add_gate("or1", 1.0, 2.0);
//! let b = g.add_latch("B", PhaseId::from_number(2), 1.0, 1.0);
//! g.wire(a, x)?;
//! g.wire(x, y)?;
//! g.wire(y, b)?;
//! g.wire(a, b)?; // a direct wire, delay 0
//! let circuit = g.extract()?;
//! // one edge A→B with Δ = 3+2 = 5 (longest) and δ = 0 (the direct wire)
//! assert_eq!(circuit.num_edges(), 1);
//! assert_eq!(circuit.edges()[0].max_delay, 5.0);
//! assert_eq!(circuit.edges()[0].min_delay, 0.0);
//! # Ok(())
//! # }
//! ```

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::ids::PhaseId;
use crate::sync::Synchronizer;
use std::collections::HashMap;

/// Node handle within a [`GateNetlistBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum Node {
    Gate {
        name: String,
        min_delay: f64,
        max_delay: f64,
    },
    Sync(Synchronizer),
}

/// Builds a gate-level netlist and extracts the latch-graph [`Circuit`].
#[derive(Debug, Clone)]
pub struct GateNetlistBuilder {
    phases: usize,
    nodes: Vec<Node>,
    /// wires as (driver, load) pairs
    wires: Vec<(usize, usize)>,
}

impl GateNetlistBuilder {
    /// Starts a netlist under a `num_phases`-phase clock.
    ///
    /// # Panics
    ///
    /// Panics if `num_phases` is zero.
    pub fn new(num_phases: usize) -> Self {
        assert!(num_phases >= 1, "a clock needs at least one phase");
        GateNetlistBuilder {
            phases: num_phases,
            nodes: Vec::new(),
            wires: Vec::new(),
        }
    }

    /// Adds a combinational gate with `[min_delay, max_delay]` propagation.
    pub fn add_gate(&mut self, name: impl Into<String>, min_delay: f64, max_delay: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Gate {
            name: name.into(),
            min_delay,
            max_delay,
        });
        id
    }

    /// Adds a level-sensitive latch.
    pub fn add_latch(
        &mut self,
        name: impl Into<String>,
        phase: PhaseId,
        setup: f64,
        dq: f64,
    ) -> NodeId {
        self.add_sync(Synchronizer::latch(name, phase, setup, dq))
    }

    /// Adds an edge-triggered flip-flop.
    pub fn add_flip_flop(
        &mut self,
        name: impl Into<String>,
        phase: PhaseId,
        setup: f64,
        dq: f64,
    ) -> NodeId {
        self.add_sync(Synchronizer::flip_flop(name, phase, setup, dq))
    }

    /// Adds an arbitrary synchronizer.
    pub fn add_sync(&mut self, sync: Synchronizer) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Sync(sync));
        id
    }

    /// Connects `driver`'s output to `load`'s input (a zero-delay wire; all
    /// delay lives in the gates).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownLatch`] if either handle is invalid.
    pub fn wire(&mut self, driver: NodeId, load: NodeId) -> Result<(), CircuitError> {
        for n in [driver, load] {
            if n.0 >= self.nodes.len() {
                return Err(CircuitError::UnknownLatch { index: n.0 });
            }
        }
        self.wires.push((driver.0, load.0));
        Ok(())
    }

    /// Computes the latch-to-latch delay graph and builds the [`Circuit`].
    ///
    /// # Errors
    ///
    /// * [`CircuitError::CombinationalCycle`] if gates form a loop with no
    ///   synchronizer on it;
    /// * [`CircuitError::InvalidLatchParameter`] /
    ///   [`CircuitError::InvalidEdgeDelay`] for bad gate delays;
    /// * the usual structural errors from [`CircuitBuilder::build`].
    pub fn extract(&self) -> Result<Circuit, CircuitError> {
        let n = self.nodes.len();
        // validate gate delays
        for node in &self.nodes {
            if let Node::Gate {
                name,
                min_delay,
                max_delay,
            } = node
            {
                if !min_delay.is_finite()
                    || !max_delay.is_finite()
                    || *min_delay < 0.0
                    || *max_delay < *min_delay
                {
                    return Err(CircuitError::InvalidEdgeDelay {
                        from: name.clone(),
                        to: name.clone(),
                        reason: format!("gate delay range [{min_delay}, {max_delay}] is invalid"),
                    });
                }
            }
        }

        // adjacency over all nodes
        let mut out = vec![Vec::new(); n];
        for &(d, l) in &self.wires {
            out[d].push(l);
        }

        // Topological order over GATES only (synchronizers break paths).
        // Kahn's algorithm on the gate-induced subgraph.
        let mut indeg = vec![0usize; n];
        for &(d, l) in &self.wires {
            if matches!(self.nodes[d], Node::Gate { .. })
                && matches!(self.nodes[l], Node::Gate { .. })
            {
                indeg[l] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| matches!(self.nodes[i], Node::Gate { .. }) && indeg[i] == 0)
            .collect();
        let mut topo = Vec::new();
        while let Some(g) = queue.pop() {
            topo.push(g);
            for &l in &out[g] {
                if matches!(self.nodes[l], Node::Gate { .. }) {
                    indeg[l] -= 1;
                    if indeg[l] == 0 {
                        queue.push(l);
                    }
                }
            }
        }
        let num_gates = self
            .nodes
            .iter()
            .filter(|x| matches!(x, Node::Gate { .. }))
            .count();
        if topo.len() != num_gates {
            let stuck = (0..n)
                .find(|&i| matches!(self.nodes[i], Node::Gate { .. }) && indeg[i] > 0)
                .map(|i| match &self.nodes[i] {
                    Node::Gate { name, .. } => name.clone(),
                    Node::Sync(s) => s.name.clone(),
                });
            return Err(CircuitError::CombinationalCycle {
                gate: stuck.unwrap_or_default(),
            });
        }

        // For each synchronizer source, propagate (max, min) path delays
        // through the gate DAG in topological order.
        let sync_ids: Vec<usize> = (0..n)
            .filter(|&i| matches!(self.nodes[i], Node::Sync(_)))
            .collect();
        let mut b = CircuitBuilder::new(self.phases);
        let mut latch_of = HashMap::new();
        for &s in &sync_ids {
            if let Node::Sync(sync) = &self.nodes[s] {
                latch_of.insert(s, b.add_sync(sync.clone()));
            }
        }

        for &src in &sync_ids {
            // dist[i] = (max, min) arrival at *input* of node i
            let mut dist: Vec<Option<(f64, f64)>> = vec![None; n];
            let relax =
                |dist: &mut Vec<Option<(f64, f64)>>, to: usize, cand: (f64, f64)| match dist[to] {
                    None => dist[to] = Some(cand),
                    Some((mx, mn)) => dist[to] = Some((mx.max(cand.0), mn.min(cand.1))),
                };
            // direct wires out of the source
            for &l in &out[src] {
                relax(&mut dist, l, (0.0, 0.0));
            }
            // sweep gates in topological order
            for &g in &topo {
                let Some((mx, mn)) = dist[g] else { continue };
                let Node::Gate {
                    min_delay,
                    max_delay,
                    ..
                } = &self.nodes[g]
                else {
                    unreachable!("topo contains gates only")
                };
                let through = (mx + max_delay, mn + min_delay);
                for &l in &out[g] {
                    relax(&mut dist, l, through);
                }
            }
            // record latch-to-latch edges
            for &dst in &sync_ids {
                if let Some((mx, mn)) = dist[dst] {
                    b.connect_min_max(latch_of[&src], latch_of[&dst], mn, mx);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    #[test]
    fn reconvergent_paths_take_longest_and_shortest() {
        // A → g1(5) → g3(1) → B   and   A → g2(2) → g3(1) → B
        let mut g = GateNetlistBuilder::new(2);
        let a = g.add_latch("A", p(1), 1.0, 1.0);
        let b2 = g.add_latch("B", p(2), 1.0, 1.0);
        let g1 = g.add_gate("g1", 5.0, 5.0);
        let g2 = g.add_gate("g2", 2.0, 2.0);
        let g3 = g.add_gate("g3", 1.0, 1.0);
        g.wire(a, g1).unwrap();
        g.wire(a, g2).unwrap();
        g.wire(g1, g3).unwrap();
        g.wire(g2, g3).unwrap();
        g.wire(g3, b2).unwrap();
        let c = g.extract().unwrap();
        assert_eq!(c.num_edges(), 1);
        assert_eq!(c.edges()[0].max_delay, 6.0);
        assert_eq!(c.edges()[0].min_delay, 3.0);
    }

    #[test]
    fn gate_delay_ranges_propagate_independently() {
        // one path of two gates with [min,max] = [1,4] and [2,3]
        let mut g = GateNetlistBuilder::new(1);
        let a = g.add_latch("A", p(1), 1.0, 1.0);
        let b2 = g.add_latch("B", p(1), 1.0, 1.0);
        let g1 = g.add_gate("g1", 1.0, 4.0);
        let g2 = g.add_gate("g2", 2.0, 3.0);
        g.wire(a, g1).unwrap();
        g.wire(g1, g2).unwrap();
        g.wire(g2, b2).unwrap();
        let c = g.extract().unwrap();
        assert_eq!(c.edges()[0].max_delay, 7.0);
        assert_eq!(c.edges()[0].min_delay, 3.0);
    }

    #[test]
    fn synchronizers_break_paths() {
        // A → g1 → M(latch) → g2 → B must produce A→M and M→B, not A→B.
        let mut g = GateNetlistBuilder::new(2);
        let a = g.add_latch("A", p(1), 1.0, 1.0);
        let m = g.add_latch("M", p(2), 1.0, 1.0);
        let b2 = g.add_latch("B", p(1), 1.0, 1.0);
        let g1 = g.add_gate("g1", 2.0, 2.0);
        let g2 = g.add_gate("g2", 3.0, 3.0);
        g.wire(a, g1).unwrap();
        g.wire(g1, m).unwrap();
        g.wire(m, g2).unwrap();
        g.wire(g2, b2).unwrap();
        let c = g.extract().unwrap();
        assert_eq!(c.num_edges(), 2);
        let am = c.edges().iter().find(|e| e.max_delay == 2.0).unwrap();
        let mb = c.edges().iter().find(|e| e.max_delay == 3.0).unwrap();
        assert_ne!(am.from, mb.from);
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut g = GateNetlistBuilder::new(1);
        let a = g.add_latch("A", p(1), 1.0, 1.0);
        let g1 = g.add_gate("g1", 1.0, 1.0);
        let g2 = g.add_gate("g2", 1.0, 1.0);
        g.wire(a, g1).unwrap();
        g.wire(g1, g2).unwrap();
        g.wire(g2, g1).unwrap(); // combinational loop
        assert!(matches!(
            g.extract().unwrap_err(),
            CircuitError::CombinationalCycle { .. }
        ));
    }

    #[test]
    fn loop_through_a_latch_is_fine() {
        let mut g = GateNetlistBuilder::new(2);
        let a = g.add_latch("A", p(1), 1.0, 1.0);
        let b2 = g.add_latch("B", p(2), 1.0, 1.0);
        let g1 = g.add_gate("g1", 4.0, 4.0);
        let g2 = g.add_gate("g2", 6.0, 6.0);
        g.wire(a, g1).unwrap();
        g.wire(g1, b2).unwrap();
        g.wire(b2, g2).unwrap();
        g.wire(g2, a).unwrap();
        let c = g.extract().unwrap();
        assert!(c.has_feedback());
        assert_eq!(c.num_edges(), 2);
    }

    #[test]
    fn fanout_to_multiple_latches() {
        let mut g = GateNetlistBuilder::new(2);
        let a = g.add_latch("A", p(1), 1.0, 1.0);
        let b2 = g.add_latch("B", p(2), 1.0, 1.0);
        let c2 = g.add_latch("C", p(2), 1.0, 1.0);
        let g1 = g.add_gate("g1", 2.5, 2.5);
        g.wire(a, g1).unwrap();
        g.wire(g1, b2).unwrap();
        g.wire(g1, c2).unwrap();
        let c = g.extract().unwrap();
        assert_eq!(c.num_edges(), 2);
        assert!(c.edges().iter().all(|e| e.max_delay == 2.5));
    }

    #[test]
    fn bad_gate_delay_is_rejected() {
        let mut g = GateNetlistBuilder::new(1);
        g.add_latch("A", p(1), 1.0, 1.0);
        g.add_gate("bad", 5.0, 2.0); // min > max
        assert!(matches!(
            g.extract().unwrap_err(),
            CircuitError::InvalidEdgeDelay { .. }
        ));
    }

    #[test]
    fn invalid_wire_handles_are_rejected() {
        let mut g = GateNetlistBuilder::new(1);
        let a = g.add_latch("A", p(1), 1.0, 1.0);
        assert!(g.wire(a, NodeId(99)).is_err());
    }

    #[test]
    fn extracted_circuit_solves() {
        // end-to-end: gates → circuit → optimal cycle time is just a build
        // check here (the timing engine itself is tested in smo-core).
        let mut g = GateNetlistBuilder::new(2);
        let a = g.add_latch("A", p(1), 1.0, 1.0);
        let b2 = g.add_latch("B", p(2), 1.0, 1.0);
        let g1 = g.add_gate("g1", 1.0, 8.0);
        let g2 = g.add_gate("g2", 1.0, 12.0);
        g.wire(a, g1).unwrap();
        g.wire(g1, b2).unwrap();
        g.wire(b2, g2).unwrap();
        g.wire(g2, a).unwrap();
        let c = g.extract().unwrap();
        assert_eq!(c.num_syncs(), 2);
        assert_eq!(c.edges()[0].max_delay + c.edges()[1].max_delay, 20.0);
    }
}
