//! Error type for circuit construction and validation.

use std::error::Error;
use std::fmt;

/// Errors reported while building or validating circuits, clock schedules
/// and netlists.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A synchronizer references a phase `≥ k`.
    PhaseOutOfRange {
        /// Synchronizer name.
        latch: String,
        /// One-based phase number that was requested.
        phase: usize,
        /// Number of phases in the clock.
        num_phases: usize,
    },
    /// A latch parameter (setup, dq, hold) is negative or non-finite.
    InvalidLatchParameter {
        /// Synchronizer name.
        latch: String,
        /// Which parameter is bad.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The paper's assumption `Δ_DQ ≥ Δ_DC` is violated for a latch.
    DqBelowSetup {
        /// Synchronizer name.
        latch: String,
        /// Declared propagation delay.
        dq: f64,
        /// Declared setup time.
        setup: f64,
    },
    /// An edge delay is negative, non-finite, or `min_delay > max_delay`.
    InvalidEdgeDelay {
        /// Source synchronizer name.
        from: String,
        /// Destination synchronizer name.
        to: String,
        /// Explanation.
        reason: String,
    },
    /// Two synchronizers share a name.
    DuplicateName {
        /// The non-unique name.
        name: String,
    },
    /// A synchronizer name is empty or contains characters the netlist
    /// text format cannot round-trip (whitespace, `#`).
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// An edge references a synchronizer id that does not exist.
    UnknownLatch {
        /// The out-of-range index (zero-based).
        index: usize,
    },
    /// The circuit has no synchronizers.
    EmptyCircuit,
    /// A concrete clock schedule violates the clock constraints.
    InvalidSchedule {
        /// Explanation.
        reason: String,
    },
    /// Gates form a loop with no synchronizer on it (the paper's stages
    /// must be feedback-free combinational logic).
    CombinationalCycle {
        /// A gate on the loop.
        gate: String,
    },
    /// A netlist failed to parse.
    ParseNetlist {
        /// One-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A netlist exceeded an input limit (see
    /// [`ParseLimits`](crate::netlist::ParseLimits)). Untrusted inputs —
    /// daemon requests, fuzzed bytes — degrade into this structured error
    /// instead of unbounded memory or time.
    InputLimit {
        /// Which limit was exceeded (`"input bytes"`, `"lines"`, …).
        what: &'static str,
        /// The configured cap.
        limit: usize,
        /// The observed value.
        actual: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::PhaseOutOfRange {
                latch,
                phase,
                num_phases,
            } => write!(
                f,
                "latch `{latch}` uses phase {phase} but the clock has only {num_phases} phases"
            ),
            CircuitError::InvalidLatchParameter {
                latch,
                parameter,
                value,
            } => write!(
                f,
                "latch `{latch}` has invalid {parameter} {value} (must be finite and non-negative)"
            ),
            CircuitError::DqBelowSetup { latch, dq, setup } => write!(
                f,
                "latch `{latch}` has Δ_DQ = {dq} below Δ_DC = {setup} (the model assumes Δ_DQ ≥ Δ_DC)"
            ),
            CircuitError::InvalidEdgeDelay { from, to, reason } => {
                write!(f, "edge `{from}` → `{to}`: {reason}")
            }
            CircuitError::DuplicateName { name } => {
                write!(f, "duplicate synchronizer name `{name}`")
            }
            CircuitError::InvalidName { name } => {
                write!(
                    f,
                    "invalid synchronizer name `{name}` (must be non-empty, no whitespace or `#`)"
                )
            }
            CircuitError::UnknownLatch { index } => {
                write!(f, "edge references unknown synchronizer index {index}")
            }
            CircuitError::EmptyCircuit => write!(f, "circuit has no synchronizers"),
            CircuitError::InvalidSchedule { reason } => {
                write!(f, "invalid clock schedule: {reason}")
            }
            CircuitError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through gate `{gate}` (no synchronizer on the loop)")
            }
            CircuitError::ParseNetlist { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            CircuitError::InputLimit {
                what,
                limit,
                actual,
            } => {
                write!(f, "netlist exceeds the {what} limit: {actual} > {limit}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        let e = CircuitError::PhaseOutOfRange {
            latch: "L7".into(),
            phase: 5,
            num_phases: 2,
        };
        let m = e.to_string();
        assert!(m.contains("L7") && m.contains('5') && m.contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
