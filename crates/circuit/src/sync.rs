//! Synchronizing elements: level-sensitive latches and edge-triggered
//! flip-flops.

use crate::ids::PhaseId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a synchronizing element.
///
/// The paper's formulation (§III-B) is for level-sensitive D-latches;
/// Example 3 (the GaAs MIPS datapath, Fig. 10) additionally uses
/// edge-triggered flip-flops, which the timing engine models as degenerate
/// synchronizers: the departure time is pinned to the enabling edge and the
/// setup requirement is referenced to that edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncKind {
    /// Transparent while its phase is active; closes at the trailing edge.
    Latch,
    /// Samples at the leading (rising) edge of its phase.
    FlipFlop,
}

impl fmt::Display for SyncKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncKind::Latch => write!(f, "latch"),
            SyncKind::FlipFlop => write!(f, "flip-flop"),
        }
    }
}

/// A synchronizing element (the paper's "latch i").
///
/// Carries the per-latch parameters of §III-B:
///
/// * `phase` — the controlling clock phase `p_i`;
/// * `setup` — the setup time `Δ_DCi` between the data input and the
///   trailing edge (latch) or leading edge (flip-flop) of the clock;
/// * `dq` — the propagation delay `Δ_DQi` from data input to data output
///   while the clock is high (latch), or the clock-to-Q delay (flip-flop);
/// * `hold` — *extension*: minimum time the input must stay stable after
///   the closing edge (used by the optional short-path analysis; the paper
///   notes the long-path problem only, after Unger's treatment of both).
///
/// The paper assumes `Δ_DQi ≥ Δ_DCi` for latches; the
/// [`CircuitBuilder`](crate::CircuitBuilder) enforces it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Synchronizer {
    /// Human-readable instance name (unique within a circuit).
    pub name: String,
    /// Latch or flip-flop.
    pub kind: SyncKind,
    /// Controlling clock phase `p_i`.
    pub phase: PhaseId,
    /// Setup time `Δ_DCi`.
    pub setup: f64,
    /// Propagation delay `Δ_DQi` (clock-to-Q for flip-flops).
    pub dq: f64,
    /// Hold requirement (extension; `0.0` disables the check).
    pub hold: f64,
}

impl Synchronizer {
    /// A level-sensitive latch with zero hold requirement.
    pub fn latch(name: impl Into<String>, phase: PhaseId, setup: f64, dq: f64) -> Self {
        Synchronizer {
            name: name.into(),
            kind: SyncKind::Latch,
            phase,
            setup,
            dq,
            hold: 0.0,
        }
    }

    /// An edge-triggered flip-flop with zero hold requirement.
    pub fn flip_flop(name: impl Into<String>, phase: PhaseId, setup: f64, dq: f64) -> Self {
        Synchronizer {
            name: name.into(),
            kind: SyncKind::FlipFlop,
            phase,
            setup,
            dq,
            hold: 0.0,
        }
    }

    /// Returns `self` with the given hold requirement (builder style).
    pub fn with_hold(mut self, hold: f64) -> Self {
        self.hold = hold;
        self
    }

    /// `true` for level-sensitive latches.
    pub fn is_latch(&self) -> bool {
        self.kind == SyncKind::Latch
    }
}

impl fmt::Display for Synchronizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` on {} (setup {}, dq {})",
            self.kind, self.name, self.phase, self.setup, self.dq
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let l = Synchronizer::latch("a", PhaseId::new(0), 1.0, 2.0);
        assert!(l.is_latch());
        assert_eq!(l.hold, 0.0);
        let ff = Synchronizer::flip_flop("b", PhaseId::new(1), 0.5, 0.7);
        assert_eq!(ff.kind, SyncKind::FlipFlop);
        assert!(!ff.is_latch());
    }

    #[test]
    fn with_hold_is_chainable() {
        let l = Synchronizer::latch("a", PhaseId::new(0), 1.0, 2.0).with_hold(0.3);
        assert_eq!(l.hold, 0.3);
    }

    #[test]
    fn display_mentions_name_and_phase() {
        let l = Synchronizer::latch("rf_out", PhaseId::from_number(3), 1.0, 2.0);
        let s = l.to_string();
        assert!(s.contains("rf_out"));
        assert!(s.contains("φ3"));
        assert!(s.contains("latch"));
    }
}
