//! Combinational delay edges and graph utilities (cycles, SCCs).

use crate::ids::LatchId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque handle to a combinational edge of a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// Creates an edge id from a zero-based index.
    pub fn new(index: usize) -> Self {
        EdgeId(index)
    }

    /// Zero-based index of this edge.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A combinational path from the output of one synchronizer to the input of
/// another, annotated with its propagation delay `Δ_ji` (§III-B).
///
/// `min_delay` is the *extension* short-path (contamination) delay used by
/// the optional hold analysis; it defaults to `0.0` (most conservative).
/// `min_specified` records whether that short-path delay was actually
/// measured/declared (`connect_min_max`, a netlist `min=`/`mindelay`) or is
/// just the conservative default — the race detector substitutes the max
/// delay for unspecified mins via [`Edge::short_delay`], so circuits without
/// short-path data are never flagged on the strength of the `0.0` filler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source synchronizer `j` (the signal departs from its output).
    pub from: LatchId,
    /// Destination synchronizer `i` (the signal arrives at its input).
    pub to: LatchId,
    /// Worst-case (long-path) propagation delay `Δ_ji`.
    pub max_delay: f64,
    /// Best-case (short-path) propagation delay; `≤ max_delay`.
    pub min_delay: f64,
    /// `true` iff `min_delay` carries real short-path data.
    pub min_specified: bool,
}

impl Edge {
    /// The short-path delay the race analysis should trust: the declared
    /// `min_delay` when one was specified, otherwise the `max_delay` (a path
    /// whose spread is unknown is assumed raceless rather than instantaneous).
    pub fn short_delay(&self) -> f64 {
        if self.min_specified {
            self.min_delay
        } else {
            self.max_delay
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {} (Δ = {})", self.from, self.to, self.max_delay)
    }
}

/// A directed cycle through synchronizers, reported by
/// [`Circuit::cycles`](crate::Circuit::cycles).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cycle {
    /// The synchronizers on the cycle, in traversal order; the last feeds
    /// back to the first.
    pub latches: Vec<LatchId>,
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.latches.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{l}")?;
        }
        if let Some(first) = self.latches.first() {
            write!(f, " → {first}")?;
        }
        Ok(())
    }
}

/// Tarjan strongly-connected components over an adjacency list.
///
/// Returns components in reverse topological order; every synchronizer
/// appears in exactly one component. Components of size > 1, and singleton
/// components with a self-edge, contain feedback.
pub(crate) fn strongly_connected_components(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let n = adj.len();
    let mut state = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Iterative Tarjan to avoid recursion depth limits on long pipelines.
    enum Frame {
        Enter(usize),
        Resume(usize, usize), // (node, child already processed)
    }
    for start in 0..n {
        if state[start].visited {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(start)];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    state[v].visited = true;
                    state[v].index = next_index;
                    state[v].lowlink = next_index;
                    next_index += 1;
                    stack.push(v);
                    state[v].on_stack = true;
                    call_stack.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, child_pos) => {
                    let mut advanced = false;
                    for (pos, &w) in adj[v].iter().enumerate().skip(child_pos) {
                        if !state[w].visited {
                            call_stack.push(Frame::Resume(v, pos + 1));
                            call_stack.push(Frame::Enter(w));
                            advanced = true;
                            break;
                        } else if state[w].on_stack {
                            state[v].lowlink = state[v].lowlink.min(state[w].index);
                        }
                    }
                    if advanced {
                        continue;
                    }
                    if state[v].lowlink == state[v].index {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack invariant");
                            state[w].on_stack = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                    // propagate lowlink to parent
                    if let Some(Frame::Resume(parent, _)) = call_stack.last() {
                        let parent = *parent;
                        state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
                    }
                }
            }
        }
    }
    components
}

/// Enumerates elementary cycles within one SCC by DFS from its smallest
/// node, capped at `limit` cycles (cycle counts are exponential in general).
pub(crate) fn enumerate_cycles(
    adj: &[Vec<usize>],
    nodes: &[usize],
    limit: usize,
) -> Vec<Vec<usize>> {
    // Johnson's algorithm simplified: we only need representative cycles for
    // diagnostics, so a bounded DFS from each node (taking only nodes >= root
    // to avoid duplicates) is sufficient and simple.
    let mut in_scc = vec![false; adj.len()];
    for &n in nodes {
        in_scc[n] = true;
    }
    let mut cycles = Vec::new();
    for &root in nodes {
        if cycles.len() >= limit {
            break;
        }
        let mut path = vec![root];
        let mut on_path = vec![false; adj.len()];
        on_path[root] = true;
        // stack of (node, next child position)
        let mut dfs = vec![(root, 0usize)];
        while let Some(&(v, pos)) = dfs.last() {
            if cycles.len() >= limit {
                break;
            }
            if pos < adj[v].len() {
                dfs.last_mut().expect("non-empty").1 += 1;
                let w = adj[v][pos];
                if !in_scc[w] || w < root {
                    continue;
                }
                if w == root {
                    cycles.push(path.clone());
                } else if !on_path[w] {
                    on_path[w] = true;
                    path.push(w);
                    dfs.push((w, 0));
                }
            } else {
                dfs.pop();
                path.pop();
                on_path[v] = false;
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_splits_dag() {
        // 0 -> 1 -> 2 (no cycles): three singleton components.
        let adj = vec![vec![1], vec![2], vec![]];
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scc_finds_loop() {
        // 0 -> 1 -> 2 -> 0 plus a tail 2 -> 3.
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let comps = strongly_connected_components(&adj);
        let big: Vec<_> = comps.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        let mut nodes = big[0].clone();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    fn scc_handles_two_disjoint_loops() {
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps.iter().filter(|c| c.len() == 2).count(), 2);
    }

    #[test]
    fn cycles_enumerated_without_duplicates() {
        // 0 <-> 1, and triangle 0 -> 1 -> 2 -> 0.
        let adj = vec![vec![1], vec![0, 2], vec![0]];
        let nodes = vec![0, 1, 2];
        let cycles = enumerate_cycles(&adj, &nodes, 100);
        assert_eq!(cycles.len(), 2, "cycles: {cycles:?}");
    }

    #[test]
    fn cycle_limit_is_respected() {
        // complete digraph on 4 nodes has many cycles; cap at 3.
        let adj: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..4).filter(|&j| j != i).collect())
            .collect();
        let nodes = vec![0, 1, 2, 3];
        let cycles = enumerate_cycles(&adj, &nodes, 3);
        assert_eq!(cycles.len(), 3);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let adj = vec![vec![0]];
        let cycles = enumerate_cycles(&adj, &[0], 10);
        assert_eq!(cycles, vec![vec![0]]);
    }

    #[test]
    fn cycle_display_closes_the_loop() {
        let c = Cycle {
            latches: vec![LatchId::new(0), LatchId::new(1)],
        };
        assert_eq!(c.to_string(), "L1 → L2 → L1");
    }

    #[test]
    fn deep_pipeline_does_not_overflow_stack() {
        // 50_000-node path: recursion-free Tarjan must cope.
        let n = 50_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps.len(), n);
    }
}
