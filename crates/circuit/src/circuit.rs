//! The immutable, validated circuit.

use crate::clock::ClockSpec;
use crate::graph::{self, Cycle, Edge, EdgeId};
use crate::ids::{LatchId, PhaseId};
use crate::matrix::BoolMatrix;
use crate::sync::{SyncKind, Synchronizer};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated latch-controlled synchronous circuit (§III, Fig. 1): a set of
/// synchronizers interconnected by combinational delay edges, under a
/// k-phase clock.
///
/// Construct through [`CircuitBuilder`](crate::CircuitBuilder) or
/// [`netlist::parse`](crate::netlist::parse). The structure is immutable
/// after construction, so derived data (fan-in/fan-out adjacency) is computed
/// once and shared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    clock: ClockSpec,
    syncs: Vec<Synchronizer>,
    edges: Vec<Edge>,
    fanin: Vec<Vec<EdgeId>>,
    fanout: Vec<Vec<EdgeId>>,
}

impl Circuit {
    pub(crate) fn from_parts(clock: ClockSpec, syncs: Vec<Synchronizer>, edges: Vec<Edge>) -> Self {
        let mut fanin = vec![Vec::new(); syncs.len()];
        let mut fanout = vec![Vec::new(); syncs.len()];
        for (i, e) in edges.iter().enumerate() {
            fanout[e.from.index()].push(EdgeId(i));
            fanin[e.to.index()].push(EdgeId(i));
        }
        Circuit {
            clock,
            syncs,
            edges,
            fanin,
            fanout,
        }
    }

    /// The clock specification.
    pub fn clock(&self) -> ClockSpec {
        self.clock
    }

    /// Number of clock phases `k`.
    pub fn num_phases(&self) -> usize {
        self.clock.num_phases()
    }

    /// Total number of synchronizers `l` (latches plus flip-flops).
    pub fn num_syncs(&self) -> usize {
        self.syncs.len()
    }

    /// Number of level-sensitive latches.
    pub fn num_latches(&self) -> usize {
        self.syncs.iter().filter(|s| s.is_latch()).count()
    }

    /// Number of edge-triggered flip-flops.
    pub fn num_flip_flops(&self) -> usize {
        self.syncs.iter().filter(|s| !s.is_latch()).count()
    }

    /// Number of combinational edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The synchronizer with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn sync(&self, id: LatchId) -> &Synchronizer {
        &self.syncs[id.index()]
    }

    /// Iterates over `(id, synchronizer)` pairs in id order.
    pub fn syncs(&self) -> impl Iterator<Item = (LatchId, &Synchronizer)> {
        self.syncs
            .iter()
            .enumerate()
            .map(|(i, s)| (LatchId::new(i), s))
    }

    /// Iterates over the synchronizer ids.
    pub fn latch_ids(&self) -> impl Iterator<Item = LatchId> {
        (0..self.syncs.len()).map(LatchId::new)
    }

    /// Looks a synchronizer up by name.
    pub fn find(&self, name: &str) -> Option<LatchId> {
        self.syncs
            .iter()
            .position(|s| s.name == name)
            .map(LatchId::new)
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All combinational edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of the edges arriving at `id`'s data input.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanin(&self, id: LatchId) -> &[EdgeId] {
        &self.fanin[id.index()]
    }

    /// Ids of the edges departing from `id`'s data output.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanout(&self, id: LatchId) -> &[EdgeId] {
        &self.fanout[id.index()]
    }

    /// The largest fan-in of any synchronizer — `F` in the paper's
    /// constraint-count bound `4k + (F+1)·l` (§IV).
    pub fn max_fanin(&self) -> usize {
        self.fanin.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The paper's `K` matrix (eq. 2): `K[i][j]` is `true` iff `φ_i/φ_j` is
    /// an input/output phase pair of some combinational block, i.e. some edge
    /// runs from a synchronizer on `φ_i` to one on `φ_j`.
    pub fn k_matrix(&self) -> BoolMatrix {
        let mut k = BoolMatrix::new(self.num_phases());
        for e in &self.edges {
            let pi = self.sync(e.from).phase.index();
            let pj = self.sync(e.to).phase.index();
            k.set(pi, pj, true);
        }
        k
    }

    /// The distinct input/output phase pairs `(φ_i, φ_j)` (source, dest).
    pub fn io_phase_pairs(&self) -> Vec<(PhaseId, PhaseId)> {
        self.k_matrix()
            .ones()
            .map(|(i, j)| (PhaseId::new(i), PhaseId::new(j)))
            .collect()
    }

    /// `true` if any directed cycle passes through the synchronizer graph.
    pub fn has_feedback(&self) -> bool {
        let adj = self.adjacency();
        graph::strongly_connected_components(&adj)
            .iter()
            .any(|c| c.len() > 1 || (c.len() == 1 && adj[c[0]].contains(&c[0])))
    }

    /// Enumerates elementary feedback cycles, at most `limit` of them.
    ///
    /// Cycle counts can be exponential; `limit` bounds the work. The result
    /// is intended for diagnostics (e.g. reporting which loop makes a
    /// schedule infeasible).
    pub fn cycles(&self, limit: usize) -> Vec<Cycle> {
        let adj = self.adjacency();
        let mut out = Vec::new();
        for comp in graph::strongly_connected_components(&adj) {
            if out.len() >= limit {
                break;
            }
            let is_loop = comp.len() > 1 || adj[comp[0]].contains(&comp[0]);
            if !is_loop {
                continue;
            }
            for cyc in graph::enumerate_cycles(&adj, &comp, limit - out.len()) {
                out.push(Cycle {
                    latches: cyc.into_iter().map(LatchId::new).collect(),
                });
            }
        }
        out
    }

    /// Strongly connected components of the synchronizer graph, in reverse
    /// topological order (each component's members are in discovery order).
    ///
    /// Singleton components without a self-loop are returned too; use
    /// [`Circuit::has_feedback`] or check for a self-edge to distinguish
    /// cyclic components.
    pub fn sccs(&self) -> Vec<Vec<LatchId>> {
        graph::strongly_connected_components(&self.adjacency())
            .into_iter()
            .map(|comp| comp.into_iter().map(LatchId::new).collect())
            .collect()
    }

    /// Adjacency list over synchronizer indices (parallel edges deduplicated).
    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.syncs.len()];
        for e in &self.edges {
            let (f, t) = (e.from.index(), e.to.index());
            if !adj[f].contains(&t) {
                adj[f].push(t);
            }
        }
        adj
    }

    /// Sum of all long-path delays around a cycle, including latch
    /// propagation delays — the numerator of the paper's "average delay
    /// around the loop" bound (§V, Example 1 discussion).
    ///
    /// Uses, for each hop, the *maximum* delay among parallel edges.
    ///
    /// # Panics
    ///
    /// Panics if the cycle's consecutive synchronizers are not connected.
    pub fn cycle_delay(&self, cycle: &Cycle) -> f64 {
        let n = cycle.latches.len();
        let mut total = 0.0;
        for i in 0..n {
            let from = cycle.latches[i];
            let to = cycle.latches[(i + 1) % n];
            let delay = self
                .fanout(from)
                .iter()
                .map(|&e| self.edge(e))
                .filter(|e| e.to == to)
                .map(|e| e.max_delay)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                delay.is_finite(),
                "cycle hop {from} → {to} has no edge in the circuit"
            );
            total += delay + self.sync(from).dq;
        }
        total
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} phases, {} latches, {} flip-flops, {} edges",
            self.num_phases(),
            self.num_latches(),
            self.num_flip_flops(),
            self.num_edges()
        )?;
        for (id, s) in self.syncs() {
            writeln!(f, "  {id}: {s}")?;
        }
        for e in &self.edges {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// Returns the number of synchronizers of each kind, used by reports.
impl Circuit {
    /// `(latches, flip_flops)` counts.
    pub fn kind_counts(&self) -> (usize, usize) {
        let l = self.num_latches();
        (l, self.num_syncs() - l)
    }

    /// Iterates over synchronizers controlled by `phase`.
    pub fn syncs_on_phase(&self, phase: PhaseId) -> impl Iterator<Item = LatchId> + '_ {
        self.syncs()
            .filter(move |(_, s)| s.phase == phase)
            .map(|(id, _)| id)
    }

    /// `true` when some synchronizer of kind `kind` exists.
    pub fn has_kind(&self, kind: SyncKind) -> bool {
        self.syncs.iter().any(|s| s.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    /// The paper's Example 1 topology (Fig. 5): four latches alternating
    /// between two phases, in a single loop.
    fn example1_like() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 10.0, 10.0);
        let l2 = b.add_latch("L2", p(2), 10.0, 10.0);
        let l3 = b.add_latch("L3", p(1), 10.0, 10.0);
        let l4 = b.add_latch("L4", p(2), 10.0, 10.0);
        b.connect(l1, l2, 20.0);
        b.connect(l2, l3, 20.0);
        b.connect(l3, l4, 60.0);
        b.connect(l4, l1, 80.0);
        b.build().unwrap()
    }

    #[test]
    fn k_matrix_captures_io_pairs() {
        let c = example1_like();
        let k = c.k_matrix();
        assert!(k.get(0, 1)); // φ1 → φ2 (L1→L2, L3→L4)
        assert!(k.get(1, 0)); // φ2 → φ1 (L2→L3, L4→L1)
        assert!(!k.get(0, 0));
        assert!(!k.get(1, 1));
        assert_eq!(c.io_phase_pairs().len(), 2);
    }

    #[test]
    fn fanin_fanout_are_consistent() {
        let c = example1_like();
        for id in c.latch_ids() {
            assert_eq!(c.fanin(id).len(), 1);
            assert_eq!(c.fanout(id).len(), 1);
        }
        assert_eq!(c.max_fanin(), 1);
        let e = c.edge(c.fanout(LatchId::new(3))[0]);
        assert_eq!(e.to, LatchId::new(0));
        assert_eq!(e.max_delay, 80.0);
    }

    #[test]
    fn feedback_and_cycles_detected() {
        let c = example1_like();
        assert!(c.has_feedback());
        let cycles = c.cycles(10);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].latches.len(), 4);
        // loop delay: 20+20+60+80 combinational + 4×10 latch = 220
        assert_eq!(c.cycle_delay(&cycles[0]), 220.0);
    }

    #[test]
    fn pipeline_has_no_feedback() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 1.0, 1.0);
        let c2 = b.add_latch("B", p(2), 1.0, 1.0);
        b.connect(a, c2, 5.0);
        let c = b.build().unwrap();
        assert!(!c.has_feedback());
        assert!(c.cycles(10).is_empty());
    }

    #[test]
    fn find_by_name() {
        let c = example1_like();
        assert_eq!(c.find("L3"), Some(LatchId::new(2)));
        assert_eq!(c.find("nope"), None);
    }

    #[test]
    fn syncs_on_phase_filters() {
        let c = example1_like();
        let on1: Vec<_> = c.syncs_on_phase(p(1)).collect();
        assert_eq!(on1, vec![LatchId::new(0), LatchId::new(2)]);
    }

    #[test]
    fn parallel_edges_use_max_in_cycle_delay() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 1.0, 1.0);
        let c2 = b.add_latch("B", p(2), 1.0, 1.0);
        b.connect(a, c2, 5.0);
        b.connect(a, c2, 9.0);
        b.connect(c2, a, 2.0);
        let c = b.build().unwrap();
        let cycles = c.cycles(10);
        assert_eq!(cycles.len(), 1);
        // 9 (max of 5,9) + 2 + two latch dq of 1
        assert_eq!(c.cycle_delay(&cycles[0]), 13.0);
    }

    #[test]
    fn self_loop_counts_as_feedback() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 1.0, 1.0);
        b.connect(a, a, 5.0);
        let c = b.build().unwrap();
        assert!(c.has_feedback());
        assert_eq!(c.cycles(10).len(), 1);
    }

    #[test]
    fn display_summarizes() {
        let c = example1_like();
        let s = c.to_string();
        assert!(s.contains("2 phases"));
        assert!(s.contains("4 latches"));
    }

    #[test]
    fn serde_round_trip() {
        let c = example1_like();
        let json = serde_json_like(&c);
        assert!(json.contains("L1"));
    }

    /// Tiny smoke check that Serialize is derivable without pulling in a
    /// JSON crate: serialize into the debug formatter of the serde data
    /// model via a no-op. (Full round-trip testing happens in integration
    /// tests with the netlist format, which is our canonical file format.)
    fn serde_json_like(c: &Circuit) -> String {
        // The netlist writer is the practical serialization path.
        crate::netlist::write(c)
    }
}
