//! Incremental circuit construction with validation.

use crate::circuit::Circuit;
use crate::clock::ClockSpec;
use crate::error::CircuitError;
use crate::graph::{Edge, EdgeId};
use crate::ids::{LatchId, PhaseId};
use crate::sync::{SyncKind, Synchronizer};
use std::collections::HashSet;

/// Builds a [`Circuit`] incrementally; all validation happens in
/// [`CircuitBuilder::build`].
///
/// ```
/// use smo_circuit::{CircuitBuilder, PhaseId};
/// # fn main() -> Result<(), smo_circuit::CircuitError> {
/// let mut b = CircuitBuilder::new(2);
/// let p1 = PhaseId::from_number(1);
/// let p2 = PhaseId::from_number(2);
/// let a = b.add_latch("A", p1, 10.0, 10.0);
/// let c = b.add_latch("C", p2, 10.0, 10.0);
/// b.connect(a, c, 20.0);
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_edges(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    clock: ClockSpec,
    syncs: Vec<Synchronizer>,
    edges: Vec<Edge>,
}

impl CircuitBuilder {
    /// Starts a circuit controlled by a `num_phases`-phase clock.
    ///
    /// # Panics
    ///
    /// Panics if `num_phases` is zero.
    pub fn new(num_phases: usize) -> Self {
        CircuitBuilder {
            clock: ClockSpec::new(num_phases),
            syncs: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a level-sensitive latch; returns its id.
    pub fn add_latch(
        &mut self,
        name: impl Into<String>,
        phase: PhaseId,
        setup: f64,
        dq: f64,
    ) -> LatchId {
        self.add_sync(Synchronizer::latch(name, phase, setup, dq))
    }

    /// Adds an edge-triggered flip-flop; returns its id.
    pub fn add_flip_flop(
        &mut self,
        name: impl Into<String>,
        phase: PhaseId,
        setup: f64,
        dq: f64,
    ) -> LatchId {
        self.add_sync(Synchronizer::flip_flop(name, phase, setup, dq))
    }

    /// Adds an arbitrary synchronizer; returns its id.
    pub fn add_sync(&mut self, sync: Synchronizer) -> LatchId {
        let id = LatchId::new(self.syncs.len());
        self.syncs.push(sync);
        id
    }

    /// Adds a combinational path with long-path delay `delay` (and a
    /// short-path delay of `0`, the conservative default for hold analysis).
    /// The short-path delay is recorded as *unspecified*, so analyses that
    /// trust measured data ([`Edge::short_delay`]) fall back to `delay`.
    pub fn connect(&mut self, from: LatchId, to: LatchId, delay: f64) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            from,
            to,
            max_delay: delay,
            min_delay: 0.0,
            min_specified: false,
        });
        id
    }

    /// Adds a combinational path with explicit short- and long-path delays.
    pub fn connect_min_max(
        &mut self,
        from: LatchId,
        to: LatchId,
        min_delay: f64,
        max_delay: f64,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            from,
            to,
            max_delay,
            min_delay,
            min_specified: true,
        });
        id
    }

    /// Declares the measured short-path delay for every existing `from → to`
    /// path (the netlist `mindelay` statement). Returns how many edges were
    /// updated — `0` means no such path exists yet.
    pub fn set_min_delay(&mut self, from: LatchId, to: LatchId, min_delay: f64) -> usize {
        let mut updated = 0;
        for e in &mut self.edges {
            if e.from == from && e.to == to {
                e.min_delay = min_delay;
                e.min_specified = true;
                updated += 1;
            }
        }
        updated
    }

    /// Number of synchronizers added so far.
    pub fn num_syncs(&self) -> usize {
        self.syncs.len()
    }

    /// Validates the accumulated structure and produces the immutable
    /// [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found; see [`CircuitError`] for
    /// the full catalogue (phase out of range, negative/non-finite delays,
    /// `Δ_DQ < Δ_DC` on a latch, duplicate names, dangling edge endpoints,
    /// empty circuit).
    pub fn build(self) -> Result<Circuit, CircuitError> {
        let CircuitBuilder {
            clock,
            syncs,
            edges,
        } = self;
        if syncs.is_empty() {
            return Err(CircuitError::EmptyCircuit);
        }
        let mut names = HashSet::new();
        for s in &syncs {
            if s.phase.index() >= clock.num_phases() {
                return Err(CircuitError::PhaseOutOfRange {
                    latch: s.name.clone(),
                    phase: s.phase.number(),
                    num_phases: clock.num_phases(),
                });
            }
            for (parameter, value) in [("setup", s.setup), ("dq", s.dq), ("hold", s.hold)] {
                if !value.is_finite() || value < 0.0 {
                    return Err(CircuitError::InvalidLatchParameter {
                        latch: s.name.clone(),
                        parameter,
                        value,
                    });
                }
            }
            if s.kind == SyncKind::Latch && s.dq + 1e-12 < s.setup {
                return Err(CircuitError::DqBelowSetup {
                    latch: s.name.clone(),
                    dq: s.dq,
                    setup: s.setup,
                });
            }
            if s.name.is_empty() || s.name.chars().any(|c| c.is_whitespace() || c == '#') {
                return Err(CircuitError::InvalidName {
                    name: s.name.clone(),
                });
            }
            if !names.insert(s.name.clone()) {
                return Err(CircuitError::DuplicateName {
                    name: s.name.clone(),
                });
            }
        }
        for e in &edges {
            for l in [e.from, e.to] {
                if l.index() >= syncs.len() {
                    return Err(CircuitError::UnknownLatch { index: l.index() });
                }
            }
            let name = |l: LatchId| syncs[l.index()].name.clone();
            if !e.max_delay.is_finite() || e.max_delay < 0.0 {
                return Err(CircuitError::InvalidEdgeDelay {
                    from: name(e.from),
                    to: name(e.to),
                    reason: format!("max delay {} must be finite and non-negative", e.max_delay),
                });
            }
            if !e.min_delay.is_finite() || e.min_delay < 0.0 {
                return Err(CircuitError::InvalidEdgeDelay {
                    from: name(e.from),
                    to: name(e.to),
                    reason: format!("min delay {} must be finite and non-negative", e.min_delay),
                });
            }
            if e.min_delay > e.max_delay {
                return Err(CircuitError::InvalidEdgeDelay {
                    from: name(e.from),
                    to: name(e.to),
                    reason: format!(
                        "min delay {} exceeds max delay {}",
                        e.min_delay, e.max_delay
                    ),
                });
            }
        }
        Ok(Circuit::from_parts(clock, syncs, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    #[test]
    fn rejects_empty_circuit() {
        assert_eq!(
            CircuitBuilder::new(2).build().unwrap_err(),
            CircuitError::EmptyCircuit
        );
    }

    #[test]
    fn rejects_phase_out_of_range() {
        let mut b = CircuitBuilder::new(2);
        b.add_latch("A", p(3), 1.0, 1.0);
        assert!(matches!(
            b.build().unwrap_err(),
            CircuitError::PhaseOutOfRange { .. }
        ));
    }

    #[test]
    fn rejects_negative_setup() {
        let mut b = CircuitBuilder::new(1);
        b.add_latch("A", p(1), -1.0, 1.0);
        assert!(matches!(
            b.build().unwrap_err(),
            CircuitError::InvalidLatchParameter {
                parameter: "setup",
                ..
            }
        ));
    }

    #[test]
    fn rejects_dq_below_setup_for_latches_only() {
        let mut b = CircuitBuilder::new(1);
        b.add_latch("A", p(1), 5.0, 1.0);
        assert!(matches!(
            b.build().unwrap_err(),
            CircuitError::DqBelowSetup { .. }
        ));
        // flip-flops may have clock-to-Q below setup
        let mut b = CircuitBuilder::new(1);
        b.add_flip_flop("F", p(1), 5.0, 1.0);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_unroundtrippable_names() {
        for bad in ["", "has space", "tab\there", "hash#mark"] {
            let mut b = CircuitBuilder::new(1);
            b.add_latch(bad, p(1), 1.0, 1.0);
            assert!(
                matches!(b.build().unwrap_err(), CircuitError::InvalidName { .. }),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = CircuitBuilder::new(1);
        b.add_latch("A", p(1), 1.0, 1.0);
        b.add_latch("A", p(1), 1.0, 1.0);
        assert!(matches!(
            b.build().unwrap_err(),
            CircuitError::DuplicateName { .. }
        ));
    }

    #[test]
    fn rejects_dangling_edge() {
        let mut b = CircuitBuilder::new(1);
        let a = b.add_latch("A", p(1), 1.0, 1.0);
        b.connect(a, LatchId::new(7), 1.0);
        assert!(matches!(
            b.build().unwrap_err(),
            CircuitError::UnknownLatch { index: 7 }
        ));
    }

    #[test]
    fn rejects_inverted_min_max() {
        let mut b = CircuitBuilder::new(1);
        let a = b.add_latch("A", p(1), 1.0, 1.0);
        let c = b.add_latch("B", p(1), 1.0, 1.0);
        b.connect_min_max(a, c, 5.0, 2.0);
        assert!(matches!(
            b.build().unwrap_err(),
            CircuitError::InvalidEdgeDelay { .. }
        ));
    }

    #[test]
    fn rejects_nan_delay() {
        let mut b = CircuitBuilder::new(1);
        let a = b.add_latch("A", p(1), 1.0, 1.0);
        let c = b.add_latch("B", p(1), 1.0, 1.0);
        b.connect(a, c, f64::NAN);
        assert!(b.build().is_err());
    }

    #[test]
    fn builds_valid_circuit() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 1.0, 2.0);
        let c = b.add_flip_flop("B", p(2), 0.5, 0.5);
        b.connect_min_max(a, c, 1.0, 4.0);
        let circuit = b.build().unwrap();
        assert_eq!(circuit.num_syncs(), 2);
        assert_eq!(circuit.num_latches(), 1);
        assert_eq!(circuit.num_flip_flops(), 1);
        assert_eq!(circuit.num_edges(), 1);
    }
}
