//! Graphviz DOT export for circuit visualization.

use crate::circuit::Circuit;
use crate::sync::SyncKind;
use std::fmt::Write as _;

/// Renders the circuit as a Graphviz `digraph`: one node per synchronizer
/// (box = latch, doublebox-ish `Msquare` = flip-flop), labelled with name
/// and phase; one arrow per combinational edge labelled with its delay.
///
/// ```
/// use smo_circuit::{netlist, to_dot};
/// let c = netlist::parse("clock 1\nlatch A phase=1 setup=1 dq=2\n")?;
/// let dot = to_dot(&c);
/// assert!(dot.starts_with("digraph circuit {"));
/// assert!(dot.contains("A"));
/// # Ok::<(), smo_circuit::CircuitError>(())
/// ```
pub fn to_dot(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph circuit {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for (id, s) in circuit.syncs() {
        let shape = match s.kind {
            SyncKind::Latch => "box",
            SyncKind::FlipFlop => "Msquare",
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{}\" shape={shape}];",
            id.index(),
            escape(&s.name),
            s.phase
        );
    }
    for e in circuit.edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            e.from.index(),
            e.to.index(),
            e.max_delay
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::ids::PhaseId;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", PhaseId::from_number(1), 1.0, 1.0);
        let f = b.add_flip_flop("F", PhaseId::from_number(2), 1.0, 1.0);
        b.connect(a, f, 7.5);
        let c = b.build().unwrap();
        let dot = to_dot(&c);
        assert!(dot.contains("digraph circuit {"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=Msquare"));
        assert!(dot.contains("n0 -> n1 [label=\"7.5\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn names_are_escaped() {
        let mut b = CircuitBuilder::new(1);
        b.add_latch("we\"ird", PhaseId::from_number(1), 1.0, 1.0);
        let c = b.build().unwrap();
        assert!(to_dot(&c).contains("we\\\"ird"));
    }
}
