//! A small text netlist format (the paper's "simple parser").
//!
//! The format is line-oriented:
//!
//! ```text
//! # Example 1 of the paper (Δ41 = 80)
//! clock 2
//! latch L1 phase=1 setup=10 dq=10
//! latch L2 phase=2 setup=10 dq=10
//! ff    F1 phase=1 setup=0.2 dq=0.3 hold=0.1
//! path  L1 L2 delay=20
//! path  L2 L1 delay=60 min=5
//! mindelay L1 L2 3
//! ```
//!
//! * `clock k` — must appear once, before any element;
//! * `latch NAME phase=P setup=S dq=D [hold=H]` — a level-sensitive latch;
//! * `ff NAME phase=P setup=S dq=D [hold=H]` — an edge-triggered flip-flop;
//! * `path FROM TO delay=D [min=M]` — a combinational edge;
//! * `mindelay FROM TO δ` — declares the measured short-path delay for every
//!   `FROM → TO` path (equivalent to `min=δ` on those `path` lines; may
//!   appear anywhere after the `clock` line);
//! * `#` starts a comment; blank lines are ignored.
//!
//! A `path` without `min=` (and no covering `mindelay`) leaves the
//! short-path delay *unspecified*: hold/race analyses then assume the most
//! optimistic raceless value (the max delay) instead of `0`, so netlists
//! written before short-path data existed keep analysing cleanly.
//!
//! [`parse`] and [`write`] round-trip: `parse(&write(c)) == c` for every
//! valid circuit.

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gates::{GateNetlistBuilder, NodeId};
use crate::ids::{LatchId, PhaseId};
use crate::sync::{SyncKind, Synchronizer};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Input-size limits enforced before a netlist is parsed.
///
/// Netlist text reaching [`parse`] is untrusted by definition once the
/// daemon (`smo serve`) exists, so both parsers pre-scan their input
/// against these caps and reject oversized or pathologically shaped text
/// with a structured [`CircuitError::InputLimit`] — bounded memory and
/// time on arbitrary bytes, never a panic or an allocation storm.
///
/// The `Default` caps are generous for real designs (a 4 MiB netlist is
/// tens of thousands of latches) and tight enough that a hostile client
/// cannot make the parser itself the attack surface. Trusted bulk callers
/// can raise individual fields or use [`ParseLimits::UNLIMITED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Total input size in bytes.
    pub max_bytes: usize,
    /// Number of lines (blank and comment lines count — they must still be
    /// scanned).
    pub max_lines: usize,
    /// Length of any single line in bytes.
    pub max_line_bytes: usize,
    /// Whitespace-separated tokens on any single line.
    pub max_tokens_per_line: usize,
    /// Total element lines (`latch`/`ff`/`path`/`mindelay`/`gate`/`wire`).
    pub max_elements: usize,
}

impl ParseLimits {
    /// No limits — the pre-scan is skipped entirely.
    pub const UNLIMITED: ParseLimits = ParseLimits {
        max_bytes: usize::MAX,
        max_lines: usize::MAX,
        max_line_bytes: usize::MAX,
        max_tokens_per_line: usize::MAX,
        max_elements: usize::MAX,
    };
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_bytes: 4 << 20,
            max_lines: 200_000,
            max_line_bytes: 4_096,
            max_tokens_per_line: 64,
            max_elements: 100_000,
        }
    }
}

/// Pre-scan shared by both parsers: one pass over the raw text, rejecting
/// anything outside `limits` before any per-line work allocates.
fn check_limits(src: &str, limits: &ParseLimits) -> Result<(), CircuitError> {
    if *limits == ParseLimits::UNLIMITED {
        return Ok(());
    }
    if src.len() > limits.max_bytes {
        return Err(CircuitError::InputLimit {
            what: "input bytes",
            limit: limits.max_bytes,
            actual: src.len(),
        });
    }
    let mut elements = 0usize;
    for (lineno0, raw) in src.lines().enumerate() {
        if lineno0 >= limits.max_lines {
            return Err(CircuitError::InputLimit {
                what: "lines",
                limit: limits.max_lines,
                actual: lineno0 + 1,
            });
        }
        if raw.len() > limits.max_line_bytes {
            return Err(CircuitError::InputLimit {
                what: "line bytes",
                limit: limits.max_line_bytes,
                actual: raw.len(),
            });
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens = line.split_whitespace().count();
        if tokens > limits.max_tokens_per_line {
            return Err(CircuitError::InputLimit {
                what: "tokens per line",
                limit: limits.max_tokens_per_line,
                actual: tokens,
            });
        }
        if !line.starts_with("clock") {
            elements += 1;
            if elements > limits.max_elements {
                return Err(CircuitError::InputLimit {
                    what: "element lines",
                    limit: limits.max_elements,
                    actual: elements,
                });
            }
        }
    }
    Ok(())
}

/// Parses a netlist into a validated [`Circuit`], enforcing the `Default`
/// [`ParseLimits`].
///
/// # Errors
///
/// Returns [`CircuitError::ParseNetlist`] with a one-based line number for
/// syntax problems, [`CircuitError::InputLimit`] for oversized input, and
/// the usual structural errors from [`CircuitBuilder::build`] for semantic
/// ones.
///
/// # Examples
///
/// ```
/// let src = "clock 1\nlatch A phase=1 setup=1 dq=2\n";
/// let c = smo_circuit::netlist::parse(src)?;
/// assert_eq!(c.num_latches(), 1);
/// # Ok::<(), smo_circuit::CircuitError>(())
/// ```
pub fn parse(src: &str) -> Result<Circuit, CircuitError> {
    parse_with_limits(src, &ParseLimits::default())
}

/// [`parse`] with explicit [`ParseLimits`].
///
/// # Errors
///
/// See [`parse`].
pub fn parse_with_limits(src: &str, limits: &ParseLimits) -> Result<Circuit, CircuitError> {
    check_limits(src, limits)?;
    let mut builder: Option<CircuitBuilder> = None;
    let mut ids: HashMap<String, LatchId> = HashMap::new();
    // `mindelay` statements are order-independent (they may precede the
    // `path` lines they annotate), so they are resolved after the scan.
    let mut mindelays: Vec<(usize, String, String, f64)> = Vec::new();

    for (lineno0, raw) in src.lines().enumerate() {
        let lineno = lineno0 + 1;
        let err = |message: String| CircuitError::ParseNetlist {
            line: lineno,
            message,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a first token");
        match keyword {
            "clock" => {
                if builder.is_some() {
                    return Err(err("duplicate `clock` line".into()));
                }
                let k: usize = tokens
                    .next()
                    .ok_or_else(|| err("`clock` needs a phase count".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad phase count: {e}")))?;
                if k == 0 {
                    return Err(err("clock must have at least one phase".into()));
                }
                if let Some(extra) = tokens.next() {
                    return Err(err(format!("unexpected token `{extra}` after `clock {k}`")));
                }
                builder = Some(CircuitBuilder::new(k));
            }
            "latch" | "ff" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("`clock` line must come first".into()))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(format!("`{keyword}` needs a name")))?
                    .to_string();
                let kv = parse_kv(tokens, lineno)?;
                let phase = *kv
                    .get("phase")
                    .ok_or_else(|| err("missing phase=".into()))?;
                let setup = *kv
                    .get("setup")
                    .ok_or_else(|| err("missing setup=".into()))?;
                let dq = *kv.get("dq").ok_or_else(|| err("missing dq=".into()))?;
                let hold = kv.get("hold").copied().unwrap_or(0.0);
                for key in kv.keys() {
                    if !matches!(key.as_str(), "phase" | "setup" | "dq" | "hold") {
                        return Err(err(format!("unknown attribute `{key}`")));
                    }
                }
                if phase.fract() != 0.0 || phase < 1.0 {
                    return Err(err(format!(
                        "phase must be a positive integer, got {phase}"
                    )));
                }
                let phase = PhaseId::from_number(phase as usize);
                let sync = match keyword {
                    "latch" => Synchronizer::latch(&name, phase, setup, dq),
                    _ => Synchronizer::flip_flop(&name, phase, setup, dq),
                };
                let id = b.add_sync(sync.with_hold(hold));
                if ids.insert(name.clone(), id).is_some() {
                    return Err(err(format!("duplicate element name `{name}`")));
                }
            }
            "path" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("`clock` line must come first".into()))?;
                let from_name = tokens
                    .next()
                    .ok_or_else(|| err("`path` needs a source".into()))?;
                let to_name = tokens
                    .next()
                    .ok_or_else(|| err("`path` needs a destination".into()))?;
                let kv = parse_kv(tokens, lineno)?;
                let delay = *kv
                    .get("delay")
                    .ok_or_else(|| err("missing delay=".into()))?;
                let min = kv.get("min").copied();
                for key in kv.keys() {
                    if !matches!(key.as_str(), "delay" | "min") {
                        return Err(err(format!("unknown attribute `{key}`")));
                    }
                }
                let from = *ids
                    .get(from_name)
                    .ok_or_else(|| err(format!("unknown element `{from_name}`")))?;
                let to = *ids
                    .get(to_name)
                    .ok_or_else(|| err(format!("unknown element `{to_name}`")))?;
                match min {
                    Some(min) => b.connect_min_max(from, to, min, delay),
                    None => b.connect(from, to, delay),
                };
            }
            "mindelay" => {
                if builder.is_none() {
                    return Err(err("`clock` line must come first".into()));
                }
                let from = tokens
                    .next()
                    .ok_or_else(|| err("`mindelay` needs a source".into()))?;
                let to = tokens
                    .next()
                    .ok_or_else(|| err("`mindelay` needs a destination".into()))?;
                let value = tokens
                    .next()
                    .ok_or_else(|| err("`mindelay` needs a delay value".into()))?;
                let value: f64 = value
                    .parse()
                    .map_err(|e| err(format!("bad mindelay value `{value}`: {e}")))?;
                if let Some(extra) = tokens.next() {
                    return Err(err(format!(
                        "unexpected token `{extra}` after `mindelay {from} {to} {value}`"
                    )));
                }
                mindelays.push((lineno, from.to_string(), to.to_string(), value));
            }
            other => {
                return Err(err(format!(
                    "unknown keyword `{other}` (expected clock/latch/ff/path/mindelay)"
                )));
            }
        }
    }

    let mut builder = builder.ok_or(CircuitError::ParseNetlist {
        line: src.lines().count().max(1),
        message: "netlist contains no `clock` line".into(),
    })?;
    for (line, from_name, to_name, value) in mindelays {
        let err = |message: String| CircuitError::ParseNetlist { line, message };
        let from = *ids
            .get(&from_name)
            .ok_or_else(|| err(format!("unknown element `{from_name}`")))?;
        let to = *ids
            .get(&to_name)
            .ok_or_else(|| err(format!("unknown element `{to_name}`")))?;
        if builder.set_min_delay(from, to, value) == 0 {
            return Err(err(format!(
                "`mindelay {from_name} {to_name}` matches no `path {from_name} {to_name}` line"
            )));
        }
    }
    builder.build()
}

fn parse_kv<'a>(
    tokens: impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<HashMap<String, f64>, CircuitError> {
    let mut kv = HashMap::new();
    for t in tokens {
        let (key, value) = t.split_once('=').ok_or(CircuitError::ParseNetlist {
            line: lineno,
            message: format!("expected key=value, got `{t}`"),
        })?;
        let value: f64 = value.parse().map_err(|e| CircuitError::ParseNetlist {
            line: lineno,
            message: format!("bad value for `{key}`: {e}"),
        })?;
        if kv.insert(key.to_string(), value).is_some() {
            return Err(CircuitError::ParseNetlist {
                line: lineno,
                message: format!("duplicate attribute `{key}`"),
            });
        }
    }
    Ok(kv)
}

/// Parses a *gate-level* netlist and extracts the latch-graph circuit.
///
/// In addition to the element lines of [`parse`], two keywords describe
/// gate-level structure:
///
/// ```text
/// clock 2
/// latch A phase=1 setup=1 dq=2
/// latch B phase=2 setup=1 dq=2
/// gate  and1 min=1 max=3
/// wire  A and1
/// wire  and1 B
/// ```
///
/// * `gate NAME min=δ max=Δ` — a combinational gate;
/// * `wire FROM TO` — a zero-delay connection between any two elements.
///
/// The latch-to-latch delays are computed by longest/shortest path over the
/// gate DAG (see [`gates`](crate::gates)).
///
/// # Errors
///
/// [`CircuitError::ParseNetlist`] for syntax problems,
/// [`CircuitError::CombinationalCycle`] and the usual structural errors
/// from extraction.
///
/// # Examples
///
/// ```
/// let src = "clock 1\nlatch A phase=1 setup=1 dq=2\nlatch B phase=1 setup=1 dq=2\n\
///            gate g min=1 max=3\nwire A g\nwire g B\n";
/// let c = smo_circuit::netlist::parse_gates(src)?;
/// assert_eq!(c.num_edges(), 1);
/// assert_eq!(c.edges()[0].max_delay, 3.0);
/// # Ok::<(), smo_circuit::CircuitError>(())
/// ```
pub fn parse_gates(src: &str) -> Result<Circuit, CircuitError> {
    parse_gates_with_limits(src, &ParseLimits::default())
}

/// [`parse_gates`] with explicit [`ParseLimits`].
///
/// # Errors
///
/// See [`parse_gates`].
pub fn parse_gates_with_limits(src: &str, limits: &ParseLimits) -> Result<Circuit, CircuitError> {
    check_limits(src, limits)?;
    let mut builder: Option<GateNetlistBuilder> = None;
    let mut ids: HashMap<String, NodeId> = HashMap::new();

    for (lineno0, raw) in src.lines().enumerate() {
        let lineno = lineno0 + 1;
        let err = |message: String| CircuitError::ParseNetlist {
            line: lineno,
            message,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a first token");
        match keyword {
            "clock" => {
                if builder.is_some() {
                    return Err(err("duplicate `clock` line".into()));
                }
                let k: usize = tokens
                    .next()
                    .ok_or_else(|| err("`clock` needs a phase count".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad phase count: {e}")))?;
                if k == 0 {
                    return Err(err("clock must have at least one phase".into()));
                }
                if let Some(extra) = tokens.next() {
                    return Err(err(format!("unexpected token `{extra}` after `clock {k}`")));
                }
                builder = Some(GateNetlistBuilder::new(k));
            }
            "latch" | "ff" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("`clock` line must come first".into()))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(format!("`{keyword}` needs a name")))?
                    .to_string();
                let kv = parse_kv(tokens, lineno)?;
                let phase = *kv
                    .get("phase")
                    .ok_or_else(|| err("missing phase=".into()))?;
                let setup = *kv
                    .get("setup")
                    .ok_or_else(|| err("missing setup=".into()))?;
                let dq = *kv.get("dq").ok_or_else(|| err("missing dq=".into()))?;
                let hold = kv.get("hold").copied().unwrap_or(0.0);
                for key in kv.keys() {
                    if !matches!(key.as_str(), "phase" | "setup" | "dq" | "hold") {
                        return Err(err(format!("unknown attribute `{key}`")));
                    }
                }
                if phase.fract() != 0.0 || phase < 1.0 {
                    return Err(err(format!(
                        "phase must be a positive integer, got {phase}"
                    )));
                }
                let phase = PhaseId::from_number(phase as usize);
                let sync = match keyword {
                    "latch" => Synchronizer::latch(&name, phase, setup, dq),
                    _ => Synchronizer::flip_flop(&name, phase, setup, dq),
                };
                let id = b.add_sync(sync.with_hold(hold));
                if ids.insert(name.clone(), id).is_some() {
                    return Err(err(format!("duplicate element name `{name}`")));
                }
            }
            "gate" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("`clock` line must come first".into()))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err("`gate` needs a name".into()))?
                    .to_string();
                let kv = parse_kv(tokens, lineno)?;
                let max = *kv.get("max").ok_or_else(|| err("missing max=".into()))?;
                let min = kv.get("min").copied().unwrap_or(0.0);
                for key in kv.keys() {
                    if !matches!(key.as_str(), "min" | "max") {
                        return Err(err(format!("unknown attribute `{key}`")));
                    }
                }
                let id = b.add_gate(&name, min, max);
                if ids.insert(name.clone(), id).is_some() {
                    return Err(err(format!("duplicate element name `{name}`")));
                }
            }
            "wire" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("`clock` line must come first".into()))?;
                let from = tokens
                    .next()
                    .ok_or_else(|| err("`wire` needs a source".into()))?;
                let to = tokens
                    .next()
                    .ok_or_else(|| err("`wire` needs a destination".into()))?;
                let f = *ids
                    .get(from)
                    .ok_or_else(|| err(format!("unknown element `{from}`")))?;
                let t = *ids
                    .get(to)
                    .ok_or_else(|| err(format!("unknown element `{to}`")))?;
                if let Some(extra) = tokens.next() {
                    return Err(err(format!(
                        "unexpected token `{extra}` after `wire {from} {to}`"
                    )));
                }
                b.wire(f, t)?;
            }
            other => {
                return Err(err(format!(
                    "unknown keyword `{other}` (expected clock/latch/ff/gate/wire)"
                )));
            }
        }
    }
    builder
        .ok_or(CircuitError::ParseNetlist {
            line: src.lines().count().max(1),
            message: "netlist contains no `clock` line".into(),
        })?
        .extract()
}

/// Serializes a circuit into the netlist text format.
///
/// The output parses back into an identical circuit.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "clock {}", circuit.num_phases());
    for (_, s) in circuit.syncs() {
        let keyword = match s.kind {
            SyncKind::Latch => "latch",
            SyncKind::FlipFlop => "ff",
        };
        let _ = write!(
            out,
            "{keyword} {} phase={} setup={} dq={}",
            s.name,
            s.phase.number(),
            s.setup,
            s.dq
        );
        if s.hold != 0.0 {
            let _ = write!(out, " hold={}", s.hold);
        }
        let _ = writeln!(out);
    }
    for e in circuit.edges() {
        let _ = write!(
            out,
            "path {} {} delay={}",
            circuit.sync(e.from).name,
            circuit.sync(e.to).name,
            e.max_delay
        );
        if e.min_specified {
            let _ = write!(out, " min={}", e.min_delay);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    const EXAMPLE: &str = "\
# Example 1 of the paper
clock 2
latch L1 phase=1 setup=10 dq=10
latch L2 phase=2 setup=10 dq=10
latch L3 phase=1 setup=10 dq=10
latch L4 phase=2 setup=10 dq=10
path L1 L2 delay=20
path L2 L3 delay=20
path L3 L4 delay=60
path L4 L1 delay=80
";

    #[test]
    fn parses_example_circuit() {
        let c = parse(EXAMPLE).unwrap();
        assert_eq!(c.num_phases(), 2);
        assert_eq!(c.num_latches(), 4);
        assert_eq!(c.num_edges(), 4);
        let l4 = c.find("L4").unwrap();
        assert_eq!(c.sync(l4).phase.number(), 2);
    }

    #[test]
    fn round_trips() {
        let c = parse(EXAMPLE).unwrap();
        let text = write(&c);
        let c2 = parse(&text).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn round_trips_holds_and_min_delays() {
        let mut b = CircuitBuilder::new(2);
        let a =
            b.add_sync(Synchronizer::latch("A", PhaseId::from_number(1), 1.0, 2.0).with_hold(0.5));
        let f = b.add_flip_flop("F", PhaseId::from_number(2), 0.25, 0.5);
        b.connect_min_max(a, f, 1.5, 4.0);
        let c = b.build().unwrap();
        let c2 = parse(&write(&c)).unwrap();
        assert_eq!(c, c2);
        assert_eq!(c2.sync(c2.find("A").unwrap()).hold, 0.5);
        assert_eq!(c2.edges()[0].min_delay, 1.5);
    }

    #[test]
    fn unspecified_min_stays_unspecified_across_round_trip() {
        let c = parse(EXAMPLE).unwrap();
        assert!(c.edges().iter().all(|e| !e.min_specified));
        // short_delay falls back to the max delay, so early == late arrivals.
        assert_eq!(c.edges()[0].short_delay(), c.edges()[0].max_delay);
        let c2 = parse(&write(&c)).unwrap();
        assert!(c2.edges().iter().all(|e| !e.min_specified));
        assert_eq!(c, c2);
    }

    #[test]
    fn mindelay_statement_marks_matching_paths() {
        let src = "clock 2\nlatch A phase=1 setup=1 dq=2\nlatch B phase=2 setup=1 dq=2\n\
                   mindelay A B 3\npath A B delay=20\npath A B delay=10\npath B A delay=5\n";
        let c = parse(src).unwrap();
        let a = c.find("A").unwrap();
        let ab: Vec<_> = c.edges().iter().filter(|e| e.from == a).collect();
        assert_eq!(ab.len(), 2);
        for e in ab {
            assert!(e.min_specified);
            assert_eq!(e.min_delay, 3.0);
            assert_eq!(e.short_delay(), 3.0);
        }
        let ba = c.edges().iter().find(|e| e.to == a).unwrap();
        assert!(!ba.min_specified);
        // min= survives a write→parse round trip as an explicit min.
        let c2 = parse(&write(&c)).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn mindelay_without_matching_path_rejected() {
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2\nlatch B phase=1 setup=1 dq=2\n\
                   mindelay A B 3\n";
        match parse(src).unwrap_err() {
            CircuitError::ParseNetlist { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("no `path A B`"), "message: {message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn mindelay_above_max_rejected_by_validation() {
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2\nlatch B phase=1 setup=1 dq=2\n\
                   path A B delay=4\nmindelay A B 9\n";
        assert!(matches!(
            parse(src).unwrap_err(),
            CircuitError::InvalidEdgeDelay { .. }
        ));
    }

    #[test]
    fn mindelay_rejects_trailing_tokens() {
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2\npath A A delay=4\nmindelay A A 1 junk\n";
        match parse(src).unwrap_err() {
            CircuitError::ParseNetlist { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("junk"), "message: {message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reports_line_numbers() {
        let src = "clock 2\nlatch A phase=1 setup=1 dq=2\nbogus line here\n";
        match parse(src).unwrap_err() {
            CircuitError::ParseNetlist { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("bogus"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_clock() {
        assert!(matches!(
            parse("latch A phase=1 setup=1 dq=2\n").unwrap_err(),
            CircuitError::ParseNetlist { line: 1, .. }
        ));
        assert!(matches!(
            parse("# nothing\n").unwrap_err(),
            CircuitError::ParseNetlist { .. }
        ));
    }

    #[test]
    fn rejects_unknown_attribute_and_duplicates() {
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2 zap=3\n";
        assert!(parse(src).is_err());
        let src = "clock 1\nlatch A phase=1 setup=1 setup=2 dq=2\n";
        assert!(parse(src).is_err());
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2\nlatch A phase=1 setup=1 dq=2\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_unknown_path_endpoint() {
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2\npath A B delay=3\n";
        match parse(src).unwrap_err() {
            CircuitError::ParseNetlist { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains('B'));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_ignored_anywhere() {
        let src = "\n# lead\nclock 1 # trailing\n\nlatch A phase=1 setup=1 dq=2\n";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn fractional_phase_rejected() {
        let src = "clock 2\nlatch A phase=1.5 setup=1 dq=2\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_trailing_tokens_after_clock() {
        for parser in [parse, parse_gates] {
            let src = "clock 2 extra\nlatch A phase=1 setup=1 dq=2\n";
            match parser(src).unwrap_err() {
                CircuitError::ParseNetlist { line, message } => {
                    assert_eq!(line, 1);
                    assert!(message.contains("extra"), "message: {message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_trailing_tokens_after_wire() {
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2\ngate g max=1\nwire A g oops\n";
        match parse_gates(src).unwrap_err() {
            CircuitError::ParseNetlist { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("oops"), "message: {message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    const GATE_EXAMPLE: &str = "\
clock 2
latch A phase=1 setup=1 dq=2
latch B phase=2 setup=1 dq=2
gate g1 min=1 max=5
gate g2 min=2 max=2
wire A g1
wire A g2
wire g1 B
wire g2 B
wire B A      # feedback wire, zero delay
";

    #[test]
    fn gate_netlist_extracts_worst_case_paths() {
        let c = parse_gates(GATE_EXAMPLE).unwrap();
        assert_eq!(c.num_syncs(), 2);
        assert_eq!(c.num_edges(), 2);
        let ab = c
            .edges()
            .iter()
            .find(|e| e.from != e.to && e.max_delay > 0.0)
            .unwrap();
        assert_eq!(ab.max_delay, 5.0);
        assert_eq!(ab.min_delay, 1.0);
    }

    #[test]
    fn gate_netlist_reports_cycle() {
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2\ngate g1 max=1\ngate g2 max=1\n\
                   wire A g1\nwire g1 g2\nwire g2 g1\n";
        assert!(matches!(
            parse_gates(src).unwrap_err(),
            CircuitError::CombinationalCycle { .. }
        ));
    }

    #[test]
    fn input_limits_reject_oversized_netlists() {
        // Total bytes.
        let tight = ParseLimits {
            max_bytes: 16,
            ..Default::default()
        };
        let err = parse_with_limits(EXAMPLE, &tight).unwrap_err();
        assert!(
            matches!(
                err,
                CircuitError::InputLimit {
                    what: "input bytes",
                    ..
                }
            ),
            "{err:?}"
        );
        // Line length.
        let long_line = format!("clock 1\n# {}\n", "x".repeat(8_192));
        let err = parse(&long_line).unwrap_err();
        assert!(
            matches!(
                err,
                CircuitError::InputLimit {
                    what: "line bytes",
                    ..
                }
            ),
            "{err:?}"
        );
        // Tokens per line.
        let wide = format!("clock 1\nlatch A {}\n", "k=1 ".repeat(100));
        let err = parse(&wide).unwrap_err();
        assert!(
            matches!(
                err,
                CircuitError::InputLimit {
                    what: "tokens per line",
                    ..
                }
            ),
            "{err:?}"
        );
        // Element count, for both parsers.
        let few = ParseLimits {
            max_elements: 2,
            ..Default::default()
        };
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2\nlatch B phase=1 setup=1 dq=2\n\
                   path A B delay=1\n";
        for parser in [parse_with_limits, parse_gates_with_limits] {
            let err = parser(src, &few).unwrap_err();
            assert!(
                matches!(
                    err,
                    CircuitError::InputLimit {
                        what: "element lines",
                        limit: 2,
                        actual: 3,
                    }
                ),
                "{err:?}"
            );
        }
        // UNLIMITED really is.
        assert!(parse_with_limits(src, &ParseLimits::UNLIMITED).is_ok());
        // The defaults admit every shipped-size netlist.
        assert!(parse(src).is_ok());
    }

    #[test]
    fn gate_netlist_rejects_unknown_wire_endpoint() {
        let src = "clock 1\nlatch A phase=1 setup=1 dq=2\nwire A nope\n";
        match parse_gates(src).unwrap_err() {
            CircuitError::ParseNetlist { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("nope"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
