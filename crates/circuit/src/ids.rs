//! Typed identifiers for clock phases and synchronizers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a clock phase `φ_i`.
///
/// Internally zero-based; the paper's one-based numbering is available
/// through [`PhaseId::number`] and [`PhaseId::from_number`], and is what
/// [`fmt::Display`] prints (`φ1`, `φ2`, …).
///
/// ```
/// use smo_circuit::PhaseId;
/// let p = PhaseId::from_number(3);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "φ3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhaseId(usize);

impl PhaseId {
    /// Creates a phase id from a zero-based index.
    pub fn new(index: usize) -> Self {
        PhaseId(index)
    }

    /// Creates a phase id from the paper's one-based phase number.
    ///
    /// # Panics
    ///
    /// Panics if `number` is zero.
    pub fn from_number(number: usize) -> Self {
        assert!(number >= 1, "phase numbers are one-based");
        PhaseId(number - 1)
    }

    /// Zero-based index.
    pub fn index(self) -> usize {
        self.0
    }

    /// One-based phase number as used in the paper (`φ1` has number 1).
    pub fn number(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "φ{}", self.number())
    }
}

/// Identifies a synchronizer (latch or flip-flop) within a
/// [`Circuit`](crate::Circuit).
///
/// The paper calls all synchronizers "latches" and numbers them 1…l; we keep
/// the name and the one-based display convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LatchId(usize);

impl LatchId {
    /// Creates a latch id from a zero-based index.
    pub fn new(index: usize) -> Self {
        LatchId(index)
    }

    /// Zero-based index.
    pub fn index(self) -> usize {
        self.0
    }

    /// One-based number as used in the paper (latch 1 has number 1).
    pub fn number(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for LatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.number())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_numbering_round_trips() {
        for n in 1..=4 {
            let p = PhaseId::from_number(n);
            assert_eq!(p.number(), n);
            assert_eq!(PhaseId::new(p.index()), p);
        }
    }

    #[test]
    #[should_panic(expected = "one-based")]
    fn phase_number_zero_panics() {
        let _ = PhaseId::from_number(0);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(PhaseId::new(0).to_string(), "φ1");
        assert_eq!(LatchId::new(3).to_string(), "L4");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PhaseId::new(0) < PhaseId::new(1));
        assert!(LatchId::new(2) > LatchId::new(1));
    }
}
