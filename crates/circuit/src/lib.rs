//! # smo-circuit — circuit & clock model for latch-controlled circuits
//!
//! This crate implements the structural side of the SMO timing model
//! (Sakallah–Mudge–Olukotun, §III): synchronous digital circuits decomposed
//! into stages of feedback-free combinational logic whose inputs and outputs
//! are clocked by level-sensitive latches (or edge-triggered flip-flops)
//! under an arbitrary k-phase clock.
//!
//! The main types are:
//!
//! * [`ClockSpec`] — a k-phase clock *specification* (the number of phases
//!   plus the paper's `C` ordering matrix); concrete start times and widths
//!   live in a [`ClockSchedule`];
//! * [`Synchronizer`] with [`SyncKind`] — a D-latch or flip-flop with its
//!   controlling phase `p_i`, setup time `Δ_DC`, propagation delay `Δ_DQ`,
//!   and (extension) hold time;
//! * [`Circuit`] / [`CircuitBuilder`] — synchronizers plus the combinational
//!   delay edges `Δ_ji` between them, with structural validation and the
//!   paper's `K` matrix of input/output phase pairs;
//! * [`netlist`] — a small text format so circuits can live in files
//!   (the paper's "simple parser").
//!
//! Timing quantities are plain `f64` in a consistent but unspecified unit
//! (the paper uses nanoseconds).
//!
//! ## Example
//!
//! ```
//! use smo_circuit::{CircuitBuilder, PhaseId};
//!
//! # fn main() -> Result<(), smo_circuit::CircuitError> {
//! // A two-latch loop on a two-phase clock.
//! let mut b = CircuitBuilder::new(2);
//! let a = b.add_latch("A", PhaseId::from_number(1), 10.0, 10.0);
//! let c = b.add_latch("C", PhaseId::from_number(2), 10.0, 10.0);
//! b.connect(a, c, 20.0);
//! b.connect(c, a, 60.0);
//! let circuit = b.build()?;
//! assert_eq!(circuit.num_latches(), 2);
//! assert!(circuit.k_matrix().get(0, 1)); // φ1/φ2 is an I/O phase pair
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod circuit;
mod clock;
mod dot;
mod error;
pub mod gates;
mod graph;
mod ids;
mod matrix;
pub mod netlist;
mod sync;
mod transform;

pub use builder::CircuitBuilder;
pub use circuit::Circuit;
pub use clock::{ClockSchedule, ClockSpec};
pub use dot::to_dot;
pub use error::CircuitError;
pub use graph::{Cycle, Edge, EdgeId};
pub use ids::{LatchId, PhaseId};
pub use matrix::BoolMatrix;
pub use sync::{SyncKind, Synchronizer};
pub use transform::{lump_equivalent_latches, merge_parallel_edges};
