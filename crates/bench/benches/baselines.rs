//! Cost of MLP versus the heuristic baselines on the paper's circuits —
//! the exact method is not meaningfully slower than the approximations it
//! replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smo_core::{baseline, min_cycle_time};
use smo_gen::paper;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    for (name, circuit) in [
        ("example2", paper::example2()),
        ("gaas_mips", paper::gaas_mips()),
    ] {
        group.bench_with_input(BenchmarkId::new("mlp", name), &circuit, |b, ci| {
            b.iter(|| min_cycle_time(ci).expect("solves").cycle_time())
        });
        group.bench_with_input(
            BenchmarkId::new("edge_triggered", name),
            &circuit,
            |b, ci| b.iter(|| baseline::edge_triggered(ci).expect("runs").cycle_time()),
        );
        group.bench_with_input(
            BenchmarkId::new("single_borrow", name),
            &circuit,
            |b, ci| b.iter(|| baseline::single_borrow(ci).expect("runs").cycle_time()),
        );
        group.bench_with_input(BenchmarkId::new("symmetric", name), &circuit, |b, ci| {
            b.iter(|| baseline::symmetric_clock(ci).expect("runs").cycle_time())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
