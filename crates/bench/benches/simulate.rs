//! Behavioural simulator throughput (waves × synchronizers per second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smo_core::min_cycle_time;
use smo_gen::random::{random_circuit, GenConfig};
use smo_sim::{simulate, SimOptions};

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    for l in [16usize, 64, 256] {
        let cfg = GenConfig {
            latches: l,
            edges: l * 3 / 2,
            phases: 3,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, 17);
        let sched = min_cycle_time(&circuit).expect("solves").schedule().clone();
        let opts = SimOptions {
            max_waves: 32,
            stop_on_convergence: false, // fixed work per iteration
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("latches", l),
            &(circuit, sched, opts),
            |b, (ci, s, o)| b.iter(|| simulate(ci, s, o).waves()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
