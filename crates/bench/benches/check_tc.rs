//! Schedule verification throughput, and the §IV ablation: Jacobi versus
//! Gauss-Seidel versus event-driven departure updates (the paper proposes
//! the latter two as enhancements; this bench quantifies them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smo_core::{min_cycle_time, verify, PropagationSystem};
use smo_gen::random::{random_circuit, GenConfig};

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_tc/verify");
    for l in [16usize, 64, 256] {
        let cfg = GenConfig {
            latches: l,
            edges: l * 3 / 2,
            phases: 2,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, 3);
        let sched = min_cycle_time(&circuit).expect("solves").schedule().clone();
        group.bench_with_input(
            BenchmarkId::new("latches", l),
            &(circuit, sched),
            |b, (ci, s)| b.iter(|| verify(ci, s).is_feasible()),
        );
    }
    group.finish();
}

fn bench_update_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_tc/update_mode");
    let cfg = GenConfig {
        latches: 128,
        edges: 192,
        phases: 2,
        ..Default::default()
    };
    let circuit = random_circuit(&cfg, 5);
    let sol = min_cycle_time(&circuit).expect("solves");
    // a 5%-relaxed schedule leaves every loop gain strictly negative, so a
    // start high above the fixpoint forces all three solvers to do real
    // sliding work
    let relaxed = sol.schedule().scaled(1.05);
    let system = PropagationSystem::new(&circuit, &relaxed);
    let start: Vec<f64> = sol.departures().iter().map(|d| d + 100.0).collect();
    group.bench_function("jacobi", |b| {
        b.iter(|| system.jacobi(&start, 100_000).iterations)
    });
    group.bench_function("gauss_seidel", |b| {
        b.iter(|| system.gauss_seidel(&start, 100_000).iterations)
    });
    group.bench_function("event_driven", |b| {
        b.iter(|| system.event_driven(&start, 10_000_000).iterations)
    });
    group.finish();
}

criterion_group!(benches, bench_verify, bench_update_modes);
criterion_main!(benches);
