//! Parametric simplex vs dense re-solve sweep: the §VI payoff quantified.
//!
//! To chart `T_c(Δ41)` over a range, the naive approach re-solves the LP at
//! every sample; the parametric simplex does one solve plus a handful of
//! dual pivots and returns the *exact* piecewise-linear curve.

use criterion::{criterion_group, criterion_main, Criterion};
use smo_core::{cycle_time_curve, min_cycle_time, TimingModel};
use smo_gen::paper::example1;

fn bench_parametric_vs_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parametric");
    let circuit = example1(0.0);
    let model = TimingModel::build(&circuit).expect("model");
    group.bench_function("exact_curve", |b| {
        b.iter(|| {
            cycle_time_curve(&circuit, &model, smo_circuit::EdgeId::new(3), 140.0)
                .expect("curve")
                .segments
                .len()
        })
    });
    group.bench_function("resolve_sweep_15pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut d41 = 0.0;
            while d41 <= 140.0 {
                acc += min_cycle_time(&example1(d41)).expect("solves").cycle_time();
                d41 += 10.0;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parametric_vs_sweep);
criterion_main!(benches);
