//! End-to-end Algorithm MLP (LP + departure slide) versus circuit size,
//! plus the paper's three example circuits (§V: "execution time … was
//! hardly noticeable, on the order of a few seconds" for 91 constraints on
//! a DECStation 3100).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smo_core::min_cycle_time;
use smo_gen::paper;
use smo_gen::random::{random_circuit, GenConfig};

fn bench_examples(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_cycle/paper");
    for (name, circuit) in [
        ("example1", paper::example1(80.0)),
        ("example2", paper::example2()),
        ("gaas_mips", paper::gaas_mips()),
        ("appendix", paper::appendix_fig1(10.0, 1.0, 2.0)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &circuit, |b, ci| {
            b.iter(|| min_cycle_time(ci).expect("solves").cycle_time())
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_cycle/random");
    group.sample_size(10);
    for l in [16usize, 64, 128] {
        let cfg = GenConfig {
            latches: l,
            edges: l * 3 / 2,
            phases: 2,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, 11);
        group.bench_with_input(BenchmarkId::new("latches", l), &circuit, |b, ci| {
            b.iter(|| min_cycle_time(ci).expect("solves").cycle_time())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_examples, bench_scaling);
criterion_main!(benches);
