//! Constraint-generation throughput: building the paper's LP "almost by
//! inspection" (§III) should be cheap and linear in circuit size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smo_core::TimingModel;
use smo_gen::random::{random_circuit, GenConfig};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraint_gen");
    for l in [16usize, 128, 1024] {
        let cfg = GenConfig {
            latches: l,
            edges: l * 2,
            phases: 4,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, 21);
        group.bench_with_input(BenchmarkId::new("latches", l), &circuit, |b, ci| {
            b.iter(|| TimingModel::build(ci).expect("model").num_constraints())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
