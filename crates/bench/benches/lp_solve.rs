//! Simplex scaling on SMO-shaped LPs (§IV: cost of Algorithm MLP step 1).
//!
//! Solves the P2 model of random circuits of increasing size; the paper
//! argues the constraint count — and hence the simplex cost — grows only
//! linearly with the number of latches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smo_core::TimingModel;
use smo_gen::random::{random_circuit, GenConfig};
use smo_lp::SimplexVariant;

fn bench_lp_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solve");
    group.sample_size(20);
    for l in [8usize, 32, 128] {
        let cfg = GenConfig {
            latches: l,
            edges: l * 3 / 2,
            phases: 3,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, 7);
        let model = TimingModel::build(&circuit).expect("model");
        // DESIGN.md ablation: dense tableau vs sparse revised simplex on
        // the same 0/±1 timing matrices.
        group.bench_with_input(BenchmarkId::new("dense", l), &model, |b, m| {
            b.iter(|| {
                m.solve_lp_with(SimplexVariant::Dense)
                    .expect("optimal")
                    .objective()
            })
        });
        group.bench_with_input(BenchmarkId::new("revised", l), &model, |b, m| {
            b.iter(|| {
                m.solve_lp_with(SimplexVariant::Revised)
                    .expect("optimal")
                    .objective()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp_solve);
criterion_main!(benches);
