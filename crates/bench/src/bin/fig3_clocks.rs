//! Fig. 3 (and Fig. 2): the clock model applied to common two-, three- and
//! four-phase clocking schemes, rendered as timing diagrams.
//!
//! For each `k ∈ {2, 3, 4}` we build an evenly spaced schedule with a small
//! inter-phase gap, check the clock constraints C1/C2/C4, and — for `k = 2`
//! — confirm the paper's remark that "the clock constraints ensure that the
//! two phases are nonoverlapping, as they should be".

use smo_circuit::{ClockSchedule, PhaseId};

fn main() {
    smo_bench::header("Fig. 3 — clocks with two, three, and four phases");
    for k in [2usize, 3, 4] {
        let sched = ClockSchedule::symmetric(k, 100.0, 5.0).expect("valid template");
        sched.validate().expect("C1/C2/C4 hold");
        println!("\n--- {k}-phase clock ---");
        print!("{}", smo_core::render_schedule(&sched));
        for i in 0..k {
            for j in (i + 1)..k {
                let (a, b) = (PhaseId::new(i), PhaseId::new(j));
                println!(
                    "{a} and {b}: {}",
                    if sched.overlaps(a, b) {
                        "overlap"
                    } else {
                        "nonoverlapping"
                    }
                );
            }
        }
    }
    println!(
        "\nall templates satisfy the clock constraints; consecutive phases are \
         nonoverlapping by construction"
    );
}
