//! Table I: transistor counts for the major blocks of the GaAs MIPS
//! datapath.
//!
//! Static metadata of the Example-3 model; reproduced verbatim and checked
//! to sum to the printed total of 30 148.

use smo_gen::paper::{GAAS_BLOCKS, GAAS_TOTAL_TRANSISTORS};

fn main() {
    smo_bench::header("Table I — transistor count for major blocks of the GaAs MIPS datapath");
    println!(
        "{}",
        smo_bench::row(&["Block Name", "No. of Transistors"], &[32, 20])
    );
    println!("{}", "-".repeat(56));
    let mut sum = 0u32;
    for b in GAAS_BLOCKS {
        println!(
            "{}",
            smo_bench::row(&[b.name, &format!("{}", b.transistors)], &[32, 20])
        );
        sum += b.transistors;
    }
    println!("{}", "-".repeat(56));
    println!(
        "{}",
        smo_bench::row(&["Total", &format!("{GAAS_TOTAL_TRANSISTORS}")], &[32, 20])
    );
    assert_eq!(sum, GAAS_TOTAL_TRANSISTORS, "rows must sum to the total");
    println!("\nrow sum equals the printed total ✓");
}
