//! Fig. 7: optimal cycle time `T_c` versus `Δ41` for Example 1 — MLP against
//! the heuristic baselines — plus the *exact* piecewise-linear curve from
//! parametric programming (the paper's §VI future-work direction).
//!
//! The paper's observations, all checked here:
//!
//! * three segments: `T_c` flat for `Δ41 ≤ 20`, slope ½ for
//!   `20 ≤ Δ41 ≤ 100` ("the added delay is shared between the two clock
//!   cycles"), slope 1 beyond 100;
//! * `T_c* = max(average loop delay, difference of the two cycle delays)`;
//! * the NRIP-like baseline coincides with the optimum only at the balanced
//!   point `Δ41 = 60` and is suboptimal elsewhere.

use smo_core::baseline;
use smo_core::{min_cycle_time, solve_model, TimingModel, UpdateMode};
use smo_gen::paper::{example1, EXAMPLE1_DELTA41_EDGE};
use smo_lp::parametric_rhs;

fn main() {
    smo_bench::header("Fig. 7 — Tc versus Δ41 for Example 1");

    println!(
        "{}",
        smo_bench::row(
            &[
                "Δ41",
                "MLP (opt)",
                "closed form",
                "edge-trig",
                "1-borrow",
                "symmetric"
            ],
            &[6, 10, 12, 10, 10, 10],
        )
    );
    let closed_form = |d41: f64| ((140.0 + d41) / 2.0).max(d41 + 20.0).max(80.0);
    let mut d41 = 0.0;
    while d41 <= 140.0 {
        let circuit = example1(d41);
        let opt = min_cycle_time(&circuit).expect("solves").cycle_time();
        let cf = closed_form(d41);
        assert!((opt - cf).abs() < 1e-6, "closed form mismatch at {d41}");
        let et = baseline::edge_triggered(&circuit).expect("et").cycle_time();
        let sb = baseline::single_borrow(&circuit).expect("sb").cycle_time();
        let sym = baseline::symmetric_clock(&circuit)
            .expect("sym")
            .cycle_time();
        println!(
            "{}",
            smo_bench::row(
                &[
                    &format!("{d41:.0}"),
                    &format!("{opt:.2}"),
                    &format!("{cf:.2}"),
                    &format!("{et:.2}"),
                    &format!("{sb:.2}"),
                    &format!("{sym:.2}"),
                ],
                &[6, 10, 12, 10, 10, 10],
            )
        );
        d41 += 10.0;
    }

    // NRIP-like optimal only at the balanced point:
    let bal = example1(60.0);
    let sym60 = baseline::symmetric_clock(&bal).expect("sym").cycle_time();
    let opt60 = min_cycle_time(&bal).expect("opt").cycle_time();
    assert!((sym60 - opt60).abs() < 1e-6);
    println!("\nNRIP-like = optimal at Δ41 = 60 (both {opt60:.1} ns) ✓");

    // Exact breakpoints from the parametric simplex: Δ41 enters only the RHS
    // of its propagation row, so Tc*(Δ41) comes out of one solve plus dual
    // pivots.
    smo_bench::header("Fig. 7 (exact) — parametric-RHS analysis of Δ41");
    let circuit = example1(0.0);
    let model = TimingModel::build(&circuit).expect("model");
    let row = model
        .edge_constraint(smo_circuit::EdgeId::new(EXAMPLE1_DELTA41_EDGE))
        .expect("Δ41 row exists");
    let curve = smo_bench::timed("parametric simplex", || {
        parametric_rhs(model.problem(), &[(row, 1.0)], 140.0).expect("parametric analysis")
    });
    for seg in &curve.segments {
        println!(
            "  Δ41 ∈ [{:6.2}, {:6.2}]: Tc = {:.2} + {:.2}·(Δ41 − {:.2})",
            seg.theta_lo, seg.theta_hi, seg.objective_lo, seg.slope, seg.theta_lo
        );
    }
    let bps = curve.breakpoints();
    println!("  breakpoints: {bps:?} (paper: 20 and 100)");
    assert_eq!(bps.len(), 2, "expected exactly two breakpoints");
    assert!((bps[0] - 20.0).abs() < 1e-6);
    assert!((bps[1] - 100.0).abs() < 1e-6);
    let slopes: Vec<f64> = curve.segments.iter().map(|s| s.slope).collect();
    println!("  slopes: {slopes:?} (paper: 0, ½, 1)");
    for (got, want) in slopes.iter().zip([0.0, 0.5, 1.0]) {
        assert!((got - want).abs() < 1e-6);
    }

    // Cross-check the parametric curve against fresh solves.
    for d41 in [5.0, 20.0, 33.0, 60.0, 100.0, 137.0] {
        let direct = min_cycle_time(&example1(d41)).expect("solves").cycle_time();
        let para = curve.objective_at(d41).expect("in range");
        assert!(
            (direct - para).abs() < 1e-6,
            "Δ41 = {d41}: parametric {para} vs direct {direct}"
        );
    }
    println!("  parametric curve matches direct solves at 6 probe points ✓");

    // Update-mode agreement along the sweep (the §IV ablation).
    let circuit = example1(90.0);
    let model = TimingModel::build(&circuit).expect("model");
    for mode in [
        UpdateMode::Jacobi,
        UpdateMode::GaussSeidel,
        UpdateMode::EventDriven,
    ] {
        let sol = solve_model(&circuit, &model, mode).expect("solves");
        println!(
            "  {mode:?}: Tc = {:.2}, {} update iterations",
            sol.cycle_time(),
            sol.update_iterations()
        );
    }
}
