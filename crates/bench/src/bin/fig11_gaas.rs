//! Figs. 10–11 + §V Example 3: optimal clock schedule for the GaAs MIPS
//! datapath model.
//!
//! The paper's observations, checked on our reconstructed model (DESIGN.md,
//! substitution 3):
//!
//! * 18 synchronizers (15 latches + 3 flip-flops), three-phase clock;
//! * the optimal cycle time (paper: 4.4 ns) is ~10 % above the 4-ns target;
//! * solver runtime is negligible (paper: "a few seconds" on a DECStation
//!   3100 with 91 constraints; our machine solves our 60-row model in well
//!   under a millisecond);
//! * φ3 (the register-file precharge) can be *completely overlapped* by φ1
//!   at no cycle-time cost, because `K13 = K31 = 0`.

use smo_circuit::PhaseId;
use smo_core::{
    min_cycle_time, render_schedule, solve_model, verify, ConstraintOptions, TimingModel,
    UpdateMode,
};
use smo_gen::paper::{gaas_mips, GAAS_PAPER_OPTIMAL_NS, GAAS_TARGET_CYCLE_NS};
use smo_lp::{LinExpr, Sense};

fn main() {
    smo_bench::header("Figs. 10–11 — GaAs MIPS datapath optimal clock schedule");
    let circuit = gaas_mips();
    println!(
        "model: {} synchronizers ({} latches, {} flip-flops), {} edges, {} phases",
        circuit.num_syncs(),
        circuit.num_latches(),
        circuit.num_flip_flops(),
        circuit.num_edges(),
        circuit.num_phases()
    );
    assert_eq!(circuit.num_syncs(), 18);
    assert_eq!(circuit.num_latches(), 15);

    let sol = smo_bench::timed("MLP (model + solve)", || {
        min_cycle_time(&circuit).expect("solves")
    });
    let tc = sol.cycle_time();
    println!(
        "\noptimal Tc = {tc:.3} ns  (target {GAAS_TARGET_CYCLE_NS} ns, paper's model: \
         {GAAS_PAPER_OPTIMAL_NS} ns)"
    );
    println!(
        "Tc is {:+.1}% versus the 4-ns target (paper: +10%)",
        (tc / GAAS_TARGET_CYCLE_NS - 1.0) * 100.0
    );
    println!(
        "constraints: {} (paper's formulation: 91)",
        sol.num_constraints()
    );
    println!(
        "lp iterations: {}, update sweeps: {}",
        sol.lp_iterations(),
        sol.update_iterations()
    );
    print!("{}", render_schedule(sol.schedule()));
    assert!(verify(&circuit, sol.schedule()).is_feasible());
    assert!(
        (tc - GAAS_PAPER_OPTIMAL_NS).abs() < 0.05,
        "reconstruction should land near 4.4 ns, got {tc}"
    );

    // K13 = K31 = 0 — no direct paths between φ1 and φ3:
    let k = circuit.k_matrix();
    assert!(!k.get(0, 2) && !k.get(2, 0));
    println!("\nK matrix (K13 = K31 = 0, so φ1/φ3 may overlap):");
    print!("{k}");

    // φ3 completely overlapped by φ1 at no cycle-time cost: re-solve with
    // Tc fixed at the optimum and rows forcing φ3 inside (the next
    // occurrence of) φ1.
    smo_bench::header("Fig. 11 — schedule with φ3 completely overlapped by φ1");
    let mut model = TimingModel::build_with(
        &circuit,
        &ConstraintOptions {
            fixed_cycle: Some(tc),
            ..Default::default()
        },
    )
    .expect("model");
    let vars = model.vars().clone();
    let (p1, p3) = (PhaseId::from_number(1), PhaseId::from_number(3));
    {
        let p = model.problem_mut();
        // s3 ≥ s1 + Tc  and  s3 + T3 ≤ s1 + T1 + Tc
        p.constrain(
            LinExpr::from(vars.start(p3)) - vars.start(p1) - vars.tc(),
            Sense::Ge,
            0.0,
        );
        p.constrain(
            LinExpr::from(vars.start(p3)) + vars.width(p3)
                - vars.start(p1)
                - vars.width(p1)
                - vars.tc(),
            Sense::Le,
            0.0,
        );
    }
    let overlapped = solve_model(&circuit, &model, UpdateMode::GaussSeidel)
        .expect("overlap is feasible at the optimal Tc");
    println!(
        "feasible at the unchanged optimum Tc = {:.3} ns:",
        overlapped.cycle_time()
    );
    print!("{}", render_schedule(overlapped.schedule()));
    let s = overlapped.schedule();
    let inside = s.start(p3) >= s.start(p1) + tc - 1e-9
        && s.end(p3) <= s.start(p1) + s.width(p1) + tc + 1e-9;
    assert!(inside, "φ3 must sit inside φ1 (mod Tc)");
    assert!((overlapped.cycle_time() - tc).abs() < 1e-6);
    println!(
        "φ3 = [{:.3}, {:.3}] mod Tc sits inside φ1 = [{:.3}, {:.3}] — \
         \"the timing model … is able to overlap clock phases if necessary\"",
        s.start(p3) - tc,
        s.end(p3) - tc,
        s.start(p1),
        s.end(p1)
    );

    // Per-synchronizer steady-state timing (the strip data of Fig. 11).
    println!("\nper-synchronizer steady state (times relative to own phase):");
    for (id, sync) in circuit.syncs() {
        println!(
            "  {:14} {:9} on {}: D = {:6.3}, A = {:6.3}",
            sync.name,
            sync.kind.to_string(),
            sync.phase,
            sol.departure(id),
            sol.arrival(id)
        );
    }
}
