//! Figs. 8–9: the "more complicated" Example 2 — MLP versus the heuristic
//! baselines.
//!
//! The paper's observations, checked on our documented stand-in circuit
//! (DESIGN.md, substitution 2):
//!
//! * the NRIP solution "is significantly higher (35 %) than the optimal
//!   cycle time" — our NRIP-like symmetric baseline lands at +35.5 %;
//! * "instead of a single critical path, the circuit has several critical
//!   combinational delay segments which may be disjoint", read off the
//!   binding-constraint duals.

use smo_core::{baseline, critical_report, min_cycle_time, render_solution, verify, TimingModel};
use smo_gen::paper::example2;

fn main() {
    smo_bench::header("Figs. 8–9 — Example 2: MLP vs heuristic baselines");
    let circuit = example2();
    println!("{circuit}");

    let sol = smo_bench::timed("MLP", || min_cycle_time(&circuit).expect("solves"));
    let opt = sol.cycle_time();
    println!("\noptimal Tc = {opt:.3} ns");
    print!("{}", render_solution(&circuit, &sol));
    assert!(verify(&circuit, sol.schedule()).is_feasible());

    println!(
        "\n{}",
        smo_bench::row(&["algorithm", "Tc (ns)", "vs optimal"], &[36, 10, 10])
    );
    println!(
        "{}",
        smo_bench::row(
            &["MLP (this paper)", &format!("{opt:.2}"), "—"],
            &[36, 10, 10]
        )
    );
    for b in baseline::all_baselines(&circuit).expect("baselines run") {
        let gap = (b.cycle_time() / opt - 1.0) * 100.0;
        println!(
            "{}",
            smo_bench::row(
                &[
                    b.name,
                    &format!("{:.2}", b.cycle_time()),
                    &format!("+{gap:.1}%")
                ],
                &[36, 10, 10],
            )
        );
        assert!(b.cycle_time() >= opt - 1e-6);
        // every baseline schedule must still be feasible for the circuit
        assert!(verify(&circuit, b.solution.schedule()).is_feasible());
    }
    let sym = baseline::symmetric_clock(&circuit).expect("sym");
    let gap = (sym.cycle_time() / opt - 1.0) * 100.0;
    println!("\nNRIP-like gap: +{gap:.1}% (paper reports +35% for its Example 2)");
    assert!(gap > 20.0, "the stand-in should show a substantial gap");

    smo_bench::header("Example 2 — critical segments (§V discussion)");
    let model = TimingModel::build(&circuit).expect("model");
    let report = critical_report(&circuit, &model).expect("critical analysis");
    print!("{report}");
    for ce in &report.edges {
        let e = circuit.edge(ce.edge);
        println!(
            "  {} → {} (Δ = {}): dTc/dΔ = {:.3}",
            circuit.sync(e.from).name,
            circuit.sync(e.to).name,
            e.max_delay,
            ce.sensitivity
        );
    }
    assert!(
        report.edges.len() > 1,
        "several critical delay segments, not a single path"
    );
}
