//! Fig. 6: timing diagrams for Example 1 at `Δ41 ∈ {80, 100, 120}` ns.
//!
//! Reproduces the paper's reported data:
//!
//! * the optimal cycle times 110 / 120 / 140 ns,
//! * at `Δ41 = 120`: "a cycle time of 140 ns with signals departing from
//!   latches 1 through 4, respectively, at 60 ns, 90 ns, 140 ns, and
//!   210 ns", with the input to latch 3 valid at 120 ns — 20 ns before the
//!   rising edge of φ1 — so departure waits for the edge at 140 ns,
//! * the non-uniqueness observation for `Δ41 = 80`: two different optimal
//!   clock schedules sharing `T_c = 110` (the top of Fig. 6).

use smo_circuit::LatchId;
use smo_core::{min_cycle_time, min_cycle_time_with, render_solution, MlpOptions};
use smo_gen::paper::example1;

fn main() {
    smo_bench::header("Fig. 6 — Example 1 timing diagrams");
    let expected_tc = [(80.0, 110.0), (100.0, 120.0), (120.0, 140.0)];
    for (d41, tc) in expected_tc {
        let circuit = example1(d41);
        let sol = min_cycle_time(&circuit).expect("example 1 solves");
        println!("\n--- Δ41 = {d41} ns ---");
        assert!(
            (sol.cycle_time() - tc).abs() < 1e-6,
            "expected Tc = {tc}, got {}",
            sol.cycle_time()
        );
        print!("{}", render_solution(&circuit, &sol));
        // absolute departures within the steady-state cycle
        for (id, s) in circuit.syncs() {
            println!(
                "  {} departs at {:.1} ns absolute (D = {:.1} relative to {})",
                s.name,
                sol.absolute_departure(id, s.phase),
                sol.departure(id),
                s.phase
            );
        }
    }

    // Fig. 6(c) check: the paper's absolute departures at Δ41 = 120 are
    // 60/90/140/210 for a schedule with φ1 rising at 140 (= Tc) and the L3
    // input valid at 120. Optimal schedules are not unique, so compare the
    // *invariant* quantities: Tc and the steady-state inter-departure gaps.
    let circuit = example1(120.0);
    let sol = min_cycle_time(&circuit).expect("solves");
    let d = |i: usize| sol.departure(LatchId::new(i));
    let s = |n: usize| sol.schedule().start(smo_circuit::PhaseId::from_number(n));
    let tc = sol.cycle_time();
    // paper absolute times: L1: 60, L2: 90, L3: 140, L4: 210 (next cycle)
    let abs = [
        s(1) + d(0),
        s(2) + d(1),
        s(1) + d(2) + tc, // L3 departs at the *next* φ1 rising edge
        s(2) + d(3) + tc,
    ];
    println!("\nΔ41 = 120 ns steady-state absolute departures (one wave):");
    for (i, a) in abs.iter().enumerate() {
        println!("  L{}: {a:.1} ns", i + 1);
    }
    let gaps: Vec<f64> = abs.windows(2).map(|w| w[1] - w[0]).collect();
    println!("  inter-departure gaps: {gaps:?} (paper: [30, 50, 70])");
    for (g, expect) in gaps.iter().zip([30.0, 50.0, 70.0]) {
        assert!((g - expect).abs() < 1e-6, "gap {g} vs paper {expect}");
    }
    // L3's input is valid 20 ns before its enabling edge (it must wait):
    let wait = -sol.arrival(LatchId::new(2));
    println!("  L3 input valid {wait:.1} ns before φ1 rises (paper: 20 ns)");
    assert!((wait - 20.0).abs() < 1e-6);

    // Non-uniqueness at Δ41 = 80: canonical (compact) vs raw LP vertex.
    smo_bench::header("Fig. 6(a) — two distinct optimal schedules at Δ41 = 80");
    let circuit = example1(80.0);
    let compact = min_cycle_time(&circuit).expect("solves");
    let raw = min_cycle_time_with(
        &circuit,
        &MlpOptions {
            canonicalize: false,
            ..Default::default()
        },
    )
    .expect("solves");
    println!("canonical schedule:\n{}", compact.schedule());
    println!("raw LP-vertex schedule:\n{}", raw.schedule());
    assert!((compact.cycle_time() - raw.cycle_time()).abs() < 1e-6);
    let same = (0..2).all(|i| {
        let p = smo_circuit::PhaseId::new(i);
        (compact.schedule().start(p) - raw.schedule().start(p)).abs() < 1e-9
            && (compact.schedule().width(p) - raw.schedule().width(p)).abs() < 1e-9
    });
    println!(
        "same cycle time {:.1} ns, schedules {} — the optimum of P2 is not unique",
        compact.cycle_time(),
        if same { "identical" } else { "different" }
    );
}
