//! §VI, executed: "use parametric programming techniques to quantify the
//! notion of critical path segments and to study the effects on the optimal
//! cycle time of varying the circuit delays" — on the flagship GaAs MIPS
//! model.
//!
//! * `dT_c/dΔ` for every combinational path, from one LP solve (the
//!   sensitivity vector; zero everywhere except the critical segments);
//! * the exact piecewise-linear `T_c(Δ)` curve for the instruction-cache
//!   access time — "how fast do the SRAMs need to be?" — with breakpoints
//!   from the parametric simplex, cross-checked against fresh solves.

use smo_core::{cycle_time_curve, delay_sensitivities, min_cycle_time, TimingModel};
use smo_gen::paper::gaas_mips;

fn main() {
    smo_bench::header("GaAs MIPS — delay sensitivities (dTc/dΔ per path)");
    let circuit = gaas_mips();
    let model = TimingModel::build(&circuit).expect("model");
    let sens = smo_bench::timed("sensitivity vector (one LP)", || {
        delay_sensitivities(&circuit, &model).expect("solves")
    });
    let mut nonzero = 0;
    for (i, s) in sens.iter().enumerate() {
        if *s > 1e-9 {
            let e = circuit.edge(smo_circuit::EdgeId::new(i));
            println!(
                "  {} → {} (Δ = {:.2} ns): dTc/dΔ = {:.3}",
                circuit.sync(e.from).name,
                circuit.sync(e.to).name,
                e.max_delay,
                s
            );
            nonzero += 1;
        }
    }
    println!(
        "{nonzero} of {} paths are critical; shaving anywhere else buys nothing",
        circuit.num_edges()
    );
    assert!(nonzero >= 1);

    smo_bench::header("GaAs MIPS — exact Tc(Δ_icache): how fast must the SRAMs be?");
    let icache = circuit
        .find("icache_addr")
        .and_then(|addr| {
            circuit
                .fanout(addr)
                .iter()
                .copied()
                .find(|&e| circuit.edge(e).to == circuit.find("instr").expect("instr exists"))
        })
        .expect("icache access edge exists");
    let base_tc = min_cycle_time(&circuit).expect("solves").cycle_time();
    let curve = smo_bench::timed("parametric simplex", || {
        cycle_time_curve(&circuit, &model, icache, 8.0).expect("curve")
    });
    for seg in &curve.segments {
        println!(
            "  Δ_icache ∈ [{:5.2}, {:5.2}] ns: Tc = {:.3} + {:.2}·(Δ − {:.2})",
            seg.theta_lo, seg.theta_hi, seg.objective_lo, seg.slope, seg.theta_lo
        );
    }
    println!("  breakpoints: {:?}", curve.breakpoints());
    // cross-check against fresh solves at a few probes by rebuilding the
    // circuit with a modified cache delay
    for probe in [1.0, 3.15, 5.0, 7.5] {
        let mut b = smo_circuit::CircuitBuilder::new(circuit.num_phases());
        for (_, s) in circuit.syncs() {
            b.add_sync(s.clone());
        }
        for (i, e) in circuit.edges().iter().enumerate() {
            let d = if i == icache.index() {
                probe
            } else {
                e.max_delay
            };
            b.connect_min_max(e.from, e.to, e.min_delay.min(d), d);
        }
        let modified = b.build().expect("builds");
        let direct = min_cycle_time(&modified).expect("solves").cycle_time();
        let para = curve.objective_at(probe).expect("in range");
        assert!(
            (direct - para).abs() < 1e-6,
            "Δ = {probe}: parametric {para} vs direct {direct}"
        );
        println!("  probe Δ = {probe:.2}: Tc = {direct:.3} (parametric curve agrees)");
    }
    println!(
        "\nat the shipped Δ_icache = 3.15 ns the cache is {} (base Tc = {base_tc:.2} ns)",
        if sens[icache.index()] > 1e-9 {
            "on the critical segment"
        } else {
            "NOT critical — the IMD loop sets the cycle time"
        }
    );
}
