//! §IV/§V scalar observations:
//!
//! * the number of constraints is bounded by `4k + (F+1)·l` and grows
//!   linearly in the number of latches `l`;
//! * the simplex "on average takes between n and 3n steps" — we report
//!   measured iteration counts against the row count `n`;
//! * the MLP update iteration "usually terminated in two to three
//!   iterations (in some cases no iterations were even necessary)".

use smo_core::{min_cycle_time_with, MlpOptions, TimingModel, UpdateMode};
use smo_gen::random::{random_circuit, GenConfig};

fn main() {
    smo_bench::header("§IV — constraint counts, simplex steps, update sweeps");
    println!(
        "{}",
        smo_bench::row(
            &["l", "edges", "rows n", "bound", "lp iters", "iters/n", "sweeps"],
            &[6, 6, 8, 10, 9, 8, 7],
        )
    );
    let mut worst_ratio: f64 = 0.0;
    let mut worst_sweeps = 0usize;
    for (i, l) in [8usize, 16, 32, 64, 128, 256].iter().enumerate() {
        let cfg = GenConfig {
            phases: 2 + (i % 3),
            latches: *l,
            edges: l * 3 / 2,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, 1000 + i as u64);
        let model = TimingModel::build(&circuit).expect("model");
        let n = model.num_constraints();
        // rigorous form of the paper's bound: ≤ (3k−1+k²) clock rows plus
        // (F+1)·l latch rows (the nominal 4k undercounts dense K matrices)
        let k = circuit.num_phases();
        let bound = (3 * k - 1 + k * k) + (circuit.max_fanin() + 1) * circuit.num_syncs();
        assert!(n <= bound, "row count {n} exceeds the bound {bound}");
        let opts = MlpOptions {
            update: UpdateMode::Jacobi,
            canonicalize: false, // count iterations of the single LP solve
            ..Default::default()
        };
        let sol = min_cycle_time_with(&circuit, &opts).expect("solves");
        let ratio = sol.lp_iterations() as f64 / n as f64;
        worst_ratio = worst_ratio.max(ratio);
        worst_sweeps = worst_sweeps.max(sol.update_iterations());
        println!(
            "{}",
            smo_bench::row(
                &[
                    &format!("{l}"),
                    &format!("{}", circuit.num_edges()),
                    &format!("{n}"),
                    &format!("{bound}"),
                    &format!("{}", sol.lp_iterations()),
                    &format!("{ratio:.2}"),
                    &format!("{}", sol.update_iterations()),
                ],
                &[6, 6, 8, 10, 9, 8, 7],
            )
        );
    }
    println!(
        "\nworst iters/n = {worst_ratio:.2} (paper: simplex averages n..3n steps)\n\
         worst update sweeps = {worst_sweeps} (paper: two to three, sometimes zero;\n\
         one sweep is always spent detecting the fixpoint)"
    );
}
