//! Runs every experiment binary in DESIGN.md order, in-process.
//!
//! `cargo run -p smo-bench --bin run_all | tee experiments.log` regenerates
//! every table and figure of the paper in one pass.

use std::process::Command;

fn main() {
    let bins = [
        "fig1_appendix",
        "fig3_clocks",
        "fig4_geometry",
        "fig6_diagrams",
        "fig7_sweep",
        "fig9_example2",
        "fig11_gaas",
        "table1_transistors",
        "constraint_counts",
        "ablations",
        "delay_sensitivity",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    println!();
    if failures.is_empty() {
        println!("all {} experiments completed successfully", bins.len());
    } else {
        eprintln!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
