//! Fig. 1 + appendix: the 11-latch, four-phase circuit and its complete
//! constraint set "written down by inspection".
//!
//! Prints the `K` matrix (asserted equal to the appendix's), the nine
//! phase-shift operators, the generated constraint rows grouped by kind,
//! and the optimal cycle time for unit-style delays.

use smo_core::{min_cycle_time, ConstraintKind, TimingModel};
use smo_gen::paper::{appendix_fig1, APPENDIX_PHASE_PAIRS};

fn main() {
    smo_bench::header("Fig. 1 / appendix — 11 latches under a four-phase clock");
    let circuit = appendix_fig1(10.0, 1.0, 2.0);
    println!("{circuit}");

    println!("K matrix (compare appendix):");
    print!("{}", circuit.k_matrix());
    let expected = [[0, 0, 1, 1], [1, 0, 1, 1], [1, 1, 0, 0], [0, 1, 1, 0]];
    let k = circuit.k_matrix();
    for (i, row) in expected.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            assert_eq!(k.get(i, j), v == 1, "K[{}][{}]", i + 1, j + 1);
        }
    }
    println!("matches the appendix K matrix ✓");

    println!("\nphase-shift operators (S_ij = s_i − s_j − C_ij·Tc):");
    for &(i, j) in APPENDIX_PHASE_PAIRS {
        let crosses = i >= j;
        println!(
            "  S{i}{j} = s{i} − s{j}{}",
            if crosses { " − Tc" } else { "" }
        );
    }

    let model = TimingModel::build(&circuit).expect("model builds");
    println!("\ngenerated constraint rows by kind:");
    for kind in [
        ConstraintKind::PeriodicityWidth,
        ConstraintKind::PeriodicityStart,
        ConstraintKind::PhaseOrder,
        ConstraintKind::PhaseNonoverlap,
        ConstraintKind::Setup,
        ConstraintKind::Propagation,
    ] {
        let n = model
            .constraints()
            .iter()
            .filter(|c| c.kind == kind)
            .count();
        println!("  {kind}: {n}");
    }
    println!("  total: {}", model.num_constraints());
    let k = circuit.num_phases();
    let nominal = 4 * k + (circuit.max_fanin() + 1) * circuit.num_syncs();
    let rigorous = (3 * k - 1 + k * k) + (circuit.max_fanin() + 1) * circuit.num_syncs();
    println!(
        "  paper's nominal bound 4k + (F+1)l = {nominal} (F = {}); rigorous \
         (3k−1+k²) + (F+1)l = {rigorous}",
        circuit.max_fanin()
    );

    let sol = smo_bench::timed("MLP", || min_cycle_time(&circuit).expect("solves"));
    println!(
        "\noptimal Tc = {:.3} for uniform block delay 10, setup 1, dq 2 \
         ({} update sweeps)",
        sol.cycle_time(),
        sol.update_iterations()
    );
    print!("{}", smo_core::render_schedule(sol.schedule()));
}
