//! Fig. 4: geometric interpretation of Theorem 1 on the paper's toy problem.
//!
//! The figure's example: feasible region of P1 is
//! `x1 = max(2, x2)` with `x1 ≤ 4`, `x2 ≤ 2` (two heavy line segments);
//! P2 relaxes the equality to `x1 ≥ 2`, `x1 ≥ x2` (the shaded area).
//! The paper's observations, all verified numerically here:
//!
//! * `z*_P1 = z*_P2 = 1` for `z = x2` (with `x2 ≥ 1`),
//! * for `z = x1`: `X1 = X2 = {(2, x2) | 1 ≤ x2 ≤ 2}`,
//! * for `z = x1 + x2`: `X1 = X2 = {(2, 1)}`,
//! * an optimal P2 point like `(4, 1)` is made feasible for P1 by *sliding*
//!   `x1` down until `x1 = max(2, x2)` — the MLP update step in miniature.

use smo_lp::{Problem, Sense, VarId};

fn base_problem() -> (Problem, VarId, VarId) {
    let mut p = Problem::new();
    let x1 = p.add_var("x1");
    let x2 = p.add_var("x2");
    // relaxation of x1 = max(2, x2):
    p.constrain(x1.into(), Sense::Ge, 2.0);
    p.constrain(x1 - x2, Sense::Ge, 0.0);
    // the figure's box
    p.constrain(x1.into(), Sense::Le, 4.0);
    p.constrain(x2.into(), Sense::Le, 2.0);
    p.constrain(x2.into(), Sense::Ge, 1.0);
    (p, x1, x2)
}

fn slide_to_p1(x1: f64, x2: f64) -> (f64, f64) {
    // minimize x1 until it satisfies x1 = max(2, x2) (the paper's caption)
    (x2.max(2.0).min(x1), x2)
}

fn main() {
    smo_bench::header("Fig. 4 — geometric interpretation of Theorem 1");

    for (name, obj) in [
        ("x2", (0.0, 1.0)),
        ("x1", (1.0, 0.0)),
        ("x1 + x2", (1.0, 1.0)),
    ] {
        let (mut p, x1, x2) = base_problem();
        p.minimize(obj.0 * x1 + obj.1 * smo_lp::LinExpr::from(x2));
        let sol = p
            .solve()
            .expect("toy LP solves")
            .into_optimal()
            .expect("optimal");
        let (v1, v2) = (sol.value(x1), sol.value(x2));
        let (s1, s2) = slide_to_p1(v1, v2);
        let z_p2 = sol.objective();
        let z_p1 = obj.0 * s1 + obj.1 * s2;
        println!(
            "z = {name:7}  P2 optimum ({v1:.3}, {v2:.3}) z* = {z_p2:.3}  →  \
             slid to P1 point ({s1:.3}, {s2:.3}) z = {z_p1:.3}"
        );
        assert!((z_p1 - z_p2).abs() < 1e-9, "Theorem 1 equality violated");
        // the slid point is feasible for P1:
        assert!((s1 - s2.max(2.0)).abs() < 1e-9);
    }

    // The z = x2 case of the figure: z*min = 1 and the P2 optimum set is a
    // whole segment; (4, 1) is optimal for P2 but infeasible for P1.
    let (p2_point, z) = ((4.0, 1.0), 1.0);
    let slid = slide_to_p1(p2_point.0, p2_point.1);
    println!(
        "\npaper's example point ({}, {}) (P2-optimal, P1-infeasible) slides to \
         ({}, {}) with z = {z} unchanged",
        p2_point.0, p2_point.1, slid.0, slid.1
    );
    assert_eq!(slid, (2.0, 1.0));
    println!("\nTheorem 1 verified on the Fig. 4 example: z*_P1 = z*_P2 for all three objectives.");
}
