//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! 1. **LP solver**: dense tableau vs sparse revised simplex (§VI's "more
//!    efficient algorithms" direction) — same optima, different scaling.
//! 2. **Canonicalization**: the cost and effect of the second LP pass that
//!    picks a deterministic compact schedule among the non-unique optima.
//! 3. **Nonoverlap scope**: the paper's strict C3 vs the latch-destination
//!    relaxation on a flip-flop-rich design.
//! 4. **Update mode**: Jacobi vs Gauss-Seidel vs event-driven departure
//!    sliding (§IV's proposed enhancements).
//! 5. **Bus lumping**: the §IV "32-bit data bus" reduction.
//! 6. **LP presolve**: singleton/duplicate/redundancy elimination before
//!    the simplex, on vs off, for both simplex variants.

use smo_circuit::{lump_equivalent_latches, CircuitBuilder, PhaseId};
use smo_core::{
    min_cycle_time, min_cycle_time_with, solve_model_with, ConstraintOptions, MlpOptions,
    NonoverlapScope, TimingModel, UpdateMode,
};
use smo_gen::random::{random_circuit, GenConfig};
use smo_lp::{PresolveOptions, SimplexVariant};
use std::time::Instant;

fn ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    smo_bench::header("Ablation 1 — dense tableau vs sparse revised simplex");
    println!(
        "{}",
        smo_bench::row(
            &["latches", "rows", "dense (ms)", "revised (ms)", "speedup"],
            &[8, 6, 11, 13, 8]
        )
    );
    for l in [32usize, 128, 256] {
        let cfg = GenConfig {
            latches: l,
            edges: l * 3 / 2,
            phases: 3,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, 7);
        let model = TimingModel::build(&circuit).expect("model");
        let mut tc_d = 0.0;
        let mut tc_r = 0.0;
        let td = ms(|| {
            tc_d = model
                .solve_lp_with(SimplexVariant::Dense)
                .expect("optimal")
                .objective();
        });
        let tr = ms(|| {
            tc_r = model
                .solve_lp_with(SimplexVariant::Revised)
                .expect("optimal")
                .objective();
        });
        assert!((tc_d - tc_r).abs() < 1e-6, "variants disagree");
        println!(
            "{}",
            smo_bench::row(
                &[
                    &format!("{l}"),
                    &format!("{}", model.num_constraints()),
                    &format!("{td:.2}"),
                    &format!("{tr:.2}"),
                    &format!("{:.2}×", td / tr.max(1e-9)),
                ],
                &[8, 6, 11, 13, 8],
            )
        );
    }

    smo_bench::header("Ablation 2 — schedule canonicalization (second LP pass)");
    let circuit = smo_gen::paper::example1(80.0);
    let raw = min_cycle_time_with(
        &circuit,
        &MlpOptions {
            canonicalize: false,
            ..Default::default()
        },
    )
    .expect("solves");
    let compact = min_cycle_time(&circuit).expect("solves");
    println!(
        "raw vertex:  Tc = {:.1}, {}",
        raw.cycle_time(),
        summary(raw.schedule())
    );
    println!(
        "canonical:   Tc = {:.1}, {}  (+1 LP solve: {} vs {} total simplex iterations)",
        compact.cycle_time(),
        summary(compact.schedule()),
        compact.lp_iterations(),
        raw.lp_iterations()
    );
    assert!((raw.cycle_time() - compact.cycle_time()).abs() < 1e-9);

    smo_bench::header("Ablation 3 — nonoverlap scope for flip-flop destinations");
    // All φ2→φ1 traffic ends at a flip-flop, so the paper's strict C3 row
    // s2 ≥ s1 + T1 only exists to protect a race the FF breaks by itself.
    // The latch A needs a wide φ1 (heavy borrowing from the slow F→A path),
    // which under strict C3 also forces φ2 late — a pure loss of cycle time.
    let mixed = {
        let mut b = CircuitBuilder::new(2);
        let f = b.add_flip_flop("F", PhaseId::from_number(1), 1.0, 1.0);
        let a = b.add_latch("A", PhaseId::from_number(1), 1.0, 1.0);
        let bl = b.add_latch("B", PhaseId::from_number(2), 1.0, 1.0);
        b.connect(f, a, 60.0); // slow path: A borrows deep into φ1
        b.connect(bl, f, 10.0); // φ2→φ1 with FF destination
        b.build().expect("builds")
    };
    let mut tcs = Vec::new();
    for (label, scope) in [
        ("paper C3 (all pairs)      ", NonoverlapScope::AllPairs),
        (
            "latch destinations only   ",
            NonoverlapScope::LatchDestinations,
        ),
    ] {
        let sol = min_cycle_time_with(
            &mixed,
            &MlpOptions {
                constraints: ConstraintOptions {
                    nonoverlap_scope: scope,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("solves");
        println!("{label}: Tc = {:.2}", sol.cycle_time());
        tcs.push(sol.cycle_time());
    }
    assert!(
        tcs[1] < tcs[0] - 1e-6,
        "the relaxation should pay off on this design"
    );

    smo_bench::header("Ablation 4 — departure update modes (Jacobi / GS / event-driven)");
    let cfg = GenConfig {
        latches: 128,
        edges: 192,
        phases: 2,
        ..Default::default()
    };
    let big = random_circuit(&cfg, 5);
    let model = TimingModel::build(&big).expect("model");
    for mode in [
        UpdateMode::Jacobi,
        UpdateMode::GaussSeidel,
        UpdateMode::EventDriven,
    ] {
        let mut iters = 0;
        let t = ms(|| {
            let sol =
                solve_model_with(&big, &model, mode, SimplexVariant::Revised).expect("solves");
            iters = sol.update_iterations();
        });
        println!("{mode:?}: {iters} update iterations, {t:.2} ms end-to-end");
    }

    smo_bench::header("Ablation 5 — §IV bus lumping");
    for bits in [8usize, 32, 64] {
        let mut b = CircuitBuilder::new(2);
        let p1 = PhaseId::from_number(1);
        let p2 = PhaseId::from_number(2);
        let ctrl = b.add_latch("ctrl", p1, 1.0, 1.0);
        let r1: Vec<_> = (0..bits)
            .map(|i| b.add_latch(format!("r1_{i}"), p1, 1.0, 1.0))
            .collect();
        let r2: Vec<_> = (0..bits)
            .map(|i| b.add_latch(format!("r2_{i}"), p2, 1.0, 1.0))
            .collect();
        for i in 0..bits {
            b.connect(r1[i], r2[i], 14.0);
            b.connect(r2[i], r1[i], 6.0);
            b.connect(r2[i], ctrl, 4.0);
        }
        let wide = b.build().expect("builds");
        let (narrow, _) = lump_equivalent_latches(&wide);
        let mut tc_w = 0.0;
        let tw = ms(|| tc_w = min_cycle_time(&wide).expect("solves").cycle_time());
        let mut tc_n = 0.0;
        let tn = ms(|| tc_n = min_cycle_time(&narrow).expect("solves").cycle_time());
        assert!((tc_w - tc_n).abs() < 1e-6);
        println!(
            "{bits:3}-bit bus: {} → {} synchronizers, Tc {tc_w:.1} = {tc_n:.1}, \
             {tw:.2} ms → {tn:.2} ms",
            wide.num_syncs(),
            narrow.num_syncs()
        );
    }

    smo_bench::header("Ablation 6 — LP presolve on vs off (650-row scale)");
    let cfg = GenConfig {
        latches: 256,
        edges: 384,
        phases: 3,
        ..Default::default()
    };
    let big = random_circuit(&cfg, 11);
    let model = TimingModel::build(&big).expect("model");
    let stats = model.problem().presolve(&PresolveOptions::default());
    println!(
        "{} constraints; presolve: {}",
        model.num_constraints(),
        stats.stats()
    );
    println!(
        "{}",
        smo_bench::row(
            &["variant", "presolve", "Tc", "solve (ms)"],
            &[8, 9, 11, 11]
        )
    );
    let mut reference = None;
    for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
        for (label, opts) in [
            ("off", PresolveOptions::off()),
            ("on", PresolveOptions::default()),
        ] {
            let mut tc = 0.0;
            let t = ms(|| {
                tc = model
                    .problem()
                    .solve_with_presolve(variant, &opts)
                    .expect("solves")
                    .objective()
                    .expect("optimal");
            });
            let reference = *reference.get_or_insert(tc);
            assert!(
                (tc - reference).abs() < 1e-9,
                "presolve changed the optimum: {tc} vs {reference}"
            );
            println!(
                "{}",
                smo_bench::row(
                    &[
                        &format!("{variant:?}"),
                        label,
                        &format!("{tc:.4}"),
                        &format!("{t:.2}"),
                    ],
                    &[8, 9, 11, 11],
                )
            );
        }
    }

    smo_bench::header("Ablation 7 — certification + recovery-ladder overhead (650-row scale)");
    println!(
        "{}",
        smo_bench::row(
            &[
                "variant",
                "plain (ms)",
                "certified (ms)",
                "overhead",
                "rungs"
            ],
            &[8, 11, 15, 9, 6]
        )
    );
    for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
        let mut tc_plain = 0.0;
        let t_plain = ms(|| {
            tc_plain = model
                .problem()
                .solve_with(variant)
                .expect("solves")
                .objective()
                .expect("optimal");
        });
        let policy = smo_lp::RecoveryPolicy {
            variant,
            ..Default::default()
        };
        let mut tc_cert = 0.0;
        let mut rungs = 0usize;
        let t_cert = ms(|| {
            let certified = model.problem().solve_certified(&policy).expect("certifies");
            tc_cert = certified
                .solution()
                .objective()
                .expect("certified optimum has an objective");
            rungs = certified.steps().len();
        });
        assert!(
            (tc_plain - tc_cert).abs() < 1e-9 * (1.0 + tc_plain.abs()),
            "certification changed the optimum: {tc_plain} vs {tc_cert}"
        );
        println!(
            "{}",
            smo_bench::row(
                &[
                    &format!("{variant:?}"),
                    &format!("{t_plain:.2}"),
                    &format!("{t_cert:.2}"),
                    &format!("{:+.1}%", (t_cert / t_plain - 1.0) * 100.0),
                    &format!("{rungs}"),
                ],
                &[8, 11, 15, 9, 6],
            )
        );
    }
}

fn summary(s: &smo_circuit::ClockSchedule) -> String {
    (0..s.num_phases())
        .map(|i| {
            let p = PhaseId::new(i);
            format!("φ{}=[{:.0},{:.0})", p.number(), s.start(p), s.end(p))
        })
        .collect::<Vec<_>>()
        .join(" ")
}
