//! Scaling benchmark: dense vs revised vs sparse-LU certified solve time
//! as the timing model grows from the paper's scale (~650 rows) past
//! 10 000 constraint rows, with jumbo sparse-only sizes to 50k+ rows.
//!
//! Circuits come from the seeded pipelined-datapath generator (`smo gen`),
//! so every run measures byte-identical models. Each variant runs one
//! certified cycle-time LP per size under a wall-clock deadline; a solve
//! that hits the deadline is recorded with its elapsed time at abort and
//! `timed_out = true` — an honest lower bound, never an extrapolation. At
//! the jumbo sizes the dense/revised deadline is capped (they are known
//! to be orders of magnitude off the pace; burning an hour to prove it
//! again adds nothing), so their rows there are lower bounds by design.
//!
//! Writes `BENCH_scale.json` at the repository root (checked in as the
//! reference curve; regenerated on demand). The run aborts if the
//! sparse-LU variant is not at least 10× faster than the dense tableau at
//! the anchor (10k-row) size, or if any two variants that both finished
//! disagree on the verdict or the optimum.
//!
//! `--quick` (the CI smoke mode) runs the two small sizes three-way, then
//! one sparse-only solve at the anchor size and gates its `pivots_per_sec`
//! against the checked-in `sparse_pivots_per_sec_10k` (≥ half, to absorb
//! shared-runner noise) — a cheap tripwire against kernel regressions.

use std::time::{Duration, Instant};

use smo_core::TimingModel;
use smo_gen::datapath::{pipelined_datapath, DatapathConfig};
use smo_lp::{LpError, Pricing, RecoveryPolicy, SimplexVariant, SolveBudget, Tol};

/// Latch targets chosen so the models land near 650 / 2k / 5k / 10k /
/// 25k / 50k rows (rows ≈ 3 × latches + a little).
const SIZES: [usize; 6] = [216, 667, 1_667, 3_333, 8_333, 16_667];
/// Index into [`SIZES`] of the anchor size (~10k rows): the largest size
/// every variant runs with full deadline headroom, where the 10× gate and
/// the `sparse_pivots_per_sec_10k` reference are evaluated.
const ANCHOR: usize = 3;
/// `--quick` keeps only the first `QUICK_SIZES` sizes for the three-way
/// comparison (the full curve is the checked-in artifact).
const QUICK_SIZES: usize = 2;
/// Floor for the dense/revised deadline so tiny models never time out.
const MIN_DEADLINE: Duration = Duration::from_secs(10);
/// Dense/revised deadline = `DEADLINE_FACTOR × sparse seconds` (min
/// clamped): enough headroom that the 10× gate is decided by measurement,
/// not by the deadline itself. Applied through the anchor size only.
const DEADLINE_FACTOR: f64 = 12.0;
/// Dense/revised deadline cap at the jumbo (post-anchor) sizes: their
/// rows become capped lower bounds rather than hour-long reruns of a
/// foregone conclusion.
const JUMBO_DEADLINE: Duration = Duration::from_secs(60);
/// Sparse-LU deadline at the jumbo sizes. The bench *fails* if sparse
/// cannot certify inside this — that is the scaling claim under test.
const SPARSE_JUMBO_DEADLINE: Duration = Duration::from_secs(1_800);
/// The scaling gate at the anchor size.
const MIN_SPEEDUP: f64 = 10.0;
/// Quick-mode gate: measured anchor-size sparse `pivots_per_sec` must be
/// at least this fraction of the checked-in reference.
const QUICK_THROUGHPUT_FRACTION: f64 = 0.5;

struct Measurement {
    variant: &'static str,
    seconds: f64,
    iterations: usize,
    timed_out: bool,
    objective: Option<f64>,
    /// Sparse-LU kernel counters (`None` for dense/revised and for
    /// timed-out solves).
    stats: Option<smo_lp::SolveStats>,
}

impl Measurement {
    fn pivots_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.iterations as f64 / self.seconds
        } else {
            0.0
        }
    }
}

fn certified_solve(
    model: &TimingModel,
    variant: SimplexVariant,
    name: &'static str,
    deadline: Option<Duration>,
    pricing: Pricing,
) -> Measurement {
    let budget = match deadline {
        Some(d) => SolveBudget::with_time_limit(d),
        None => SolveBudget::UNLIMITED,
    };
    let policy = RecoveryPolicy {
        variant,
        budget,
        pricing,
    };
    let start = Instant::now();
    match model.problem().solve_certified(&policy) {
        Ok(certified) => {
            assert!(
                certified.status() == smo_lp::Status::Optimal,
                "{name}: expected an optimal verdict, got {:?}",
                certified.status()
            );
            Measurement {
                variant: name,
                seconds: start.elapsed().as_secs_f64(),
                iterations: certified.iterations(),
                timed_out: false,
                objective: certified.solution().objective(),
                stats: certified.solution().stats().copied(),
            }
        }
        Err(LpError::Budget { iterations, .. }) => Measurement {
            variant: name,
            seconds: start.elapsed().as_secs_f64(),
            iterations,
            timed_out: true,
            objective: None,
            stats: None,
        },
        Err(e) => panic!("{name}: certified solve failed: {e}"),
    }
}

fn build_model(latches: usize) -> TimingModel {
    let config = DatapathConfig::with_latches(latches);
    let circuit = pipelined_datapath(&config, 7);
    TimingModel::build(&circuit).expect("model builds")
}

/// Pulls `"sparse_pivots_per_sec_10k": <number>` out of the checked-in
/// curve without a JSON dependency (the writer below is hand-rolled too).
fn checked_in_throughput(json: &str) -> Option<f64> {
    let key = "\"sparse_pivots_per_sec_10k\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // `--pricing devex|partial|bland` re-runs the curve under a different
    // sparse-LU pricing rule (an A/B knob for kernel work; the checked-in
    // artifact always uses the default).
    let args: Vec<String> = std::env::args().collect();
    let pricing = args
        .iter()
        .position(|a| a == "--pricing")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse::<Pricing>().expect("valid --pricing"))
        .unwrap_or_default();
    smo_bench::header(if quick {
        "Solver scaling, dense vs revised vs sparse-LU (quick: small sizes + 10k-row throughput gate)"
    } else {
        "Solver scaling, dense vs revised vs sparse-LU (to 50k+ rows)"
    });

    let sizes = if quick {
        &SIZES[..QUICK_SIZES]
    } else {
        &SIZES[..]
    };
    let widths = [8, 8, 10, 12, 10, 9, 10, 8, 10, 12];
    println!(
        "{}",
        smo_bench::row(
            &[
                "latches",
                "rows",
                "variant",
                "seconds",
                "iters",
                "timeout",
                "piv/s",
                "refacs",
                "eta-fill",
                "objective"
            ],
            &widths
        )
    );
    let print_row = |rows: usize, latches: usize, m: &Measurement| {
        let (refacs, eta_fill) = m
            .stats
            .as_ref()
            .map_or((String::new(), String::new()), |s| {
                (s.refactorizations.to_string(), s.peak_eta_nnz.to_string())
            });
        println!(
            "{}",
            smo_bench::row(
                &[
                    &latches.to_string(),
                    &rows.to_string(),
                    m.variant,
                    &format!("{:.3}", m.seconds),
                    &m.iterations.to_string(),
                    if m.timed_out { "yes" } else { "" },
                    &format!("{:.0}", m.pivots_per_sec()),
                    &refacs,
                    &eta_fill,
                    &m.objective.map_or(String::new(), |o| format!("{o:.4}")),
                ],
                &widths
            )
        );
    };

    let mut curve: Vec<(usize, usize, Vec<Measurement>)> = Vec::new();
    for (s, &latches) in sizes.iter().enumerate() {
        let jumbo = s > ANCHOR;
        let model = build_model(latches);
        let rows = model.num_constraints();

        // Sparse first: it sets the honest deadline for the others.
        let sparse_deadline = jumbo.then_some(SPARSE_JUMBO_DEADLINE);
        let sparse = certified_solve(
            &model,
            SimplexVariant::SparseLu,
            "sparse-lu",
            sparse_deadline,
            pricing,
        );
        assert!(
            !sparse.timed_out,
            "sparse-lu timed out at {rows} rows ({latches} latches): the hypersparse \
             kernels are supposed to carry this size inside {SPARSE_JUMBO_DEADLINE:?}"
        );
        let mut deadline =
            Duration::from_secs_f64(sparse.seconds * DEADLINE_FACTOR).max(MIN_DEADLINE);
        if jumbo {
            deadline = deadline.min(JUMBO_DEADLINE);
        }
        let revised = certified_solve(
            &model,
            SimplexVariant::Revised,
            "revised",
            Some(deadline),
            pricing,
        );
        let dense = certified_solve(
            &model,
            SimplexVariant::Dense,
            "dense",
            Some(deadline),
            pricing,
        );

        let all = vec![sparse, revised, dense];
        for m in &all {
            print_row(rows, latches, m);
        }

        // Any two variants that both finished must agree exactly (the
        // certificates already vouch for each one individually).
        let finished: Vec<&Measurement> = all.iter().filter(|m| !m.timed_out).collect();
        for pair in finished.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (oa, ob) = (
                a.objective.unwrap_or(f64::NAN),
                b.objective.unwrap_or(f64::NAN),
            );
            assert!(
                Tol::TIGHT.is_zero(oa - ob, oa.abs().max(1.0)),
                "objective mismatch at {rows} rows: {}={oa} vs {}={ob}",
                a.variant,
                b.variant
            );
        }
        curve.push((latches, rows, all));
    }

    if quick {
        // Sparse-only anchor-size solve: the pivots_per_sec tripwire.
        let model = build_model(SIZES[ANCHOR]);
        let rows = model.num_constraints();
        let sparse = certified_solve(&model, SimplexVariant::SparseLu, "sparse-lu", None, pricing);
        print_row(rows, SIZES[ANCHOR], &sparse);
        let measured = sparse.pivots_per_sec();
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
        let reference = std::fs::read_to_string(path)
            .ok()
            .as_deref()
            .and_then(checked_in_throughput);
        match reference {
            Some(reference) => {
                let floor = reference * QUICK_THROUGHPUT_FRACTION;
                println!();
                println!(
                    "10k-row sparse throughput: {measured:.0} pivots/s \
                     (checked-in {reference:.0}, floor {floor:.0})"
                );
                assert!(
                    measured >= floor,
                    "sparse-LU throughput regression at {rows} rows: {measured:.0} pivots/s \
                     is below {QUICK_THROUGHPUT_FRACTION}x the checked-in {reference:.0}"
                );
            }
            None => println!("(no sparse_pivots_per_sec_10k in BENCH_scale.json; gate skipped)"),
        }
        println!("(quick mode: BENCH_scale.json left untouched)");
        return;
    }

    let (_, anchor_rows, anchor) = &curve[ANCHOR];
    let sparse_s = anchor[0].seconds;
    let dense_s = anchor[2].seconds;
    let speedup = dense_s / sparse_s;
    let sparse_pps_10k = anchor[0].pivots_per_sec();
    println!();
    println!(
        "anchor size ({anchor_rows} rows): sparse {sparse_s:.3}s vs dense {dense_s:.3}s{} -> {speedup:.1}x",
        if anchor[2].timed_out {
            " (deadline lower bound)"
        } else {
            ""
        }
    );

    let mut sizes_json = String::new();
    for (latches, rows, all) in &curve {
        if !sizes_json.is_empty() {
            sizes_json.push_str(",\n");
        }
        let mut variants = String::new();
        for m in all {
            if !variants.is_empty() {
                variants.push_str(", ");
            }
            variants.push_str(&format!(
                "\"{}\": {{\"seconds\": {:.3}, \"iterations\": {}, \"timed_out\": {}, \
                 \"pivots_per_sec\": {:.1}",
                m.variant,
                m.seconds,
                m.iterations,
                m.timed_out,
                m.pivots_per_sec()
            ));
            if let Some(st) = &m.stats {
                variants.push_str(&format!(
                    ", \"refactorizations\": {}, \"eta_fill\": {}, \"factor_nnz\": {}",
                    st.refactorizations, st.peak_eta_nnz, st.factor_nnz
                ));
            }
            variants.push('}');
        }
        sizes_json.push_str(&format!(
            "    {{\"latches\": {latches}, \"rows\": {rows}, {variants}}}"
        ));
    }
    let json = format!(
        "{{\n  \"_schema\": \"rows-vs-seconds scaling curve on seeded pipelined datapaths \
         (smo gen, seed 7); per size and variant one certified cycle-time LP solve; \
         timed_out=true means the solve hit its deadline (max(10s, 12 x sparse seconds), \
         capped at 60s past the 10k-row anchor where dense/revised are pure lower bounds) \
         and seconds is the elapsed lower bound at abort, never an extrapolation; \
         variants that finish must agree on verdict and objective to Tol::TIGHT; \
         eta_fill is the peak eta-file nonzero count between refactorizations; \
         gate (single source of truth, like the speedup >= 2 gate in BENCH_sweep.json): \
         at the anchor (10k-row) size dense_seconds / sparse_seconds must stay >= \
         {MIN_SPEEDUP}, and quick mode re-measures sparse pivots_per_sec there against \
         sparse_pivots_per_sec_10k\",\
         \n  \"seed\": 7,\n  \"sizes\": [\n{sizes_json}\n  ],\n  \
         \"largest_speedup_dense_over_sparse\": {speedup:.2},\n  \
         \"sparse_pivots_per_sec_10k\": {sparse_pps_10k:.1}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json).expect("write BENCH_scale.json");
    println!("wrote {path}");

    assert!(
        speedup >= MIN_SPEEDUP,
        "scaling regression: sparse-LU only {speedup:.1}x faster than dense at {anchor_rows} \
         rows (gate: >= {MIN_SPEEDUP}x)"
    );
}
