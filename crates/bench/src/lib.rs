//! # smo-bench — experiment harness for the SMO reproduction
//!
//! One binary per table/figure of the paper (see DESIGN.md for the index):
//!
//! | target | regenerates |
//! |---|---|
//! | `fig1_appendix` | Fig. 1 / appendix constraint listing |
//! | `fig3_clocks` | Fig. 3 clock templates |
//! | `fig4_geometry` | Fig. 4 Theorem-1 geometry |
//! | `fig6_diagrams` | Fig. 6 Example-1 timing diagrams |
//! | `fig7_sweep` | Fig. 7 `T_c` vs `Δ41` |
//! | `fig9_example2` | Figs. 8–9 Example-2 comparison |
//! | `fig11_gaas` | Figs. 10–11 GaAs MIPS schedule |
//! | `table1_transistors` | Table I |
//! | `constraint_counts` | §IV/§V scalar observations |
//! | `run_all` | everything above, in order |
//!
//! plus the Criterion benches under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Prints a section header in the experiment logs.
pub fn header(title: &str) {
    println!();
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Runs `f`, printing its wall-clock time with the given label.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!("[{label}: {:.3} ms]", start.elapsed().as_secs_f64() * 1e3);
    out
}

/// Formats a row of an ASCII table with fixed column widths.
pub fn row(cols: &[&str], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cols.iter().zip(widths) {
        s.push_str(&format!("{c:>w$}  ", w = w));
    }
    s.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_pads_columns() {
        let s = row(&["a", "bb"], &[3, 4]);
        assert_eq!(s, "  a    bb");
    }

    #[test]
    fn timed_returns_value() {
        assert_eq!(timed("noop", || 42), 42);
    }
}
