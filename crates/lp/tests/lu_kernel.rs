//! Property tests driving the sparse LU kernel ([`LuFactors`]) directly,
//! independent of the simplex loop that normally sits on top of it:
//!
//! * `reconstruct()` reproduces the factorized matrix (the `L·U` product
//!   with both permutations undone equals `B` entrywise);
//! * FTRAN (`solve`) and BTRAN (`solve_transpose`) leave tiny residuals
//!   against the original columns;
//! * Forrest–Tomlin eta updates are exact: after `k` random column
//!   replacements the updated factors solve identically to a fresh
//!   factorization of the mutated matrix.
//!
//! Matrices are random, sparse, and strictly diagonally dominant by
//! columns — nonsingular by construction at every step, so any `Err` or
//! blown-up residual is the kernel's fault, not the generator's.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smo_lp::{LuFactors, LuWorkspace, ScatterVec};

type Cols = Vec<Vec<(usize, f64)>>;

/// Random sparse `m×m` matrix in column-major sparse form, strictly
/// diagonally dominant by columns (hence nonsingular).
fn random_matrix(m: usize, rng: &mut StdRng) -> Cols {
    (0..m).map(|j| dominant_column(m, j, rng)).collect()
}

/// A sparse column whose entry on row `j` strictly dominates the rest of
/// the column — swapping it into position `j` of a dominant matrix keeps
/// the whole matrix dominant, hence nonsingular.
fn dominant_column(m: usize, j: usize, rng: &mut StdRng) -> Vec<(usize, f64)> {
    let mut col = Vec::new();
    let mut off = 0.0;
    for i in 0..m {
        if i != j && rng.gen_range(0.0..1.0) < 0.3 {
            let v = rng.gen_range(-1.0..1.0_f64);
            if v.abs() > 1e-3 {
                col.push((i, v));
                off += v.abs();
            }
        }
    }
    col.push((
        j,
        (off + rng.gen_range(1.0..3.0))
            * if rng.gen_range(0.0..1.0) < 0.5 {
                -1.0
            } else {
                1.0
            },
    ));
    col.sort_by_key(|&(i, _)| i);
    col
}

/// Dense `B · x` for column-major sparse `B` and position-space `x`.
fn apply(cols: &Cols, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    for (j, col) in cols.iter().enumerate() {
        for &(i, v) in col {
            out[i] += v * x[j];
        }
    }
    out
}

/// Dense `Bᵀ · y`: component `j` is `⟨column_j, y⟩`.
fn apply_transpose(cols: &Cols, y: &[f64]) -> Vec<f64> {
    cols.iter()
        .map(|col| col.iter().map(|&(i, v)| v * y[i]).sum())
        .collect()
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `reconstruct()` (L·U with both permutations undone) equals the
    /// input matrix entrywise.
    #[test]
    fn prop_lu_reconstructs_its_input(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(2..=24usize);
        let cols = random_matrix(m, &mut rng);
        let lu = LuFactors::factorize(m, &cols).expect("dominant matrix factorizes");

        let mut dense = vec![vec![0.0; m]; m];
        for (j, col) in cols.iter().enumerate() {
            for &(i, v) in col {
                dense[i][j] = v;
            }
        }
        let rebuilt = lu.reconstruct();
        for i in 0..m {
            prop_assert!(
                max_abs_diff(&rebuilt[i], &dense[i]) <= 1e-9,
                "row {i} drifted (seed {seed}, m {m})"
            );
        }
    }

    /// FTRAN and BTRAN residuals: `B·solve(b) ≈ b` and
    /// `Bᵀ·solve_transpose(c) ≈ c`.
    #[test]
    fn prop_lu_solve_residuals_are_tiny(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(2..=32usize);
        let cols = random_matrix(m, &mut rng);
        let lu = LuFactors::factorize(m, &cols).expect("dominant matrix factorizes");

        let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let x = lu.solve(&b);
        prop_assert!(
            max_abs_diff(&apply(&cols, &x), &b) <= 1e-8,
            "FTRAN residual too large (seed {seed}, m {m})"
        );

        let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let y = lu.solve_transpose(&c);
        prop_assert!(
            max_abs_diff(&apply_transpose(&cols, &y), &c) <= 1e-8,
            "BTRAN residual too large (seed {seed}, m {m})"
        );
    }

    /// Eta-updated factors are the factorization of the mutated matrix:
    /// after `k` random column swaps, `solve`/`solve_transpose` agree with
    /// a fresh factorization to machine precision.
    #[test]
    fn prop_lu_eta_updates_match_fresh_refactorization(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(3..=24usize);
        let mut cols = random_matrix(m, &mut rng);
        let mut lu = LuFactors::factorize(m, &cols).expect("dominant matrix factorizes");

        let k = rng.gen_range(1..=6usize);
        for _ in 0..k {
            let pos = rng.gen_range(0..m);
            let replacement = dominant_column(m, pos, &mut rng);
            lu.replace_column(pos, &replacement)
                .expect("dominant replacement keeps the basis nonsingular");
            cols[pos] = replacement;
        }
        prop_assert!(lu.eta_count() >= 1, "updates must go through the eta file");

        let fresh = LuFactors::factorize(m, &cols).expect("mutated matrix factorizes");
        let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-10.0..10.0)).collect();
        prop_assert!(
            max_abs_diff(&lu.solve(&b), &fresh.solve(&b)) <= 1e-8,
            "updated FTRAN drifted from refactorization (seed {seed}, m {m}, k {k})"
        );
        let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-10.0..10.0)).collect();
        prop_assert!(
            max_abs_diff(&lu.solve_transpose(&c), &fresh.solve_transpose(&c)) <= 1e-8,
            "updated BTRAN drifted from refactorization (seed {seed}, m {m}, k {k})"
        );
    }

    /// The hypersparse scatter kernels agree with the dense wrappers on
    /// *sparse* right-hand sides — the case the symbolic reachability
    /// phase actually prunes — including through a nonempty eta file.
    #[test]
    fn prop_scatter_kernels_match_dense_wrappers(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(3..=32usize);
        let mut cols = random_matrix(m, &mut rng);
        let mut lu = LuFactors::factorize(m, &cols).expect("dominant matrix factorizes");
        for _ in 0..rng.gen_range(0..=4usize) {
            let pos = rng.gen_range(0..m);
            let replacement = dominant_column(m, pos, &mut rng);
            lu.replace_column(pos, &replacement).expect("nonsingular");
            cols[pos] = replacement;
        }

        // A right-hand side with 1..=3 nonzeros, as the simplex sees:
        // incoming columns and unit vectors, not dense data.
        let nnz = rng.gen_range(1..=3usize.min(m));
        let mut rhs: Vec<(usize, f64)> = Vec::new();
        while rhs.len() < nnz {
            let i = rng.gen_range(0..m);
            if rhs.iter().all(|&(j, _)| j != i) {
                rhs.push((i, rng.gen_range(-5.0..5.0)));
            }
        }
        rhs.sort_by_key(|&(i, _)| i);
        let mut dense_rhs = vec![0.0; m];
        for &(i, v) in &rhs {
            dense_rhs[i] = v;
        }

        let mut ws = LuWorkspace::new(m);
        let mut out = ScatterVec::new(m);
        lu.ftran_scatter(&rhs, &mut ws, &mut out);
        prop_assert!(
            max_abs_diff(&out.to_dense(), &lu.solve(&dense_rhs)) <= 1e-10,
            "hypersparse FTRAN drifted from the dense wrapper (seed {seed}, m {m})"
        );
        prop_assert!(
            out.touched().windows(2).all(|w| w[0] < w[1]),
            "FTRAN touched list must come back sorted (seed {seed})"
        );

        lu.btran_scatter(&rhs, &mut ws, &mut out);
        prop_assert!(
            max_abs_diff(&out.to_dense(), &lu.solve_transpose(&dense_rhs)) <= 1e-10,
            "hypersparse BTRAN drifted from the dense wrapper (seed {seed}, m {m})"
        );
        prop_assert!(
            out.touched().windows(2).all(|w| w[0] < w[1]),
            "BTRAN touched list must come back sorted (seed {seed})"
        );
    }

    /// Pathological eta chains: many successive replacements of the *same*
    /// column (the worst case for product-form update error) still solve
    /// like a fresh factorization, and the fill counters stay honest.
    #[test]
    fn prop_long_eta_chains_match_fresh_refactorization(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(4..=16usize);
        let mut cols = random_matrix(m, &mut rng);
        let mut lu = LuFactors::factorize(m, &cols).expect("dominant matrix factorizes");

        // 32 updates on a rotating handful of positions: eta entries pile
        // onto the same slots over and over.
        let hot: Vec<usize> = (0..3).map(|_| rng.gen_range(0..m)).collect();
        for t in 0..32usize {
            let pos = hot[t % hot.len()];
            let replacement = dominant_column(m, pos, &mut rng);
            lu.replace_column(pos, &replacement).expect("nonsingular");
            cols[pos] = replacement;
        }
        prop_assert_eq!(lu.eta_count(), 32);
        let nnz_sum: usize = lu.eta_nnz();
        prop_assert!(nnz_sum >= 32, "every eta carries at least its pivot");

        let fresh = LuFactors::factorize(m, &cols).expect("mutated matrix factorizes");
        let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-10.0..10.0)).collect();
        prop_assert!(
            max_abs_diff(&lu.solve(&b), &fresh.solve(&b)) <= 1e-6,
            "32-eta FTRAN drifted from refactorization (seed {seed}, m {m})"
        );
        let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-10.0..10.0)).collect();
        prop_assert!(
            max_abs_diff(&lu.solve_transpose(&c), &fresh.solve_transpose(&c)) <= 1e-6,
            "32-eta BTRAN drifted from refactorization (seed {seed}, m {m})"
        );
    }
}
