//! Serializable basis snapshots for warm-started solves.
//!
//! A [`Basis`] records *which* standard-form columns were basic at an
//! optimal solve, in problem-structure terms (user variable / slack /
//! surplus / artificial of a standard row) rather than raw column indices,
//! so a snapshot survives being applied to a *rebuilt* tableau of the same
//! model — the situation every sweep-style workload is in after perturbing
//! a right-hand side.
//!
//! Snapshots are captured automatically on every optimal
//! [`Solution`](crate::Solution) (see [`Solution::basis`](crate::Solution::basis))
//! and re-entered through [`Problem::solve_from_basis`](crate::Problem::solve_from_basis).
//! Re-entry is *best effort by construction*: a snapshot that no longer
//! matches the problem's standard form (dimensions changed, a row's RHS
//! normalization flipped, a column disappeared) silently falls back to a
//! cold two-phase solve, so warm starts can never change a verdict — only
//! the work needed to reach it.
//!
//! Two pieces of derived data ride along:
//!
//! * `matrix_hash` — an FNV-1a hash over the standard-form constraint
//!   *matrix* (coefficients only; the RHS is deliberately excluded). Two
//!   problems with equal hashes have the same columns, so a factorization
//!   of this basis is valid for both — exactly the RHS-only perturbation
//!   case of delay sweeps.
//! * `factor` — a lazily cached dense `B⁻¹` for the revised simplex,
//!   shared across clones via `Arc` and filled in by the first warm solve
//!   that has to refactorize. Subsequent warm solves from the same
//!   snapshot (the per-topology cache of the sweep engine) skip the
//!   `O(m³)` rebuild entirely.

use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// What one basic column was, in problem-structure terms. Mirrors the
/// solver-internal `ColKind`, minus raw column indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum BasisEntry {
    /// A column of user variable `var` (`negative` = the `x⁻` half of a
    /// split free variable).
    Structural { var: usize, negative: bool },
    /// Slack of standard-form row `row`.
    Slack { row: usize },
    /// Surplus of standard-form row `row`.
    Surplus { row: usize },
    /// Artificial of standard-form row `row` (kept basic at zero on
    /// redundant rows).
    Artificial { row: usize },
}

/// A basis snapshot extracted from an optimal [`Solution`](crate::Solution),
/// usable to warm-start later solves of the same (or a perturbed) model.
///
/// See the [module docs](crate::basis) for the compatibility and fallback
/// rules. The snapshot is plain data (plus a shared factorization cache)
/// and is cheap to clone and to keep in per-topology caches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Basis {
    /// One entry per standard-form row, in basis-position order.
    pub(crate) entries: Vec<BasisEntry>,
    /// Fingerprint: number of user variables.
    pub(crate) num_vars: usize,
    /// Fingerprint: number of user constraint rows.
    pub(crate) user_rows: usize,
    /// Fingerprint: number of standard-form columns.
    pub(crate) ncols: usize,
    /// FNV-1a hash of the standard-form constraint matrix (no RHS).
    pub(crate) matrix_hash: u64,
    /// Cached dense `B⁻¹` of *this* basis, valid for any problem whose
    /// `matrix_hash` matches. Filled by the first revised warm solve that
    /// refactorizes; shared across clones.
    pub(crate) factor: OnceLock<Arc<Vec<Vec<f64>>>>,
}

impl Basis {
    /// Number of basic columns (= standard-form rows) in the snapshot.
    pub fn size(&self) -> usize {
        self.entries.len()
    }

    /// Hash of the standard-form constraint matrix the snapshot was taken
    /// from. Problems sharing this hash differ at most in their RHS, so a
    /// cached factorization of the basis applies to them directly.
    pub fn matrix_hash(&self) -> u64 {
        self.matrix_hash
    }

    /// `true` once a warm solve has cached a factorization of this basis.
    pub fn has_cached_factor(&self) -> bool {
        self.factor.get().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_factor_cache() {
        let b = Basis {
            entries: vec![BasisEntry::Slack { row: 0 }],
            num_vars: 1,
            user_rows: 1,
            ncols: 2,
            matrix_hash: 42,
            factor: OnceLock::new(),
        };
        assert!(!b.has_cached_factor());
        b.factor
            .set(Arc::new(vec![vec![1.0]]))
            .expect("first set succeeds");
        // A clone made *after* caching sees the same factor.
        let c = b.clone();
        assert!(c.has_cached_factor());
        assert!(Arc::ptr_eq(
            b.factor.get().expect("set"),
            c.factor.get().expect("cloned")
        ));
    }

    #[test]
    fn accessors_report_snapshot_shape() {
        let b = Basis {
            entries: vec![
                BasisEntry::Structural {
                    var: 0,
                    negative: false,
                },
                BasisEntry::Artificial { row: 1 },
            ],
            num_vars: 3,
            user_rows: 2,
            ncols: 7,
            matrix_hash: 7,
            factor: OnceLock::new(),
        };
        assert_eq!(b.size(), 2);
        assert_eq!(b.matrix_hash(), 7);
    }
}
