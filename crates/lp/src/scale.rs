//! Geometric-mean row/column equilibration.
//!
//! A rung of the recovery ladder
//! ([`Problem::solve_certified`](crate::Problem::solve_certified)): when a
//! solve of the raw model fails to certify — typically because delay data
//! mixes scales (picoseconds against seconds) and the simplex's phase-1
//! threshold misjudges residuals — the model is rescaled so every
//! coefficient magnitude is pulled toward 1, solved, and the solution
//! mapped back.
//!
//! Scaling is the classical alternating geometric-mean scheme: each row is
//! divided by `√(min·max)` of its absolute coefficients, then each column,
//! for a fixed number of passes. Every scale factor is rounded to a power
//! of two, so applying and undoing the scaling is *exact* in binary
//! floating point — the unscaled solution is bit-for-bit a rescaling of
//! the scaled one, and certificates are always evaluated on the original
//! problem in unscaled space.

use crate::expr::LinExpr;
use crate::problem::Problem;
use crate::solution::{Solution, Status};

/// Alternating row/column geometric-mean passes. Two are standard; the
/// scheme converges quickly and later passes change little.
const PASSES: usize = 2;

/// Row and column scale factors (all positive powers of two).
#[derive(Debug, Clone)]
pub(crate) struct Equilibration {
    /// Row `i` of the scaled problem is the original row times `row[i]`.
    pub row: Vec<f64>,
    /// Scaled variable `j` is the original divided by `col[j]`
    /// (`x = col[j] · x'`), i.e. column `j` is multiplied by `col[j]`.
    pub col: Vec<f64>,
}

/// Rounds a positive scale to the nearest power of two, so that applying
/// and undoing it is exact. Non-finite or degenerate inputs scale by 1.
fn pow2(s: f64) -> f64 {
    if !s.is_finite() || s <= 0.0 {
        return 1.0;
    }
    let e = s.log2().round();
    // Clamp to a safe exponent range; beyond this the model is hopeless
    // anyway and overflow would only make it worse.
    e.clamp(-512.0, 512.0).exp2()
}

/// Computes geometric-mean equilibration scales for `p` and returns the
/// scaled problem together with the factors needed to undo it.
pub(crate) fn equilibrate(p: &Problem) -> (Problem, Equilibration) {
    let m = p.rows.len();
    let n = p.vars.len();
    let mut row = vec![1.0f64; m];
    let mut col = vec![1.0f64; n];

    for _ in 0..PASSES {
        // Row pass: geometric mean of |a_ij · col_j| per row.
        for (i, r) in p.rows.iter().enumerate() {
            let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
            for (v, a) in r.expr.iter() {
                let mag = (a * row[i] * col[v.index()]).abs();
                if mag > 0.0 {
                    lo = lo.min(mag);
                    hi = hi.max(mag);
                }
            }
            if hi > 0.0 {
                row[i] *= pow2(1.0 / (lo * hi).sqrt());
            }
        }
        // Column pass: geometric mean per column of the row-scaled matrix.
        let (mut lo, mut hi) = (vec![f64::INFINITY; n], vec![0.0f64; n]);
        for (i, r) in p.rows.iter().enumerate() {
            for (v, a) in r.expr.iter() {
                let j = v.index();
                let mag = (a * row[i] * col[j]).abs();
                if mag > 0.0 {
                    lo[j] = lo[j].min(mag);
                    hi[j] = hi[j].max(mag);
                }
            }
        }
        for j in 0..n {
            if hi[j] > 0.0 {
                col[j] *= pow2(1.0 / (lo[j] * hi[j]).sqrt());
            }
        }
    }

    // Build the scaled problem: row i multiplied through by row[i]
    // (coefficients and rhs), variable j substituted x = col[j]·x′ (so
    // column j is multiplied by col[j], bounds divided).
    let mut scaled = p.clone();
    for (i, r) in scaled.rows.iter_mut().enumerate() {
        let mut expr = LinExpr::new();
        for (v, a) in r.expr.iter() {
            expr.add_term(v, a * row[i] * col[v.index()]);
        }
        r.expr = expr;
        r.rhs *= row[i];
    }
    for (j, v) in scaled.vars.iter_mut().enumerate() {
        // ±∞ / positive finite stays ±∞, as required.
        v.lower /= col[j];
        v.upper /= col[j];
    }
    if let Some((_, obj)) = scaled.objective.as_mut() {
        let constant = obj.constant();
        let mut expr = LinExpr::constant_expr(constant);
        for (v, c) in obj.iter() {
            expr.add_term(v, c * col[v.index()]);
        }
        *obj = expr;
    }

    (scaled, Equilibration { row, col })
}

impl Equilibration {
    /// Maps a solution of the scaled problem back to the original space
    /// (`original` is the unscaled problem, used to recompute slacks and
    /// the objective exactly on original data).
    pub(crate) fn unscale(&self, original: &Problem, scaled: &Solution) -> Solution {
        let mut out = scaled.clone();
        // The basis belongs to the *scaled* problem's standard form; it is
        // not a valid warm-start source for the original model.
        out.basis = None;
        for (x, k) in out.values.iter_mut().zip(&self.col) {
            *x *= k;
        }
        for (y, r) in out.duals.iter_mut().zip(&self.row) {
            *y *= r;
        }
        for (rc, k) in out.reduced_costs.iter_mut().zip(&self.col) {
            *rc /= k;
        }
        if let Some(y) = out.farkas.as_mut() {
            for (yi, r) in y.iter_mut().zip(&self.row) {
                *yi *= r;
            }
        }
        // Slacks and objective are recomputed on the *original* data.
        // Non-optimal verdicts (infeasible/unbounded) carry no point, so
        // there is nothing to evaluate.
        if out.values.len() == original.vars.len() {
            out.slacks = original
                .rows
                .iter()
                .map(|r| {
                    let lhs = r.expr.eval(&out.values);
                    match r.sense {
                        crate::problem::Sense::Le | crate::problem::Sense::Eq => r.rhs - lhs,
                        crate::problem::Sense::Ge => lhs - r.rhs,
                    }
                })
                .collect();
            if out.status == Status::Optimal {
                if let Some((_, obj)) = original.objective.as_ref() {
                    out.objective = Some(obj.eval(&out.values));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::Sense;

    #[test]
    fn pow2_rounds_and_guards() {
        assert_eq!(pow2(1.0), 1.0);
        assert_eq!(pow2(3.0), 4.0);
        assert_eq!(pow2(0.3), 0.25);
        assert_eq!(pow2(0.0), 1.0);
        assert_eq!(pow2(f64::NAN), 1.0);
        assert_eq!(pow2(f64::INFINITY), 1.0);
    }

    #[test]
    fn scaled_solve_unscales_to_the_original_optimum() {
        // Badly mixed magnitudes: coefficients spanning 1e-6..1e6.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(
            LinExpr::term(x, 1e6) + LinExpr::term(y, 2e-6),
            Sense::Ge,
            3e6,
        );
        p.constrain(LinExpr::term(y, 1e-6), Sense::Ge, 2e-6);
        p.minimize(LinExpr::term(x, 1e3) + LinExpr::term(y, 1e-3));

        let plain = p.solve().expect("solves");
        let (scaled, eq) = equilibrate(&p);
        let sol = eq.unscale(&p, &scaled.solve().expect("solves"));
        assert_eq!(sol.status(), Status::Optimal);
        let (a, b) = (
            plain.objective.expect("optimal"),
            sol.objective.expect("optimal"),
        );
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
            "objectives differ: {a} vs {b}"
        );
        // The unscaled solution certifies against the ORIGINAL problem.
        assert!(sol.certify(&p).is_valid(), "{}", sol.certify(&p));
    }

    #[test]
    fn scales_are_powers_of_two() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(LinExpr::term(x, 12345.0), Sense::Ge, 1.0);
        p.minimize(LinExpr::term(x, 1.0));
        let (_, eq) = equilibrate(&p);
        for s in eq.row.iter().chain(&eq.col) {
            assert_eq!(s.log2().fract(), 0.0, "{s} is not a power of two");
        }
    }
}
