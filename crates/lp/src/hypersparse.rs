//! Hypersparse triangular-solve kernels for the sparse-LU simplex.
//!
//! The PR-9 kernels scattered every FTRAN/BTRAN through a dense
//! `vec![0.0; m]`, so each of the ~4 solves per pivot cost `O(m)` even
//! when the result had a handful of nonzeros — the dominant per-iteration
//! cost at 10k+ rows. This module replaces them with the Gilbert–Peierls
//! discipline: a **symbolic phase** computes the result's nonzero pattern
//! by graph reachability over the factor dependency graphs (in
//! elimination-step space), and the **numeric phase** then touches only
//! the reached steps, so triangular-solve cost tracks the *result's*
//! nonzeros instead of the matrix dimension.
//!
//! Two pieces:
//!
//! * [`ScatterVec`] — an indexed sparse accumulator: a dense value array
//!   (exactly zero wherever untouched), a mark array, and a touched-index
//!   stack, giving `O(1)` random reads/writes and `O(nnz)` iteration and
//!   reset. This is the workspace shape every sparse-simplex code settles
//!   on; it is what makes "skip the zeros" safe rather than heuristic.
//! * [`LuWorkspace`] — the reusable per-core scratch (two step-space
//!   scatters plus the reachability stack), so the hot loop performs no
//!   per-solve allocation.
//!
//! The numeric phases visit reached steps in ascending (forward
//! substitution) or descending (backward substitution) elimination order
//! and accumulate entries in the same order as the dense loops they
//! replace, so results are bit-identical to the PR-9 kernels — the
//! scale-differential suite relies on that.

#![deny(clippy::unwrap_used, clippy::expect_used)]
// Index-heavy kernels: range loops are the clearest form here.
#![allow(clippy::needless_range_loop)]

/// An indexed sparse accumulator over a fixed index range `0..len`.
///
/// Invariant: `values[i] == 0.0` for every `i` not in `touched`. Reading
/// an untouched slot is therefore always valid and always yields exactly
/// `0.0`, which is what lets the numeric phases read "maybe zero"
/// operands without a membership test.
#[derive(Debug, Clone, Default)]
pub struct ScatterVec {
    values: Vec<f64>,
    mark: Vec<bool>,
    touched: Vec<usize>,
}

impl ScatterVec {
    /// A scatter vector over indices `0..len`, all zero.
    pub fn new(len: usize) -> Self {
        ScatterVec {
            values: vec![0.0; len],
            mark: vec![false; len],
            touched: Vec::new(),
        }
    }

    /// Index-range length (not the nonzero count).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no slot has been touched since the last clear.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Grows (or keeps) the index range; only used when a workspace is
    /// shared across factorizations of different sizes.
    pub fn ensure_len(&mut self, len: usize) {
        if self.values.len() < len {
            self.values.resize(len, 0.0);
            self.mark.resize(len, false);
        }
    }

    /// Current value at `i` (exactly `0.0` when untouched).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// The dense value array — valid to read at any index, zero wherever
    /// untouched. Lets `O(nnz)` dot products index it directly.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The touched indices, in insertion order unless
    /// [`ScatterVec::sort_touched`] was called. May include slots whose
    /// value cancelled back to exactly zero.
    #[inline]
    pub fn touched(&self) -> &[usize] {
        &self.touched
    }

    /// Writes `v` at `i`, marking the slot. Writing `0.0` to an untouched
    /// slot is a no-op (preserves the invariant cheaply).
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        if !self.mark[i] {
            if v == 0.0 {
                return;
            }
            self.mark[i] = true;
            self.touched.push(i);
        }
        self.values[i] = v;
    }

    /// Adds `v` at `i`, marking the slot.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) {
        if v == 0.0 {
            return;
        }
        if !self.mark[i] {
            self.mark[i] = true;
            self.touched.push(i);
        }
        self.values[i] += v;
    }

    /// Sorts the touched list ascending, so iteration visits slots in
    /// index order — the order the dense loops used, which keeps
    /// tie-breaking in the ratio test and eta-entry order deterministic
    /// and identical to the dense path.
    ///
    /// Hybrid: past 1/8 density a comparison sort costs more than a linear
    /// scan of the mark array, so the list is rebuilt by scanning instead
    /// — same membership, same ascending order, `O(len)` instead of
    /// `O(nnz log nnz)`. Simplex directions on chain-structured bases are
    /// routinely half-dense, so this branch is hot, not a corner case.
    pub fn sort_touched(&mut self) {
        if self.touched.len() * 8 > self.values.len() {
            self.touched.clear();
            for i in 0..self.mark.len() {
                if self.mark[i] {
                    self.touched.push(i);
                }
            }
        } else {
            self.touched.sort_unstable();
        }
    }

    /// Resets to all-zero in `O(touched)`.
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.values[i] = 0.0;
            self.mark[i] = false;
        }
        self.touched.clear();
    }

    /// The nonzero entries as `(index, value)` pairs, in touched order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.touched.iter().filter_map(move |&i| {
            let v = self.values[i];
            (v != 0.0).then_some((i, v))
        })
    }

    /// Densifies into a fresh `Vec` (compatibility wrapper paths only —
    /// the hot loops stay sparse).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.values.len()];
        for &i in &self.touched {
            out[i] = self.values[i];
        }
        out
    }

    /// Loads a sparse `(index, value)` list (replacing current contents).
    pub fn load(&mut self, entries: &[(usize, f64)]) {
        self.clear();
        for &(i, v) in entries {
            self.add(i, v);
        }
    }
}

/// Reachability scratch for the symbolic phases: an explicit DFS stack
/// (the factor graphs can be `m` deep — recursion would overflow), a
/// visited-mark array, and the output list of reached steps.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReachSet {
    visited: Vec<bool>,
    stack: Vec<usize>,
    pub(crate) list: Vec<usize>,
}

impl ReachSet {
    pub(crate) fn new(len: usize) -> Self {
        ReachSet {
            visited: vec![false; len],
            stack: Vec::new(),
            list: Vec::new(),
        }
    }

    pub(crate) fn ensure_len(&mut self, len: usize) {
        if self.visited.len() < len {
            self.visited.resize(len, false);
        }
    }

    /// Clears the previous reach in `O(|list|)`.
    pub(crate) fn clear(&mut self) {
        for &i in &self.list {
            self.visited[i] = false;
        }
        self.list.clear();
        self.stack.clear();
    }

    /// Seeds the DFS with `node` if not already visited.
    #[inline]
    pub(crate) fn seed(&mut self, node: usize) {
        if !self.visited[node] {
            self.visited[node] = true;
            self.stack.push(node);
            self.list.push(node);
        }
    }

    /// Runs the DFS to exhaustion, where `neighbors(k, f)` calls `f` on
    /// every successor of `k`. On return, `list` holds every node
    /// reachable from the seeds (seeds included), unordered.
    pub(crate) fn run<N>(&mut self, mut neighbors: N)
    where
        N: FnMut(usize, &mut dyn FnMut(usize)),
    {
        while let Some(k) = self.stack.pop() {
            // Split borrows: collect new nodes through a closure that only
            // touches `visited`/`list`, then push onto the stack.
            let start = self.list.len();
            let visited = &mut self.visited;
            let list = &mut self.list;
            neighbors(k, &mut |next: usize| {
                if !visited[next] {
                    visited[next] = true;
                    list.push(next);
                }
            });
            for idx in start..self.list.len() {
                self.stack.push(self.list[idx]);
            }
        }
    }

    /// Sorts the reached list ascending (forward passes) — callers needing
    /// descending order iterate it in reverse.
    ///
    /// Hybrid like [`ScatterVec::sort_touched`]: when the reach covers
    /// more than 1/8 of `len` nodes, rebuild the list by scanning the
    /// visited marks (`O(len)`) instead of sorting (`O(n log n)`) — on a
    /// dense reach the sort is what turns a triangular solve superlinear.
    pub(crate) fn sort(&mut self, len: usize) {
        if self.list.len() * 8 > len {
            self.list.clear();
            for k in 0..len.min(self.visited.len()) {
                if self.visited[k] {
                    self.list.push(k);
                }
            }
        } else {
            self.list.sort_unstable();
        }
    }
}

/// Reusable scratch for the hypersparse FTRAN/BTRAN kernels: no per-solve
/// allocation in the pivot loop. One per [`SparseCore`]
/// (crate-internal); the dense compatibility wrappers build a throwaway
/// one per call.
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace {
    /// Row/position-space scatter (FTRAN's L-pass accumulator, BTRAN's
    /// eta/Uᵀ accumulator).
    pub(crate) work: ScatterVec,
    /// Step-space scatter (BTRAN's `z`).
    pub(crate) steps: ScatterVec,
    /// Reachability scratch shared by both symbolic phases of one solve.
    pub(crate) reach: ReachSet,
    /// Second reach set: FTRAN/BTRAN each run two symbolic phases whose
    /// reaches must coexist.
    pub(crate) reach2: ReachSet,
}

impl LuWorkspace {
    /// Workspace for factorizations of dimension `m`.
    pub fn new(m: usize) -> Self {
        LuWorkspace {
            work: ScatterVec::new(m),
            steps: ScatterVec::new(m),
            reach: ReachSet::new(m),
            reach2: ReachSet::new(m),
        }
    }

    /// Grows the workspace to dimension `m` if needed.
    pub fn ensure(&mut self, m: usize) {
        self.work.ensure_len(m);
        self.steps.ensure_len(m);
        self.reach.ensure_len(m);
        self.reach2.ensure_len(m);
    }

    pub(crate) fn clear(&mut self) {
        self.work.clear();
        self.steps.clear();
        self.reach.clear();
        self.reach2.clear();
    }
}

use crate::error::LpError;
use crate::sparse::LuFactors;

impl LuFactors {
    /// Hypersparse FTRAN: solves `B·x = b` where `b` is a sparse
    /// `(original row, value)` list and the result lands in the
    /// position-indexed scatter `x` with its touched list sorted
    /// ascending. Eta updates are applied, so the result is for the
    /// current (updated) basis. Produces the same values as the dense
    /// [`LuFactors::solve`] loop — the symbolic reach is a superset of the
    /// true nonzero pattern, and untouched scatter slots read as exact
    /// zero, so skipped steps contribute exactly what the dense pass
    /// computed for them: nothing.
    pub fn ftran_scatter(&self, b: &[(usize, f64)], ws: &mut LuWorkspace, x: &mut ScatterVec) {
        ws.ensure(self.m);
        ws.clear();
        x.ensure_len(self.m);
        x.clear();

        // --- L forward pass (row space) ------------------------------
        // Step k reads its pivot row and scatters into later rows, so
        // nonzeros propagate along lower[k] edges mapped to step indices.
        for &(r, v) in b {
            ws.work.add(r, v);
            ws.reach.seed(self.row_step[r]);
        }
        let lower = &self.lower;
        let row_step = &self.row_step;
        ws.reach.run(|k, f| {
            for &(r, _) in &lower[k] {
                f(row_step[r]);
            }
        });
        ws.reach.sort(self.m);
        for &k in &ws.reach.list {
            let w = ws.work.get(self.prow[k]);
            if w != 0.0 {
                for &(r, mult) in &self.lower[k] {
                    ws.work.add(r, -mult * w);
                }
            }
        }

        // --- U backward pass (row space -> position space) -----------
        // Step k's result depends on later steps through upper[k]; the
        // dirty set is the reverse-reach from the seeds along u_rev.
        for &r in ws.work.touched() {
            if ws.work.get(r) != 0.0 {
                ws.reach2.seed(self.row_step[r]);
            }
        }
        let u_rev = &self.u_rev;
        ws.reach2.run(|k, f| {
            for &k2 in &u_rev[k] {
                f(k2);
            }
        });
        ws.reach2.sort(self.m);
        for &k in ws.reach2.list.iter().rev() {
            let mut t = ws.work.get(self.prow[k]);
            for &(pos, v) in &self.upper[k] {
                t -= v * x.get(pos);
            }
            x.set(self.pcol[k], t / self.pivots[k]);
        }

        // --- eta file, in order (position space) ---------------------
        for eta in &self.etas {
            let xr = x.get(eta.pos) / eta.pivot;
            if xr != 0.0 {
                for &(i, d) in &eta.entries {
                    x.add(i, -d * xr);
                }
            }
            // Unconditional like the dense loop: x[pos] may underflow to
            // zero while having been nonzero (huge pivot).
            x.set(eta.pos, xr);
        }
        x.sort_touched();
    }

    /// Hypersparse BTRAN: solves `Bᵀ·y = c` where `c` is a sparse
    /// `(basis position, value)` list and the result lands in the
    /// row-indexed scatter `y` with its touched list sorted ascending.
    /// The transposed eta pass is inherently `O(eta_nnz)` — bounding it is
    /// the refactorization trigger's job — but both triangular passes are
    /// reachability-pruned like the FTRAN.
    pub fn btran_scatter(&self, c: &[(usize, f64)], ws: &mut LuWorkspace, y: &mut ScatterVec) {
        ws.ensure(self.m);
        ws.clear();
        y.ensure_len(self.m);
        y.clear();

        // --- transposed eta file, reverse order (position space) -----
        for &(pos, v) in c {
            ws.work.add(pos, v);
        }
        for eta in self.etas.iter().rev() {
            let mut t = ws.work.get(eta.pos);
            for &(i, d) in &eta.entries {
                t -= ws.work.get(i) * d;
            }
            ws.work.set(eta.pos, t / eta.pivot);
        }

        // --- Uᵀ forward pass (position space -> step space) ----------
        for &pos in ws.work.touched() {
            if ws.work.get(pos) != 0.0 {
                ws.reach.seed(self.col_step[pos]);
            }
        }
        let upper = &self.upper;
        let col_step = &self.col_step;
        ws.reach.run(|k, f| {
            for &(pos, _) in &upper[k] {
                f(col_step[pos]);
            }
        });
        ws.reach.sort(self.m);
        for &k in &ws.reach.list {
            let zk = ws.work.get(self.pcol[k]) / self.pivots[k];
            ws.steps.set(k, zk);
            if zk != 0.0 {
                for &(pos, v) in &self.upper[k] {
                    ws.work.add(pos, -v * zk);
                }
            }
        }

        // --- Lᵀ backward pass (step space, in place) -----------------
        // w[k] depends on w at later steps via lower[k]; dirty set is the
        // reverse-reach from nonzero z along l_rev. In-place is safe:
        // step k's own slot is read exactly once, at step k.
        for &k in ws.steps.touched() {
            if ws.steps.get(k) != 0.0 {
                ws.reach2.seed(k);
            }
        }
        let l_rev = &self.l_rev;
        ws.reach2.run(|k, f| {
            for &k2 in &l_rev[k] {
                f(k2);
            }
        });
        ws.reach2.sort(self.m);
        for &k in ws.reach2.list.iter().rev() {
            let mut t = ws.steps.get(k);
            for &(r, mult) in &self.lower[k] {
                t -= mult * ws.steps.get(self.row_step[r]);
            }
            ws.steps.set(k, t);
        }

        // --- scatter w back to original rows -------------------------
        for &k in ws.steps.touched() {
            let v = ws.steps.get(k);
            if v != 0.0 {
                y.set(self.prow[k], v);
            }
        }
        y.sort_touched();
    }

    /// [`LuFactors::replace_column_with_direction`] taking the FTRAN
    /// direction as a scatter with a **sorted** touched list (as the
    /// kernels produce), so eta entries are harvested in `O(nnz(d))`.
    ///
    /// # Errors
    ///
    /// [`LpError::Numerical`] when `|d[pos]|` is ~0; the factors are left
    /// unchanged in that case.
    pub fn replace_column_scatter(
        &mut self,
        pos: usize,
        direction: &ScatterVec,
    ) -> Result<(), LpError> {
        debug_assert!(direction.touched().windows(2).all(|w| w[0] < w[1]));
        let pivot = direction.get(pos);
        if pivot.abs() < 1e-12 {
            return Err(LpError::Numerical {
                context: "sparse LU update (singular replacement column)".into(),
            });
        }
        let entries: Vec<(usize, f64)> = direction
            .iter_nonzero()
            .filter(|&(i, _)| i != pos)
            .collect();
        self.push_eta(pos, pivot, entries);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn scatter_invariant_holds_through_set_add_clear() {
        let mut s = ScatterVec::new(5);
        assert!(s.is_empty());
        s.set(3, 0.0); // no-op on untouched slot
        assert!(s.is_empty());
        s.add(1, 2.0);
        s.add(1, -2.0); // cancels, stays touched
        s.set(4, 7.0);
        assert_eq!(s.get(1), 0.0);
        assert_eq!(s.get(4), 7.0);
        assert_eq!(s.get(0), 0.0);
        let nz: Vec<_> = s.iter_nonzero().collect();
        assert_eq!(nz, vec![(4, 7.0)]);
        assert_eq!(s.to_dense(), vec![0.0, 0.0, 0.0, 0.0, 7.0]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.get(4), 0.0);
    }

    #[test]
    fn scatter_sort_orders_touched() {
        let mut s = ScatterVec::new(6);
        for &i in &[5, 2, 4, 0] {
            s.set(i, 1.0 + i as f64);
        }
        s.sort_touched();
        assert_eq!(s.touched(), &[0, 2, 4, 5]);
    }

    #[test]
    fn reach_explores_a_chain_iteratively() {
        // 0 -> 1 -> 2 -> ... -> n-1: would overflow a recursive DFS for
        // large n; the explicit stack must handle it.
        let n = 100_000;
        let mut r = ReachSet::new(n);
        r.seed(0);
        r.run(|k, f| {
            if k + 1 < n {
                f(k + 1);
            }
        });
        assert_eq!(r.list.len(), n);
        r.sort(n);
        assert_eq!(r.list[0], 0);
        assert_eq!(r.list[n - 1], n - 1);
        r.clear();
        assert!(r.list.is_empty());
    }

    #[test]
    fn reach_handles_diamonds_without_duplicates() {
        //   0 -> {1,2} -> 3
        let adj = [vec![1usize, 2], vec![3], vec![3], vec![]];
        let mut r = ReachSet::new(4);
        r.seed(0);
        r.run(|k, f| {
            for &n in &adj[k] {
                f(n);
            }
        });
        r.sort(4);
        assert_eq!(r.list, vec![0, 1, 2, 3]);
    }
}
