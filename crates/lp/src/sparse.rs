//! Sparse-LU revised simplex: CSC standard form, Markowitz-ordered basis
//! factorization with bounded-eta updates, and devex pricing.
//!
//! The third solver variant ([`SimplexVariant::SparseLu`]
//! (crate::SimplexVariant::SparseLu)), built for the 10k–100k-latch
//! netlists the paper's §VI scaling discussion anticipates. The existing
//! revised simplex ([`crate::revised`]) keeps a *dense* `B⁻¹` and rebuilds
//! it by `O(m³)` Gauss–Jordan every few hundred pivots — fine at the
//! paper's ~650-row scale, hopeless at 10k rows. This module removes every
//! dense `m×m` object:
//!
//! * **[`StdForm`]** — the standard-form constraint matrix assembled
//!   directly in compressed sparse columns. It is the *single source of
//!   truth* for the standard-form conventions (variable shifting and
//!   splitting, bound rows, RHS normalization, logical-column order, the
//!   FNV-1a matrix hash): the dense tableau of [`crate::simplex`] is
//!   densified *from* it, so a [`Basis`] snapshot, a cached
//!   `matrix_hash`, or a dual vector means exactly the same thing under
//!   all three variants by construction.
//! * **[`LuFactors`]** — a sparse LU factorization of the basis with
//!   Markowitz pivot ordering (minimize `(r−1)(c−1)` fill bound, subject
//!   to a relative stability threshold), forward/backward substitution in
//!   `O(nnz(L+U))`, and bounded product-form **eta updates** for column
//!   replacement — the Forrest–Tomlin-style "update, don't refactorize"
//!   discipline, with a fresh factorization forced once the eta file's
//!   length or fill crosses a budget. Public, so the factorization kernel
//!   is property-testable in isolation (`L·U = P·B·Q` residuals,
//!   update-equals-refactorization).
//! * **devex pricing** — reference-framework weights approximate
//!   steepest-edge at Dantzig cost, cutting pivot counts on the long thin
//!   models the large-circuit generator emits; the Bland anti-cycling
//!   fallback of the sibling variants is retained unchanged.
//!
//! Results remain interchangeable with the other variants at the
//! [`Solution`] level — same statuses, same optima, same certificates —
//! which `tests/scale_differential.rs` enforces on every shipped circuit,
//! the stress suite, random circuits, and generated 1k/5k-row models.

#![deny(clippy::unwrap_used, clippy::expect_used)]
// Index-heavy linear algebra: range loops are the clearest form here.
#![allow(clippy::needless_range_loop)]

use crate::basis::{Basis, BasisEntry};
use crate::error::LpError;
use crate::hypersparse::{LuWorkspace, ScatterVec};
use crate::pricing::{PartialPricer, Pricing};
use crate::problem::{Objective, Problem, Sense};
use crate::simplex::ColKind;
use crate::solution::{Solution, SolveStats, Status};
use crate::EPS;
use std::sync::OnceLock;

/// Hard cap on eta-file length between refactorizations — a safety valve
/// behind the fill-aware trigger ([`LuFactors::fill_exceeded`]), which is
/// what normally fires. The fill trigger compares *measured* eta fill
/// against the cost of the last factorization, so cheap (sparse) updates
/// can run much longer than the old fixed 64-eta interval while expensive
/// ones refactorize sooner.
const REFACTOR_ETAS: usize = 256;

/// Fill-aware refactorization: refactorize once the eta file carries more
/// nonzeros than `ETA_FILL_FACTOR ×` the last factorization's fill plus
/// [`ETA_FILL_SLACK`]. The factor balances the amortized cost of a
/// Markowitz refactorization against the `O(eta_nnz)` transposed eta pass
/// every BTRAN pays: measured at the 10k-row bench anchor, total solve
/// time is convex in this knob (71.9 s at 1, 16.8 s at 8, 13.2 s at 12,
/// 15.4 s at 16) and 12 sits at the bottom of the bowl. Deliberately
/// nnz-based, never wall-clock-based: solve trajectories stay
/// byte-deterministic at any `--jobs`.
const ETA_FILL_FACTOR: usize = 12;

/// Absolute slack under the fill trigger so near-identity factorizations
/// (tiny `factor_nnz`) still get a useful eta run.
const ETA_FILL_SLACK: usize = 1024;

/// How many smallest-count columns the Markowitz search examines per pivot.
const MARKOWITZ_CANDIDATES: usize = 8;

/// Relative stability threshold: a pivot must have magnitude at least
/// `MARKOWITZ_TAU` times the largest entry of its column.
const MARKOWITZ_TAU: f64 = 0.1;

/// A sparse column: `(row, value)` pairs sorted by row.
pub(crate) type SparseCol = Vec<(usize, f64)>;

/// How a user variable maps to standard-form columns.
#[derive(Debug, Clone, Copy)]
pub(crate) enum VarCols {
    /// Finite lower bound: `x = shift + x'`, one column.
    Shifted { col: usize, shift: f64 },
    /// Free variable: `x = x⁺ − x⁻`, two columns.
    Split { pos: usize, neg: usize },
}

/// The standard-form model in compressed sparse columns.
///
/// Built once per solve; the dense tableau densifies from it and the
/// sparse core consumes it directly, so every convention (column order,
/// `ColKind` assignment, RHS normalization, the matrix hash) is shared by
/// construction rather than by parallel reimplementation.
pub(crate) struct StdForm {
    /// Standard-form row count (user rows + finite-upper-bound rows).
    pub(crate) m: usize,
    /// Standard-form column count (structural + logical).
    pub(crate) ncols: usize,
    /// The constraint matrix, one sorted sparse column per index.
    pub(crate) cols: Vec<SparseCol>,
    /// Normalized (non-negative) right-hand sides.
    pub(crate) rhs: Vec<f64>,
    /// Parametric RHS direction, transformed alongside normalization.
    pub(crate) param: Vec<f64>,
    /// Phase-2 costs, already in minimize orientation.
    pub(crate) costs: Vec<f64>,
    /// What each column represents.
    pub(crate) col_kinds: Vec<ColKind>,
    /// Was row `r` negated during RHS normalization?
    pub(crate) row_flip: Vec<bool>,
    /// Per row: the logical column whose reduced cost yields the dual.
    pub(crate) dual_col: Vec<usize>,
    /// Leading standard rows that correspond 1:1 to user rows.
    pub(crate) user_rows: usize,
    /// `+1.0` minimize, `−1.0` maximize.
    pub(crate) sense_factor: f64,
    /// FNV-1a hash of the matrix coefficients (RHS excluded), identical to
    /// the dense tableau's hash for the same problem.
    pub(crate) matrix_hash: u64,
    /// The all-logical starting basis (slacks + artificials = identity).
    pub(crate) initial_basis: Vec<usize>,
    pub(crate) var_cols: Vec<VarCols>,
}

/// Accumulates one expression into a sparse structural row using a dense
/// scratch vector plus a touched-index list, so assembly is `O(nnz)` per
/// row instead of `O(nstruct)`. The accumulation arithmetic (`+=` on a
/// zero-initialized slot) is exactly the dense builder's, so coefficients
/// are bit-identical and the matrix hash agrees.
fn expr_to_sparse(
    expr: &crate::LinExpr,
    var_cols: &[VarCols],
    scratch: &mut [f64],
    mark: &mut [bool],
    touched: &mut Vec<usize>,
) -> (SparseCol, f64) {
    let mut shift_sum = 0.0;
    let touch = |col: usize, mark: &mut [bool], touched: &mut Vec<usize>| {
        if !mark[col] {
            mark[col] = true;
            touched.push(col);
        }
    };
    for (v, c) in expr.iter() {
        match var_cols[v.index()] {
            VarCols::Shifted { col, shift } => {
                touch(col, mark, touched);
                scratch[col] += c;
                shift_sum += c * shift;
            }
            VarCols::Split { pos, neg } => {
                touch(pos, mark, touched);
                scratch[pos] += c;
                touch(neg, mark, touched);
                scratch[neg] -= c;
            }
        }
    }
    touched.sort_unstable();
    let entries: SparseCol = touched
        .iter()
        .filter(|&&c| scratch[c] != 0.0)
        .map(|&c| (c, scratch[c]))
        .collect();
    for &c in touched.iter() {
        scratch[c] = 0.0;
        mark[c] = false;
    }
    touched.clear();
    (entries, shift_sum)
}

impl StdForm {
    /// Builds the standard form of `p` with optional per-user-row RHS
    /// perturbation directions, mirroring the dense
    /// [`Tableau::build`](crate::simplex::Tableau) conventions exactly.
    pub(crate) fn build(p: &Problem, param: Option<&[f64]>) -> Result<StdForm, LpError> {
        let (direction, obj_expr) = p.objective.as_ref().ok_or(LpError::MissingObjective)?;
        let sense_factor = match direction {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };

        // --- variable mapping -------------------------------------------
        let mut var_cols = Vec::with_capacity(p.vars.len());
        let mut col_kinds: Vec<ColKind> = Vec::new();
        let mut bound_rows: Vec<(usize, f64)> = Vec::new();
        for (i, v) in p.vars.iter().enumerate() {
            if v.lower.is_finite() {
                let col = col_kinds.len();
                col_kinds.push(ColKind::Structural { var: i, sign: 1.0 });
                var_cols.push(VarCols::Shifted {
                    col,
                    shift: v.lower,
                });
            } else {
                let pos = col_kinds.len();
                col_kinds.push(ColKind::Structural { var: i, sign: 1.0 });
                let neg = col_kinds.len();
                col_kinds.push(ColKind::Structural { var: i, sign: -1.0 });
                var_cols.push(VarCols::Split { pos, neg });
            }
            if v.upper.is_finite() {
                bound_rows.push((i, v.upper));
            }
        }
        let nstruct = col_kinds.len();

        // --- assemble raw rows (sparse over structural columns) ---------
        struct RawRow {
            entries: SparseCol,
            sense: Sense,
            rhs: f64,
            param: f64,
        }
        let mut scratch = vec![0.0; nstruct];
        let mut mark = vec![false; nstruct];
        let mut touched: Vec<usize> = Vec::new();
        let mut raw: Vec<RawRow> = Vec::with_capacity(p.rows.len() + bound_rows.len());
        let zero_param = vec![0.0; p.rows.len()];
        let param = param.unwrap_or(&zero_param);
        debug_assert_eq!(param.len(), p.rows.len());

        for (i, row) in p.rows.iter().enumerate() {
            let (entries, shift_sum) =
                expr_to_sparse(&row.expr, &var_cols, &mut scratch, &mut mark, &mut touched);
            raw.push(RawRow {
                entries,
                sense: row.sense,
                rhs: row.rhs - shift_sum,
                param: param[i],
            });
        }
        for &(var, upper) in &bound_rows {
            let (entries, rhs) = match var_cols[var] {
                VarCols::Shifted { col, shift } => (vec![(col, 1.0)], upper - shift),
                VarCols::Split { pos, neg } => (vec![(pos, 1.0), (neg, -1.0)], upper),
            };
            raw.push(RawRow {
                entries,
                sense: Sense::Le,
                rhs,
                param: 0.0,
            });
        }

        // --- normalize RHS >= 0 -----------------------------------------
        let m = raw.len();
        let mut row_flip = vec![false; m];
        for (r, row) in raw.iter_mut().enumerate() {
            if row.rhs < 0.0 {
                row_flip[r] = true;
                for (_, v) in &mut row.entries {
                    *v = -*v;
                }
                row.rhs = -row.rhs;
                row.param = -row.param;
                row.sense = match row.sense {
                    Sense::Le => Sense::Ge,
                    Sense::Ge => Sense::Le,
                    Sense::Eq => Sense::Eq,
                };
            }
        }

        // --- logical columns --------------------------------------------
        let mut slack_col = vec![usize::MAX; m];
        let mut surplus_col = vec![usize::MAX; m];
        let mut art_col = vec![usize::MAX; m];
        for (r, row) in raw.iter().enumerate() {
            match row.sense {
                Sense::Le => {
                    slack_col[r] = col_kinds.len();
                    col_kinds.push(ColKind::Slack { row: r });
                }
                Sense::Ge => {
                    surplus_col[r] = col_kinds.len();
                    col_kinds.push(ColKind::Surplus { row: r });
                    art_col[r] = col_kinds.len();
                    col_kinds.push(ColKind::Artificial { row: r });
                }
                Sense::Eq => {
                    art_col[r] = col_kinds.len();
                    col_kinds.push(ColKind::Artificial { row: r });
                }
            }
        }
        let ncols = col_kinds.len();

        // --- rows with logical entries, basis, duals ---------------------
        // Logical column indices all exceed the structural ones and grow
        // with the row index, so appending them keeps each row sorted.
        let mut initial_basis = vec![usize::MAX; m];
        let mut dual_col = vec![usize::MAX; m];
        let mut rhs = vec![0.0; m];
        let mut params = vec![0.0; m];
        let mut rows: Vec<SparseCol> = Vec::with_capacity(m);
        for (r, row) in raw.iter().enumerate() {
            let mut entries = row.entries.clone();
            if slack_col[r] != usize::MAX {
                entries.push((slack_col[r], 1.0));
                initial_basis[r] = slack_col[r];
                dual_col[r] = slack_col[r];
            }
            if surplus_col[r] != usize::MAX {
                entries.push((surplus_col[r], -1.0));
            }
            if art_col[r] != usize::MAX {
                entries.push((art_col[r], 1.0));
                initial_basis[r] = art_col[r];
                dual_col[r] = art_col[r];
            }
            rhs[r] = row.rhs;
            params[r] = row.param;
            rows.push(entries);
        }

        // --- matrix hash (row-major over nonzeros, same as dense) --------
        let mut matrix_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for (r, row) in rows.iter().enumerate() {
            for &(j, v) in row {
                if v != 0.0 {
                    for word in [r as u64, j as u64, v.to_bits()] {
                        matrix_hash ^= word;
                        matrix_hash = matrix_hash.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                }
            }
        }

        // --- transpose rows -> CSC ---------------------------------------
        let mut cols: Vec<SparseCol> = vec![Vec::new(); ncols];
        for (r, row) in rows.iter().enumerate() {
            for &(j, v) in row {
                cols[j].push((r, v));
            }
        }

        // --- phase-2 costs (minimize orientation) -------------------------
        let mut costs = vec![0.0; ncols];
        let (obj_entries, _shift_sum) =
            expr_to_sparse(obj_expr, &var_cols, &mut scratch, &mut mark, &mut touched);
        for (c, v) in obj_entries {
            costs[c] = sense_factor * v;
        }

        Ok(StdForm {
            m,
            ncols,
            cols,
            rhs,
            param: params,
            costs,
            col_kinds,
            row_flip,
            dual_col,
            user_rows: p.rows.len(),
            sense_factor,
            matrix_hash,
            initial_basis,
            var_cols,
        })
    }

    /// Snapshots an arbitrary basic-column list as a [`Basis`] in
    /// problem-structure terms (shared semantics with the dense tableau).
    pub(crate) fn capture_basis_from(&self, basic: &[usize]) -> Basis {
        let entries = basic
            .iter()
            .map(|&b| match self.col_kinds[b] {
                ColKind::Structural { var, sign } => BasisEntry::Structural {
                    var,
                    negative: sign < 0.0,
                },
                ColKind::Slack { row } => BasisEntry::Slack { row },
                ColKind::Surplus { row } => BasisEntry::Surplus { row },
                ColKind::Artificial { row } => BasisEntry::Artificial { row },
            })
            .collect();
        Basis {
            entries,
            num_vars: self.var_cols.len(),
            user_rows: self.user_rows,
            ncols: self.ncols,
            matrix_hash: self.matrix_hash,
            factor: OnceLock::new(),
        }
    }

    /// Resolves a snapshot's entries to column indices of this standard
    /// form, or `None` when the snapshot no longer fits.
    pub(crate) fn basis_columns(&self, basis: &Basis) -> Option<Vec<usize>> {
        if basis.num_vars != self.var_cols.len()
            || basis.user_rows != self.user_rows
            || basis.ncols != self.ncols
            || basis.entries.len() != self.m
        {
            return None;
        }
        basis
            .entries
            .iter()
            .map(|e| {
                let want = match *e {
                    BasisEntry::Structural { var, negative } => ColKind::Structural {
                        var,
                        sign: if negative { -1.0 } else { 1.0 },
                    },
                    BasisEntry::Slack { row } => ColKind::Slack { row },
                    BasisEntry::Surplus { row } => ColKind::Surplus { row },
                    BasisEntry::Artificial { row } => ColKind::Artificial { row },
                };
                self.col_kinds.iter().position(|k| *k == want)
            })
            .collect()
    }

    /// Maps standard-form column values back to user variables.
    pub(crate) fn user_values_from(&self, cols: &[f64]) -> Vec<f64> {
        self.var_cols
            .iter()
            .map(|vc| match *vc {
                VarCols::Shifted { col, shift } => cols[col] + shift,
                VarCols::Split { pos, neg } => cols[pos] - cols[neg],
            })
            .collect()
    }

    /// Maps a standard-row dual vector to user-constraint duals (undoing
    /// normalization flips and the minimize orientation).
    pub(crate) fn map_duals(&self, y: &[f64]) -> Vec<f64> {
        (0..self.user_rows)
            .map(|r| {
                let v = if self.row_flip[r] { -y[r] } else { y[r] };
                self.sense_factor * v
            })
            .collect()
    }

    /// Maps a standard-row dual vector back to user rows undoing only the
    /// normalization flips (for phase-1 Farkas certificates; see the dense
    /// twin for why bound-row multipliers may be dropped).
    pub(crate) fn map_feasibility_duals(&self, y: &[f64]) -> Vec<f64> {
        (0..self.user_rows)
            .map(|r| if self.row_flip[r] { -y[r] } else { y[r] })
            .collect()
    }

    /// Maps standard-column reduced costs to user-variable reduced costs.
    pub(crate) fn map_reduced_costs(&self, z: &[f64]) -> Vec<f64> {
        self.var_cols
            .iter()
            .map(|vc| {
                let col = match *vc {
                    VarCols::Shifted { col, .. } => col,
                    VarCols::Split { pos, .. } => pos,
                };
                self.sense_factor * z[col]
            })
            .collect()
    }
}

/// One product-form eta update: basis position `pos` was replaced by a
/// column whose FTRAN direction had pivot `pivot` at `pos` and the given
/// sparse off-pivot entries (sorted by position).
pub(crate) struct Eta {
    pub(crate) pos: usize,
    pub(crate) pivot: f64,
    pub(crate) entries: Vec<(usize, f64)>,
}

/// A sparse LU factorization of a basis matrix with Markowitz pivot
/// ordering, plus a bounded product-form eta file for column replacements.
///
/// The factorization solves `B·x = b` ([`LuFactors::solve`]) and
/// `Bᵀ·y = c` ([`LuFactors::solve_transpose`]) in time proportional to the
/// factor fill, and absorbs simplex basis changes through
/// [`LuFactors::replace_column`] without refactorizing — the caller
/// refactorizes when [`LuFactors::eta_count`] / [`LuFactors::eta_nnz`]
/// cross its budget. Row indices address the original matrix rows; column
/// indices address basis *positions* (the order columns were passed to
/// [`LuFactors::factorize`]).
///
/// Exposed publicly so the kernel is testable in isolation; the solver
/// entry points remain [`Problem`]-level.
#[derive(Debug, Clone)]
pub struct LuFactors {
    pub(crate) m: usize,
    /// Elimination step -> pivot row (original index).
    pub(crate) prow: Vec<usize>,
    /// Elimination step -> pivot column (basis position).
    pub(crate) pcol: Vec<usize>,
    /// Original row -> elimination step.
    pub(crate) row_step: Vec<usize>,
    /// Basis position -> elimination step.
    pub(crate) col_step: Vec<usize>,
    /// Per step: L multipliers as `(original row, multiplier)`.
    pub(crate) lower: Vec<Vec<(usize, f64)>>,
    /// Per step: U off-pivot entries as `(basis position, value)`.
    pub(crate) upper: Vec<Vec<(usize, f64)>>,
    /// Per step: the pivot value.
    pub(crate) pivots: Vec<f64>,
    /// Reverse U dependencies in step space: `u_rev[s]` lists the steps
    /// `k < s` whose U row references step `s`'s pivot column. The
    /// hypersparse FTRAN's backward symbolic phase walks these edges.
    pub(crate) u_rev: Vec<Vec<usize>>,
    /// Reverse L dependencies in step space: `l_rev[s]` lists the steps
    /// `k < s` whose L column hits step `s`'s pivot row (for the
    /// hypersparse BTRAN's `Lᵀ` symbolic phase).
    pub(crate) l_rev: Vec<Vec<usize>>,
    pub(crate) etas: Vec<Eta>,
    pub(crate) eta_nnz: usize,
    /// `factor_nnz` cached at factorization time (the fill-trigger
    /// comparison runs every pivot).
    pub(crate) factor_fill: usize,
}

impl std::fmt::Debug for Eta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Eta")
            .field("pos", &self.pos)
            .field("pivot", &self.pivot)
            .field("nnz", &self.entries.len())
            .finish()
    }
}

impl Clone for Eta {
    fn clone(&self) -> Self {
        Eta {
            pos: self.pos,
            pivot: self.pivot,
            entries: self.entries.clone(),
        }
    }
}

impl LuFactors {
    /// Factorizes the `m × m` matrix whose `columns[pos]` lists sorted
    /// `(row, value)` pairs, choosing pivots by Markowitz count (minimal
    /// `(row_nnz−1)·(col_nnz−1)` fill bound among the lowest-count columns,
    /// subject to `|pivot| ≥ 0.1·colmax` for stability).
    ///
    /// # Errors
    ///
    /// [`LpError::Numerical`] when the matrix is structurally or
    /// numerically singular.
    pub fn factorize(m: usize, columns: &[SparseCol]) -> Result<LuFactors, LpError> {
        assert_eq!(columns.len(), m, "need exactly m columns");
        let singular = || LpError::Numerical {
            context: "sparse LU factorization (singular basis)".into(),
        };

        // Active rows as sorted (position, value) vectors.
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for (pos, col) in columns.iter().enumerate() {
            for &(r, v) in col {
                assert!(r < m, "row index out of range");
                if v != 0.0 {
                    rows[r].push((pos, v));
                }
            }
        }
        // Column -> candidate rows, maintained lazily (entries may be
        // stale; verified against `rows` on use).
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut col_count = vec![0usize; m];
        for (r, row) in rows.iter().enumerate() {
            for &(pos, _) in row {
                col_rows[pos].push(r);
                col_count[pos] += 1;
            }
        }
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];
        // Ordered (count, col) queue for Markowitz candidate selection.
        let mut queue: std::collections::BTreeSet<(usize, usize)> =
            (0..m).map(|c| (col_count[c], c)).collect();

        let mut prow = Vec::with_capacity(m);
        let mut pcol = Vec::with_capacity(m);
        let mut row_step = vec![usize::MAX; m];
        let mut col_step = vec![usize::MAX; m];
        let mut lower: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut upper: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut pivots = Vec::with_capacity(m);
        let mut merged: Vec<(usize, f64)> = Vec::new();

        for step in 0..m {
            // --- pick a pivot among the lowest-count columns -------------
            let candidates: Vec<(usize, usize)> =
                queue.iter().take(MARKOWITZ_CANDIDATES).copied().collect();
            let mut best: Option<(usize, usize, f64, usize)> = None; // (row, col, val, cost)
            for (stale_count, c) in candidates {
                // Compact this column's candidate rows and find its max.
                let lookup = |r: usize| -> Option<f64> {
                    rows[r]
                        .binary_search_by_key(&c, |&(p, _)| p)
                        .ok()
                        .map(|i| rows[r][i].1)
                };
                let mut live: Vec<(usize, f64)> = Vec::new();
                for &r in &col_rows[c] {
                    if row_active[r] {
                        if let Some(v) = lookup(r) {
                            live.push((r, v));
                        }
                    }
                }
                col_rows[c] = live.iter().map(|&(r, _)| r).collect();
                if col_count[c] != col_rows[c].len() || stale_count != col_rows[c].len() {
                    queue.remove(&(stale_count, c));
                    queue.remove(&(col_count[c], c));
                    col_count[c] = col_rows[c].len();
                    queue.insert((col_count[c], c));
                }
                if live.is_empty() {
                    return Err(singular());
                }
                let colmax = live.iter().map(|&(_, v)| v.abs()).fold(0.0, f64::max);
                if colmax < 1e-12 {
                    return Err(singular());
                }
                let threshold = MARKOWITZ_TAU * colmax;
                for &(r, v) in &live {
                    if v.abs() < threshold {
                        continue;
                    }
                    let cost = (rows[r].len() - 1) * (live.len() - 1);
                    let better = match best {
                        None => true,
                        Some((_, _, bv, bcost)) => {
                            cost < bcost || (cost == bcost && v.abs() > bv.abs())
                        }
                    };
                    if better {
                        best = Some((r, c, v, cost));
                    }
                }
                if best.is_some_and(|(_, _, _, cost)| cost == 0) {
                    break; // perfect pivot: no fill at all
                }
            }
            let Some((pr, pc, pv, _)) = best else {
                return Err(singular());
            };

            // --- record the pivot ----------------------------------------
            prow.push(pr);
            pcol.push(pc);
            pivots.push(pv);
            row_step[pr] = step;
            col_step[pc] = step;
            row_active[pr] = false;
            col_active[pc] = false;
            queue.remove(&(col_count[pc], pc));
            let pivot_row: Vec<(usize, f64)> =
                rows[pr].iter().copied().filter(|&(p, _)| p != pc).collect();
            // Every column in the pivot row loses pr from its active rows.
            for &(p, _) in &pivot_row {
                if col_active[p] {
                    queue.remove(&(col_count[p], p));
                    col_count[p] = col_count[p].saturating_sub(1);
                    queue.insert((col_count[p], p));
                }
            }
            upper.push(pivot_row.clone());

            // --- eliminate the pivot column from the other active rows ---
            let mut mults: Vec<(usize, f64)> = Vec::new();
            let targets: Vec<usize> = col_rows[pc]
                .iter()
                .copied()
                .filter(|&r| row_active[r])
                .collect();
            for r in targets {
                let Ok(i) = rows[r].binary_search_by_key(&pc, |&(p, _)| p) else {
                    continue; // stale col_rows entry
                };
                let mult = rows[r][i].1 / pv;
                mults.push((r, mult));
                // rows[r] <- rows[r] - mult * pivot_row, dropping pc.
                merged.clear();
                let mut a = rows[r].iter().copied().peekable();
                let mut b = pivot_row.iter().copied().peekable();
                loop {
                    match (a.peek().copied(), b.peek().copied()) {
                        (Some((pa, va)), Some((pb, vb))) => {
                            if pa < pb {
                                a.next();
                                if pa != pc {
                                    merged.push((pa, va));
                                }
                            } else if pb < pa {
                                b.next();
                                let nv = -mult * vb;
                                if nv != 0.0 {
                                    merged.push((pb, nv));
                                    if col_active[pb] {
                                        queue.remove(&(col_count[pb], pb));
                                        col_count[pb] += 1;
                                        queue.insert((col_count[pb], pb));
                                        col_rows[pb].push(r);
                                    }
                                }
                            } else {
                                a.next();
                                b.next();
                                let nv = va - mult * vb;
                                if nv != 0.0 {
                                    merged.push((pa, nv));
                                } else if col_active[pa] {
                                    // exact cancellation: column loses r
                                    queue.remove(&(col_count[pa], pa));
                                    col_count[pa] = col_count[pa].saturating_sub(1);
                                    queue.insert((col_count[pa], pa));
                                }
                            }
                        }
                        (Some((pa, va)), None) => {
                            a.next();
                            if pa != pc {
                                merged.push((pa, va));
                            }
                        }
                        (None, Some((pb, vb))) => {
                            b.next();
                            let nv = -mult * vb;
                            if nv != 0.0 {
                                merged.push((pb, nv));
                                if col_active[pb] {
                                    queue.remove(&(col_count[pb], pb));
                                    col_count[pb] += 1;
                                    queue.insert((col_count[pb], pb));
                                    col_rows[pb].push(r);
                                }
                            }
                        }
                        (None, None) => break,
                    }
                }
                std::mem::swap(&mut rows[r], &mut merged);
            }
            lower.push(mults);
        }

        // Reverse dependency lists in step space, one pass over the
        // factors: these are the graphs the hypersparse symbolic phases
        // traverse (see `hypersparse.rs`).
        let mut u_rev: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (k, row) in upper.iter().enumerate() {
            for &(pos, _) in row {
                u_rev[col_step[pos]].push(k);
            }
        }
        let mut l_rev: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (k, col) in lower.iter().enumerate() {
            for &(r, _) in col {
                l_rev[row_step[r]].push(k);
            }
        }
        let factor_fill = m
            + lower.iter().map(Vec::len).sum::<usize>()
            + upper.iter().map(Vec::len).sum::<usize>();

        Ok(LuFactors {
            m,
            prow,
            pcol,
            row_step,
            col_step,
            lower,
            upper,
            pivots,
            u_rev,
            l_rev,
            etas: Vec::new(),
            eta_nnz: 0,
            factor_fill,
        })
    }

    /// Dimension of the factored matrix.
    pub fn size(&self) -> usize {
        self.m
    }

    /// Number of eta updates applied since factorization.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Total nonzeros across the eta file (the update fill the caller's
    /// refactorization budget bounds).
    pub fn eta_nnz(&self) -> usize {
        self.eta_nnz
    }

    /// Nonzeros in the L and U factors (including pivots), excluding etas.
    pub fn factor_nnz(&self) -> usize {
        self.factor_fill
    }

    /// The fill-aware refactorization trigger: `true` once the eta file
    /// carries more fill than rebuilding the factors would
    /// (`eta_nnz > ETA_FILL_FACTOR × factor_nnz + ETA_FILL_SLACK`). The
    /// caller combines this with a hard [`LuFactors::eta_count`] cap.
    pub fn fill_exceeded(&self) -> bool {
        self.eta_nnz > ETA_FILL_FACTOR * self.factor_fill + ETA_FILL_SLACK
    }

    /// Solves `B·x = b` (FTRAN), where `b` is indexed by original row and
    /// the result by basis position. Eta updates are applied in order, so
    /// the result is for the *current* (updated) basis.
    ///
    /// Dense compatibility wrapper over [`LuFactors::ftran_scatter`]; the
    /// simplex hot loop calls the scatter kernel directly with a reused
    /// workspace.
    ///
    /// # Panics
    ///
    /// Panics when `b.len() != self.size()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.m);
        let sparse_b: Vec<(usize, f64)> = b
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        let mut ws = crate::hypersparse::LuWorkspace::new(self.m);
        let mut x = crate::hypersparse::ScatterVec::new(self.m);
        self.ftran_scatter(&sparse_b, &mut ws, &mut x);
        x.to_dense()
    }

    /// Solves `Bᵀ·y = c` (BTRAN), where `c` is indexed by basis position
    /// and the result by original row. Eta updates are applied (transposed,
    /// in reverse), so the result is for the current basis.
    ///
    /// Dense compatibility wrapper over [`LuFactors::btran_scatter`].
    ///
    /// # Panics
    ///
    /// Panics when `c.len() != self.size()`.
    pub fn solve_transpose(&self, c: &[f64]) -> Vec<f64> {
        assert_eq!(c.len(), self.m);
        let sparse_c: Vec<(usize, f64)> = c
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        let mut ws = crate::hypersparse::LuWorkspace::new(self.m);
        let mut y = crate::hypersparse::ScatterVec::new(self.m);
        self.btran_scatter(&sparse_c, &mut ws, &mut y);
        y.to_dense()
    }

    /// Replaces the basis column at `pos` with `column` (sorted sparse
    /// `(row, value)`), recording a product-form eta update.
    ///
    /// # Errors
    ///
    /// [`LpError::Numerical`] when the replacement would make the basis
    /// singular (the FTRAN direction's pivot entry is ~0); the factors are
    /// left unchanged in that case.
    pub fn replace_column(&mut self, pos: usize, column: &[(usize, f64)]) -> Result<(), LpError> {
        let mut ws = crate::hypersparse::LuWorkspace::new(self.m);
        let mut d = crate::hypersparse::ScatterVec::new(self.m);
        self.ftran_scatter(column, &mut ws, &mut d);
        self.replace_column_scatter(pos, &d)
    }

    /// [`LuFactors::replace_column`] when the caller already holds the
    /// FTRAN direction `d = B⁻¹·a` of the incoming column (the simplex has
    /// it from the ratio test — this avoids a second solve).
    ///
    /// # Errors
    ///
    /// [`LpError::Numerical`] when `|d[pos]|` is ~0.
    pub fn replace_column_with_direction(
        &mut self,
        pos: usize,
        direction: &[f64],
    ) -> Result<(), LpError> {
        assert_eq!(direction.len(), self.m);
        let pivot = direction[pos];
        if pivot.abs() < 1e-12 {
            return Err(LpError::Numerical {
                context: "sparse LU update (singular replacement column)".into(),
            });
        }
        let entries: Vec<(usize, f64)> = direction
            .iter()
            .enumerate()
            .filter(|&(i, &d)| i != pos && d != 0.0)
            .map(|(i, &d)| (i, d))
            .collect();
        self.push_eta(pos, pivot, entries);
        Ok(())
    }

    /// Appends one eta to the file and maintains the fill counter (both
    /// update paths funnel through here).
    pub(crate) fn push_eta(&mut self, pos: usize, pivot: f64, entries: Vec<(usize, f64)>) {
        self.eta_nnz += entries.len() + 1;
        self.etas.push(Eta {
            pos,
            pivot,
            entries,
        });
    }

    /// Reconstructs the factored matrix as a dense `m × m` array indexed
    /// `[row][position]` by multiplying the L and U factors back together
    /// and undoing the permutations — a testing diagnostic for checking
    /// `L·U = P·B·Q` residuals. Eta updates are **not** applied; call on a
    /// freshly factorized basis.
    pub fn reconstruct(&self) -> Vec<Vec<f64>> {
        let m = self.m;
        let mut l = vec![vec![0.0; m]; m];
        let mut u = vec![vec![0.0; m]; m];
        for k in 0..m {
            l[k][k] = 1.0;
            u[k][k] = self.pivots[k];
            for &(r, mult) in &self.lower[k] {
                l[self.row_step[r]][k] = mult;
            }
            for &(pos, v) in &self.upper[k] {
                u[k][self.col_step[pos]] = v;
            }
        }
        let mut out = vec![vec![0.0; m]; m];
        for i in 0..m {
            for j in 0..m {
                let mut s = 0.0;
                for k in 0..m {
                    s += l[i][k] * u[k][j];
                }
                out[self.prow[i]][self.pcol[j]] = s;
            }
        }
        out
    }
}

/// Reset devex weights when any grows beyond this (reference-framework
/// restart, standard practice to keep the approximation honest).
const DEVEX_RESET: f64 = 1e12;

/// Update/refactorization counters accumulated over one solve, surfaced as
/// [`crate::SolveStats`] on the solution.
#[derive(Debug, Clone, Copy, Default)]
struct CoreStats {
    refactorizations: usize,
    eta_nnz_total: usize,
    peak_eta_nnz: usize,
}

struct SparseCore {
    sf: StdForm,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    lu: LuFactors,
    /// current basic values x_B, by basis position
    xb: Vec<f64>,
    /// devex reference weights, one per standard-form column
    devex: Vec<f64>,
    /// running upper bound on the largest devex weight written since the
    /// last reset (replaces an `O(ncols)` scan per pivot; an overwritten
    /// maximum can make this an overestimate, which at worst resets early
    /// — always safe).
    devex_max: f64,
    iterations: usize,
    /// eta-file length that triggers refactorization
    refactor_every: usize,
    budget: crate::recover::SolveBudget,
    /// phase-1 duals captured at infeasible termination
    farkas_y: Option<Vec<f64>>,
    pricing: Pricing,
    stats: CoreStats,
    /// reusable hypersparse scratch: no per-iteration allocation
    ws: LuWorkspace,
    /// dual vector `y = Bᵀ⁻¹ c_B` (row space)
    y: ScatterVec,
    /// FTRAN direction `d = B⁻¹ a_q` (position space)
    d: ScatterVec,
    /// BTRAN of the leaving unit vector (row space)
    row_r: ScatterVec,
    /// sparse basic-cost buffer for the dual BTRAN
    cb_buf: Vec<(usize, f64)>,
}

impl SparseCore {
    fn new(sf: StdForm, budget: crate::recover::SolveBudget) -> Result<Self, LpError> {
        let basis = sf.initial_basis.clone();
        let mut in_basis = vec![false; sf.ncols];
        for &b in &basis {
            in_basis[b] = true;
        }
        // The initial basis is slacks + artificials: an identity matrix,
        // so this first factorization is trivial.
        let bcols: Vec<SparseCol> = basis.iter().map(|&j| sf.cols[j].clone()).collect();
        let lu = LuFactors::factorize(sf.m, &bcols)?;
        let xb = lu.solve(&sf.rhs);
        let devex = vec![1.0; sf.ncols];
        let m = sf.m;
        Ok(SparseCore {
            sf,
            basis,
            in_basis,
            lu,
            xb,
            devex,
            devex_max: 1.0,
            iterations: 0,
            refactor_every: REFACTOR_ETAS,
            budget,
            farkas_y: None,
            pricing: Pricing::default(),
            stats: CoreStats::default(),
            ws: LuWorkspace::new(m),
            y: ScatterVec::new(m),
            d: ScatterVec::new(m),
            row_r: ScatterVec::new(m),
            cb_buf: Vec::new(),
        })
    }

    fn sparse_dot(&self, y: &[f64], j: usize) -> f64 {
        self.sf.cols[j].iter().map(|&(r, v)| y[r] * v).sum()
    }

    /// `y = Bᵀ⁻¹ c_B` into `self.y`, seeding only nonzero basic costs —
    /// in phase 2 the SMO objective makes `c_B` nearly empty, so this
    /// BTRAN is the textbook hypersparse win.
    fn compute_duals(&mut self, costs: &[f64]) {
        self.cb_buf.clear();
        for (r, &j) in self.basis.iter().enumerate() {
            let c = costs[j];
            if c != 0.0 {
                self.cb_buf.push((r, c));
            }
        }
        self.lu
            .btran_scatter(&self.cb_buf, &mut self.ws, &mut self.y);
    }

    /// FTRAN of column `q` into `self.d`.
    fn compute_direction(&mut self, q: usize) {
        self.lu
            .ftran_scatter(&self.sf.cols[q], &mut self.ws, &mut self.d);
    }

    /// BTRAN of the unit vector at basis position `r` into `self.row_r`.
    fn compute_pivot_row(&mut self, r: usize) {
        self.lu
            .btran_scatter(&[(r, 1.0)], &mut self.ws, &mut self.row_r);
    }

    /// Fresh factorization of the current basis; recomputes `xb` from the
    /// RHS so accumulated pivot error is flushed.
    fn refactorize(&mut self) -> Result<(), LpError> {
        let bcols: Vec<SparseCol> = self
            .basis
            .iter()
            .map(|&j| self.sf.cols[j].clone())
            .collect();
        self.lu = LuFactors::factorize(self.sf.m, &bcols)?;
        let rhs: Vec<(usize, f64)> = self
            .sf
            .rhs
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.lu.ftran_scatter(&rhs, &mut self.ws, &mut self.d);
        for v in &mut self.xb {
            *v = 0.0;
        }
        for (i, v) in self.d.iter_nonzero() {
            self.xb[i] = v;
        }
        self.stats.refactorizations += 1;
        Ok(())
    }

    fn eta_budget_exceeded(&self) -> bool {
        self.lu.eta_count() >= self.refactor_every || self.lu.fill_exceeded()
    }

    /// Records the eta update for pivot direction `self.d` at position `r`
    /// and refactorizes if the fill budget tripped. Returns whether a
    /// refactorization happened (the caller invalidates incremental duals
    /// on that boundary).
    fn apply_update(&mut self, r: usize) -> Result<bool, LpError> {
        let before = self.lu.eta_nnz();
        self.lu.replace_column_scatter(r, &self.d)?;
        let after = self.lu.eta_nnz();
        self.stats.eta_nnz_total += after - before;
        self.stats.peak_eta_nnz = self.stats.peak_eta_nnz.max(after);
        self.iterations += 1;
        if self.eta_budget_exceeded() {
            self.refactorize()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Is column `j` priceable this phase?
    fn eligible(&self, j: usize, allow_artificial: bool) -> bool {
        !self.in_basis[j]
            && (allow_artificial || !matches!(self.sf.col_kinds[j], ColKind::Artificial { .. }))
    }

    /// One column's devex reference test against the current pivot row
    /// (`self.row_r`): grows `devex[j]` to the candidate weight when the
    /// row touches the column.
    #[inline]
    fn devex_bump(&mut self, j: usize, q: usize, alpha_q: f64, wq: f64) {
        if self.in_basis[j] || j == q {
            return;
        }
        let alpha = self.sparse_dot(self.row_r.values(), j);
        if alpha != 0.0 {
            let cand = (alpha / alpha_q) * (alpha / alpha_q) * wq;
            if cand > self.devex[j] {
                self.devex[j] = cand;
                if cand > self.devex_max {
                    self.devex_max = cand;
                }
            }
        }
    }

    /// Devex weight update against the leaving row `r` (must run before
    /// the basis changes), restricted to `scope` — the full nonbasic range
    /// under `Pricing::Devex` (`None`, no per-pivot index allocation), the
    /// candidate list under `Partial`.
    fn update_devex_weights(&mut self, scope: Option<&[usize]>, q: usize, r: usize, alpha_q: f64) {
        let wq = self.devex[q];
        match scope {
            Some(list) => {
                for &j in list {
                    self.devex_bump(j, q, alpha_q, wq);
                }
            }
            None => {
                for j in 0..self.sf.ncols {
                    self.devex_bump(j, q, alpha_q, wq);
                }
            }
        }
        let leaving = (wq / (alpha_q * alpha_q)).max(1.0);
        self.devex[self.basis[r]] = leaving;
        if leaving > self.devex_max {
            self.devex_max = leaving;
        }
        if self.devex_max > DEVEX_RESET {
            for w in &mut self.devex {
                *w = 1.0;
            }
            self.devex_max = 1.0;
        }
    }

    /// Ratio test over the (sorted) nonzeros of `self.d`: identical
    /// tie-breaking to the dense scan, which visited rows in ascending
    /// order with `d[r] == 0` elsewhere.
    fn ratio_test(&self) -> Option<usize> {
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for &i in self.d.touched() {
            let di = self.d.get(i);
            if di > EPS {
                let ratio = self.xb[i] / di;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                if better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        leave
    }

    /// Applies the primal pivot `x_B -= θ·d` over the direction's nonzeros
    /// only. Equivalent to the old full-row sweep: untouched entries have
    /// `d[i] == 0` exactly, and the tiny-negative clamp only ever fires on
    /// entries a pivot just wrote.
    fn update_xb(&mut self, r: usize, theta: f64) {
        for &i in self.d.touched() {
            if i != r {
                self.xb[i] -= theta * self.d.get(i);
                if self.xb[i] < 0.0 && self.xb[i] > -1e-10 {
                    self.xb[i] = 0.0;
                }
            }
        }
        self.xb[r] = if theta < 0.0 && theta > -1e-10 {
            0.0
        } else {
            theta
        };
    }

    /// One simplex phase (minimize `costs`): devex / partial / Bland
    /// pricing with the shared Bland anti-cycling fallback, hypersparse
    /// FTRAN/BTRAN, ratio test, eta update, fill-aware refactorization.
    /// `Ok(true)` at optimality, `Ok(false)` if unbounded.
    fn phase(
        &mut self,
        costs: &[f64],
        allow_artificial: bool,
        limit: usize,
    ) -> Result<bool, LpError> {
        let m = self.sf.m;
        let ncols = self.sf.ncols;
        let bland_after = self.iterations + 10 * (m + ncols);
        for w in &mut self.devex {
            *w = 1.0;
        }
        self.devex_max = 1.0;
        let mut pricer = PartialPricer::new(ncols);
        // Dual maintenance. `y_valid` gates a from-scratch BTRAN; after a
        // pivot the duals are instead *updated* along the pivot row
        // (`y' = y + (z_q/α_r)·ρ_r`, the textbook rank-one dual update) —
        // that BTRAN was the single largest per-iteration cost at 10k+
        // rows. `y_fresh` records whether any incremental updates have
        // been folded in since the last exact BTRAN: optimality is only
        // ever declared on exact duals (see the rescan below), so the
        // update changes pivot routes, never verdicts.
        let mut y_valid = false;
        let mut y_fresh = false;
        loop {
            if self.iterations > limit {
                return Err(LpError::IterationLimit { limit });
            }
            if self
                .iterations
                .is_multiple_of(crate::recover::BUDGET_CHECK_EVERY)
            {
                self.budget.check(self.iterations)?;
            }
            let bland = self.iterations > bland_after || self.pricing == Pricing::Bland;
            if !y_valid {
                self.compute_duals(costs);
                y_valid = true;
                y_fresh = true;
            }

            // Pricing: devex score z²/w (Dantzig weighted by the reference
            // framework) over the full range or the candidate list, or
            // plain Bland first-eligible in fallback mode.
            let enter = if bland {
                let mut enter = None;
                for j in 0..ncols {
                    if self.eligible(j, allow_artificial)
                        && costs[j] - self.sparse_dot(self.y.values(), j) < -EPS
                    {
                        enter = Some(j);
                        break;
                    }
                }
                enter
            } else if self.pricing == Pricing::Partial {
                let y = self.y.values();
                pricer.select(
                    ncols,
                    |j| self.eligible(j, allow_artificial),
                    |j| costs[j] - self.sparse_dot(y, j),
                    |j| self.devex[j],
                )
            } else {
                let mut enter = None;
                let mut best_score = 0.0;
                for j in 0..ncols {
                    if !self.eligible(j, allow_artificial) {
                        continue;
                    }
                    let zj = costs[j] - self.sparse_dot(self.y.values(), j);
                    if zj < -EPS {
                        let score = zj * zj / self.devex[j];
                        if score > best_score {
                            best_score = score;
                            enter = Some(j);
                        }
                    }
                }
                enter
            };
            let Some(q) = enter else {
                if y_fresh {
                    return Ok(true);
                }
                // "No candidate" on incrementally-updated duals is only a
                // hint: recompute them exactly and rescan before declaring
                // optimality. At most one extra BTRAN per false alarm, and
                // the verdict itself never rests on drifted numbers.
                y_valid = false;
                continue;
            };

            // Direction and ratio test.
            self.compute_direction(q);
            let Some(r) = self.ratio_test() else {
                return Ok(false);
            };

            // Devex weight update against the leaving row, computed before
            // the basis changes (the BTRAN row is for the current basis).
            if !bland {
                self.compute_pivot_row(r);
                let alpha_q = self.d.get(r);
                if self.pricing == Pricing::Partial {
                    // Maintain weights only where they are read: on the
                    // candidate list. Off-list weights go stale, which can
                    // reorder pivots but never changes any verdict.
                    self.update_devex_weights(Some(pricer.candidates()), q, r, alpha_q);
                } else {
                    self.update_devex_weights(None, q, r, alpha_q);
                }
                // Rank-one dual update along the pivot row (z_q on the
                // *pre-pivot* duals, ρ_r for the pre-pivot basis — both in
                // hand). Replaces next iteration's from-scratch BTRAN.
                let zq = costs[q] - self.sparse_dot(self.y.values(), q);
                let g = zq / alpha_q;
                if g != 0.0 {
                    for &i in self.row_r.touched() {
                        self.y.add(i, g * self.row_r.get(i));
                    }
                }
                y_fresh = false;
            } else {
                // Bland mode never computes the pivot row, so the duals
                // are rebuilt from scratch next iteration — exactly the
                // pre-update behavior of the fallback path.
                y_valid = false;
            }

            // Pivot: update xb, the basis, and the LU eta file.
            let theta = self.xb[r] / self.d.get(r);
            self.update_xb(r, theta);
            self.in_basis[self.basis[r]] = false;
            self.in_basis[q] = true;
            self.basis[r] = q;
            let refactorized = self.apply_update(r)?;
            if refactorized {
                // A fresh factorization flushes accumulated pivot error;
                // give the duals the same treatment.
                y_valid = false;
            }
        }
    }

    /// The per-solve kernel counters as the public stats record.
    fn solve_stats(&self) -> SolveStats {
        SolveStats {
            refactorizations: self.stats.refactorizations,
            eta_nnz_total: self.stats.eta_nnz_total,
            peak_eta_nnz: self.stats.peak_eta_nnz,
            factor_nnz: self.lu.factor_nnz(),
        }
    }

    fn artificial_infeasibility(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .filter(|(&j, _)| matches!(self.sf.col_kinds[j], ColKind::Artificial { .. }))
            .map(|(_, &x)| x)
            .sum()
    }

    fn optimize(&mut self) -> Result<Status, LpError> {
        let m = self.sf.m;
        let ncols = self.sf.ncols;
        let limit = 50_000 + 200 * (m + ncols);
        let has_art = self
            .sf
            .col_kinds
            .iter()
            .any(|k| matches!(k, ColKind::Artificial { .. }));
        if has_art {
            let phase1: Vec<f64> = self
                .sf
                .col_kinds
                .iter()
                .map(|k| {
                    if matches!(k, ColKind::Artificial { .. }) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let optimal = self.phase(&phase1, true, limit)?;
            debug_assert!(optimal, "phase 1 is bounded below");
            if self.artificial_infeasibility() > 1e-7 {
                self.compute_duals(&phase1);
                self.farkas_y = Some(self.y.to_dense());
                return Ok(Status::Infeasible);
            }
            // Drive basic artificials out where possible (mirrors the
            // sibling variants; a stuck artificial on a redundant row stays
            // basic at zero and is harmless).
            for r in 0..m {
                if matches!(self.sf.col_kinds[self.basis[r]], ColKind::Artificial { .. }) {
                    self.compute_pivot_row(r);
                    for q in 0..ncols {
                        if self.in_basis[q]
                            || matches!(self.sf.col_kinds[q], ColKind::Artificial { .. })
                            || self.sparse_dot(self.row_r.values(), q).abs() <= EPS
                        {
                            continue;
                        }
                        self.compute_direction(q);
                        if self.d.get(r).abs() > EPS {
                            self.in_basis[self.basis[r]] = false;
                            self.in_basis[q] = true;
                            self.basis[r] = q;
                            self.lu.replace_column_scatter(r, &self.d)?;
                            self.refactorize()?;
                            break;
                        }
                    }
                }
            }
        }
        let phase2 = self.sf.costs.clone();
        let optimal = self.phase(&phase2, false, limit)?;
        Ok(if optimal {
            Status::Optimal
        } else {
            Status::Unbounded
        })
    }
}

/// Entry point used by [`Problem::solve_with_budget`].
pub(crate) fn solve_budgeted(
    p: &Problem,
    budget: crate::recover::SolveBudget,
    pricing: Pricing,
) -> Result<Solution, LpError> {
    solve_inner(p, REFACTOR_ETAS, budget, pricing)
}

/// [`solve_budgeted`] with an explicit eta-file budget (exposed for tests
/// exercising the refactorization path).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn solve_with_refactor_interval(
    p: &Problem,
    refactor_every: usize,
) -> Result<Solution, LpError> {
    solve_inner(
        p,
        refactor_every,
        crate::recover::SolveBudget::UNLIMITED,
        Pricing::default(),
    )
}

fn solve_inner(
    p: &Problem,
    refactor_every: usize,
    budget: crate::recover::SolveBudget,
    pricing: Pricing,
) -> Result<Solution, LpError> {
    let sf = StdForm::build(p, None)?;
    let mut core = SparseCore::new(sf, budget)?;
    core.refactor_every = refactor_every.max(1);
    core.pricing = pricing;
    let status = core.optimize()?;
    if status != Status::Optimal {
        let farkas = core
            .farkas_y
            .take()
            .map(|y| core.sf.map_feasibility_duals(&y));
        return Ok(Solution {
            status,
            objective: None,
            values: vec![],
            duals: vec![],
            reduced_costs: vec![],
            slacks: vec![],
            iterations: core.iterations,
            farkas,
            basis: None,
            stats: Some(core.solve_stats()),
        });
    }
    package_optimal(p, &core)
}

/// Packages an optimal [`SparseCore`] as a [`Solution`] with the basis
/// snapshot for warm restarts. (No dense factor is seeded into the
/// snapshot cache — the sparse path refactorizes in `O(nnz)`, so adopting
/// a dense `B⁻¹` would cost more than it saves.)
fn package_optimal(p: &Problem, core: &SparseCore) -> Result<Solution, LpError> {
    let mut col_values = vec![0.0; core.sf.ncols];
    for (r, &j) in core.basis.iter().enumerate() {
        col_values[j] = core.xb[r].max(0.0);
    }
    let values = core.sf.user_values_from(&col_values);
    let cb: Vec<f64> = core.basis.iter().map(|&j| core.sf.costs[j]).collect();
    let y = core.lu.solve_transpose(&cb);
    let duals = core.sf.map_duals(&y);
    let z: Vec<f64> = (0..core.sf.ncols)
        .map(|j| core.sf.costs[j] - core.sparse_dot(&y, j))
        .collect();
    let reduced_costs = core.sf.map_reduced_costs(&z);
    let Some((_, obj_expr)) = p.objective.as_ref() else {
        return Err(LpError::MissingObjective);
    };
    let objective = obj_expr.eval(&values);
    let slacks = p
        .rows
        .iter()
        .map(|r| {
            let lhs = r.expr.eval(&values);
            match r.sense {
                Sense::Le | Sense::Eq => r.rhs - lhs,
                Sense::Ge => lhs - r.rhs,
            }
        })
        .collect();
    Ok(Solution {
        status: Status::Optimal,
        objective: Some(objective),
        values,
        duals,
        reduced_costs,
        slacks,
        iterations: core.iterations,
        farkas: None,
        basis: Some(core.sf.capture_basis_from(&core.basis)),
        stats: Some(core.solve_stats()),
    })
}

/// Feasibility tolerance for warm-start repair decisions (matches the
/// sibling variants' `WARM_FEAS`).
const WARM_FEAS: f64 = 1e-7;

/// Sparse dual simplex on the current basis: restores `x_B ≥ 0` while
/// preserving dual feasibility. `Ok(false)` means "give up and fall back
/// cold" — never wrong, only slower.
fn dual_simplex(core: &mut SparseCore, costs: &[f64]) -> Result<bool, LpError> {
    let m = core.sf.m;
    let max_pivots = 2 * (m + core.sf.ncols);
    let mut pivots = 0usize;
    loop {
        let mut leave = None;
        let mut most = -WARM_FEAS;
        for (r, &x) in core.xb.iter().enumerate() {
            if x < most {
                most = x;
                leave = Some(r);
            }
        }
        let Some(r) = leave else {
            return Ok(true);
        };
        if pivots >= max_pivots {
            return Ok(false);
        }
        if pivots.is_multiple_of(crate::recover::BUDGET_CHECK_EVERY) {
            core.budget.check(core.iterations)?;
        }
        core.compute_pivot_row(r);
        core.compute_duals(costs);
        let mut enter = None;
        let mut best = f64::INFINITY;
        for j in 0..core.sf.ncols {
            if core.in_basis[j] || matches!(core.sf.col_kinds[j], ColKind::Artificial { .. }) {
                continue;
            }
            let alpha = core.sparse_dot(core.row_r.values(), j);
            if alpha < -EPS {
                let zj = (costs[j] - core.sparse_dot(core.y.values(), j)).max(0.0);
                let ratio = zj / -alpha;
                if ratio < best {
                    best = ratio;
                    enter = Some(j);
                }
            }
        }
        let Some(q) = enter else {
            return Ok(false); // primal infeasible: certify via cold phase 1
        };
        core.compute_direction(q);
        if core.d.get(r).abs() <= EPS {
            return Ok(false); // BTRAN screen passed but FTRAN pivot is tiny
        }
        let theta = core.xb[r] / core.d.get(r);
        for &i in core.d.touched() {
            if i != r {
                core.xb[i] -= theta * core.d.get(i);
                if core.xb[i] < 0.0 && core.xb[i] > -1e-10 {
                    core.xb[i] = 0.0;
                }
            }
        }
        core.xb[r] = theta;
        core.in_basis[core.basis[r]] = false;
        core.in_basis[q] = true;
        core.basis[r] = q;
        if core.lu.replace_column_scatter(r, &core.d).is_err() {
            return Ok(false);
        }
        core.iterations += 1;
        pivots += 1;
        if core.eta_budget_exceeded() && core.refactorize().is_err() {
            return Ok(false);
        }
    }
}

/// Installs `basis` into `core` and repairs it to optimality without a
/// phase 1. `Ok(false)` for any condition that should fall back to the
/// cold path; only [`LpError::Budget`] propagates.
fn warm_optimize(core: &mut SparseCore, basis: &Basis) -> Result<bool, LpError> {
    let Some(targets) = core.sf.basis_columns(basis) else {
        return Ok(false);
    };
    core.basis = targets;
    core.in_basis = vec![false; core.sf.ncols];
    for &j in &core.basis {
        core.in_basis[j] = true;
    }
    // A fresh sparse factorization is O(nnz): no dense factor cache to
    // adopt, just factorize the snapshot basis directly.
    if core.refactorize().is_err() {
        return Ok(false); // snapshot basis singular for this matrix
    }

    let costs = core.sf.costs.clone();
    let primal_ok = core.xb.iter().all(|&x| x >= -WARM_FEAS);
    if !primal_ok {
        core.compute_duals(&costs);
        let dual_ok = (0..core.sf.ncols).all(|j| {
            core.in_basis[j]
                || matches!(core.sf.col_kinds[j], ColKind::Artificial { .. })
                || costs[j] - core.sparse_dot(core.y.values(), j) >= -WARM_FEAS
        });
        if !dual_ok {
            return Ok(false);
        }
        if !dual_simplex(core, &costs)? {
            return Ok(false);
        }
    }
    for x in &mut core.xb {
        if (-WARM_FEAS..0.0).contains(x) {
            *x = 0.0;
        }
    }
    // A warm path must never claim infeasibility.
    if core.artificial_infeasibility() > WARM_FEAS {
        return Ok(false);
    }

    let limit = 50_000 + 200 * (core.sf.m + core.sf.ncols);
    match core.phase(&costs, false, limit) {
        Ok(true) => {}
        Ok(false) => return Ok(false), // suspicious unbounded: verify cold
        Err(e @ LpError::Budget { .. }) => return Err(e),
        Err(_) => return Ok(false),
    }
    if core.artificial_infeasibility() > WARM_FEAS {
        return Ok(false);
    }
    Ok(true)
}

/// Entry point used by [`Problem::solve_from_basis_with_budget`]: solve
/// warm from `basis`, falling back to the cold two-phase path whenever the
/// snapshot cannot be installed and repaired cleanly.
pub(crate) fn solve_from_basis_budgeted(
    p: &Problem,
    basis: &Basis,
    budget: crate::recover::SolveBudget,
    pricing: Pricing,
) -> Result<Solution, LpError> {
    let sf = StdForm::build(p, None)?;
    let mut core = SparseCore::new(sf, budget)?;
    core.pricing = pricing;
    if warm_optimize(&mut core, basis)? {
        package_optimal(p, &core)
    } else {
        solve_inner(p, REFACTOR_ETAS, budget, pricing)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::{LuFactors, SparseCol, StdForm};
    use crate::simplex::Tableau;
    use crate::{LinExpr, Problem, Sense, SimplexVariant, Status};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    fn textbook_max() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x.into(), Sense::Le, 4.0);
        p.constrain(2.0 * y, Sense::Le, 12.0);
        p.constrain(3.0 * x + 2.0 * y, Sense::Le, 18.0);
        p.maximize(3.0 * x + 5.0 * y);
        p
    }

    #[test]
    fn std_form_matches_dense_tableau() {
        // The CSC standard form and the dense tableau must agree entry for
        // entry — including the matrix hash, which warm-start caches key on.
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", -2.0, 7.0);
        let f = p.add_free_var("f");
        let y = p.add_var("y");
        p.constrain(2.0 * x + f - y, Sense::Ge, -3.0); // flips
        p.constrain(LinExpr::from(y) + f, Sense::Eq, 5.0);
        p.constrain(x + y, Sense::Le, 9.0);
        p.maximize(x + 2.0 * f - y);
        let sf = StdForm::build(&p, None).unwrap();
        let t = Tableau::build(&p, None).unwrap();
        assert_eq!(sf.m, t.rows());
        assert_eq!(sf.ncols, t.ncols);
        assert_eq!(sf.matrix_hash, t.matrix_hash);
        assert_eq!(sf.col_kinds, t.col_kinds);
        let mut dense = vec![vec![0.0; sf.ncols]; sf.m];
        for (j, col) in sf.cols.iter().enumerate() {
            for &(r, v) in col {
                dense[r][j] = v;
            }
        }
        for r in 0..sf.m {
            for j in 0..sf.ncols {
                assert_eq!(dense[r][j], t.tab[r][j], "entry ({r},{j})");
            }
            assert_eq!(sf.rhs[r], t.rhs(r), "rhs {r}");
        }
        for j in 0..sf.ncols {
            assert_eq!(sf.costs[j], t.costs[j], "cost {j}");
        }
    }

    #[test]
    fn lu_solves_a_small_system() {
        // B = [[2,1,0],[1,3,1],[0,1,4]] (by columns)
        let cols: Vec<SparseCol> = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(0, 1.0), (1, 3.0), (2, 1.0)],
            vec![(1, 1.0), (2, 4.0)],
        ];
        let lu = LuFactors::factorize(3, &cols).unwrap();
        let b = vec![5.0, 10.0, 9.0];
        let x = lu.solve(&b);
        // Check B x = b.
        for r in 0..3 {
            let mut s = 0.0;
            for (pos, col) in cols.iter().enumerate() {
                for &(rr, v) in col {
                    if rr == r {
                        s += v * x[pos];
                    }
                }
            }
            assert!(near(s, b[r]), "row {r}: {s} vs {}", b[r]);
        }
        // Check Bᵀ y = c.
        let c = vec![1.0, -2.0, 3.0];
        let y = lu.solve_transpose(&c);
        for (pos, col) in cols.iter().enumerate() {
            let s: f64 = col.iter().map(|&(r, v)| v * y[r]).sum();
            assert!(near(s, c[pos]), "col {pos}");
        }
        // Reconstruction matches the input matrix.
        let rec = lu.reconstruct();
        let mut want = vec![vec![0.0; 3]; 3];
        for (pos, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                want[r][pos] = v;
            }
        }
        for r in 0..3 {
            for cj in 0..3 {
                assert!(near(rec[r][cj], want[r][cj]), "({r},{cj})");
            }
        }
    }

    #[test]
    fn lu_rejects_singular_matrices() {
        // Second column is a multiple of the first.
        let cols: Vec<SparseCol> = vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 2.0), (1, 4.0)]];
        assert!(LuFactors::factorize(2, &cols).is_err());
        // Structurally empty column.
        let cols: Vec<SparseCol> = vec![vec![(0, 1.0)], vec![]];
        assert!(LuFactors::factorize(2, &cols).is_err());
    }

    #[test]
    fn lu_eta_update_tracks_refactorization() {
        let mut cols: Vec<SparseCol> = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(0, 1.0), (1, 3.0), (2, 1.0)],
            vec![(1, 1.0), (2, 4.0)],
        ];
        let mut lu = LuFactors::factorize(3, &cols).unwrap();
        // Replace position 1 with a new column.
        let newcol: SparseCol = vec![(0, 1.0), (2, 2.0)];
        lu.replace_column(1, &newcol).unwrap();
        assert_eq!(lu.eta_count(), 1);
        cols[1] = newcol;
        let fresh = LuFactors::factorize(3, &cols).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let xu = lu.solve(&b);
        let xf = fresh.solve(&b);
        for i in 0..3 {
            assert!(near(xu[i], xf[i]), "ftran {i}: {} vs {}", xu[i], xf[i]);
        }
        let yu = lu.solve_transpose(&b);
        let yf = fresh.solve_transpose(&b);
        for i in 0..3 {
            assert!(near(yu[i], yf[i]), "btran {i}");
        }
    }

    fn all3(p: &Problem) -> (crate::Solution, crate::Solution, crate::Solution) {
        let d = p.solve().expect("dense solves");
        let r = p
            .solve_with(SimplexVariant::Revised)
            .expect("revised solves");
        let s = p
            .solve_with(SimplexVariant::SparseLu)
            .expect("sparse solves");
        (d, r, s)
    }

    #[test]
    fn agrees_on_textbook_max() {
        let p = textbook_max();
        let (d, _, s) = all3(&p);
        assert!(near(s.objective().unwrap(), 36.0));
        assert!(near(d.objective().unwrap(), s.objective().unwrap()));
        assert!(s.certify(&p).is_valid(), "{}", s.certify(&p));
    }

    #[test]
    fn agrees_on_infeasible_and_unbounded() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Le, 1.0);
        p.constrain(x.into(), Sense::Ge, 2.0);
        p.minimize(x.into());
        let s = p.solve_with(SimplexVariant::SparseLu).unwrap();
        assert_eq!(s.status(), Status::Infeasible);
        let y = s.farkas().expect("infeasible carries Farkas");
        assert!(crate::certifies_infeasibility(&p, y));

        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Ge, 1.0);
        p.maximize(x.into());
        assert_eq!(
            p.solve_with(SimplexVariant::SparseLu).unwrap().status(),
            Status::Unbounded
        );
    }

    #[test]
    fn agrees_on_equalities_and_free_vars() {
        let mut p = Problem::new();
        let x = p.add_free_var("x");
        let t = p.add_var("t");
        p.constrain(LinExpr::from(t) - x, Sense::Ge, -3.0);
        p.constrain(LinExpr::from(t) + x, Sense::Ge, 3.0);
        p.constrain(x.into(), Sense::Eq, 5.0);
        p.minimize(t.into());
        let (d, _, s) = all3(&p);
        assert!(near(d.objective().unwrap(), s.objective().unwrap()));
    }

    #[test]
    fn duals_agree_on_nondegenerate_model() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let c1 = p.constrain(x.into(), Sense::Le, 4.0);
        let c2 = p.constrain(2.0 * y, Sense::Le, 12.0);
        let c3 = p.constrain(3.0 * x + 2.0 * y, Sense::Le, 18.0);
        p.maximize(3.0 * x + 5.0 * y);
        let d = p.solve().unwrap().into_optimal().unwrap();
        let s = p
            .solve_with(SimplexVariant::SparseLu)
            .unwrap()
            .into_optimal()
            .unwrap();
        for c in [c1, c2, c3] {
            assert!(near(d.dual(c), s.dual(c)), "dual mismatch on {c:?}");
        }
    }

    #[test]
    fn refactorization_path_is_exercised() {
        let mut p = Problem::new();
        let n = 60;
        let xs: Vec<_> = (0..n).map(|i| p.add_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::new();
        for (i, &x) in xs.iter().enumerate() {
            p.constrain(x.into(), Sense::Ge, 1.0 + (i % 7) as f64);
            if i > 0 {
                p.constrain(LinExpr::from(x) - xs[i - 1], Sense::Ge, 0.5);
            }
            obj = obj + x;
        }
        p.minimize(obj);
        let d = p.solve().expect("dense solves");
        let s = super::solve_with_refactor_interval(&p, 7).expect("sparse solves");
        assert!(near(
            d.objective().expect("optimal"),
            s.objective().expect("optimal")
        ));
        assert!(s.iterations() > 7, "refactorization must have happened");
    }

    #[test]
    fn warm_start_repairs_rhs_perturbations() {
        let mut p = textbook_max();
        let cold = p.solve_with(SimplexVariant::SparseLu).unwrap();
        let basis = cold.basis().expect("optimal captures basis").clone();
        let c3 = crate::ConstraintId(2);
        p.set_rhs(c3, 15.0);
        let warm = p
            .solve_from_basis_with(SimplexVariant::SparseLu, &basis)
            .unwrap();
        let check = p.solve().unwrap();
        assert_eq!(warm.status(), Status::Optimal);
        assert!(near(warm.objective().unwrap(), check.objective().unwrap()));
        assert!(warm.iterations() <= check.iterations());
    }

    #[test]
    fn smo_model_solves_identically() {
        let mut p = Problem::new();
        let tc = p.add_var("Tc");
        let d = p.add_var("D");
        let g = p.add_var("g");
        p.constrain(LinExpr::from(tc) - d, Sense::Ge, 5.0);
        p.constrain(LinExpr::from(d) + g, Sense::Ge, 7.0);
        p.constrain(2.0 * g - tc, Sense::Le, 0.0);
        p.minimize(tc.into());
        let (dd, rr, ss) = all3(&p);
        assert!(near(dd.objective().unwrap(), 8.0));
        assert!(near(rr.objective().unwrap(), 8.0));
        assert!(near(ss.objective().unwrap(), 8.0));
    }
}
