//! Solver results: status, primal/dual values, slacks.

use crate::basis::Basis;
use crate::error::LpError;
use crate::expr::VarId;
use crate::problem::ConstraintId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Termination status of a simplex run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Optimal => write!(f, "optimal"),
            Status::Infeasible => write!(f, "infeasible"),
            Status::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Result of [`Problem::solve`](crate::Problem::solve).
///
/// For non-[`Optimal`](Status::Optimal) statuses the primal/dual vectors are
/// empty and [`Solution::objective`] is `None`; an
/// [`Infeasible`](Status::Infeasible) solution instead carries a Farkas
/// certificate (see [`Solution::farkas`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    pub(crate) status: Status,
    pub(crate) objective: Option<f64>,
    pub(crate) values: Vec<f64>,
    pub(crate) duals: Vec<f64>,
    pub(crate) reduced_costs: Vec<f64>,
    pub(crate) slacks: Vec<f64>,
    pub(crate) iterations: usize,
    pub(crate) farkas: Option<Vec<f64>>,
    pub(crate) basis: Option<Basis>,
    /// Factorization-kernel counters; only the sparse-LU variant fills
    /// these in (`#[serde(default)]` keeps old serialized solutions
    /// readable).
    #[serde(default)]
    pub(crate) stats: Option<SolveStats>,
}

/// Factorization and update counters from a sparse-LU solve, for
/// attributing where the time went (exposed per variant in
/// `BENCH_scale.json`). `None` on the dense/revised variants, which have
/// no eta file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SolveStats {
    /// Fresh basis factorizations after the initial one.
    pub refactorizations: usize,
    /// Total eta nonzeros appended across the whole solve (the measured
    /// update fill the fill-aware trigger bounds).
    pub eta_nnz_total: usize,
    /// Largest eta-file fill observed between refactorizations.
    pub peak_eta_nnz: usize,
    /// `nnz(L+U)` of the final factorization.
    pub factor_nnz: usize,
}

impl Solution {
    /// Termination status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// `true` iff the status is [`Status::Optimal`].
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }

    /// Optimal objective value, if optimal.
    pub fn objective(&self) -> Option<f64> {
        self.objective
    }

    /// Total simplex iterations across both phases.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Farkas certificate of infeasibility, present when the status is
    /// [`Status::Infeasible`].
    ///
    /// The returned vector `y` has one multiplier per constraint row (in
    /// [`ConstraintId`] order) with `y_r ≤ 0` for `≤` rows, `y_r ≥ 0` for
    /// `≥` rows and free sign for `=` rows. Summing `y_r ×` each row
    /// yields an aggregate inequality `(Σ y_r a_r)·x ≥ Σ y_r b_r` that
    /// every feasible point would have to satisfy, yet whose left-hand
    /// side stays below the right-hand side over the entire variable box —
    /// a self-contained proof that no feasible point exists. Rows with
    /// `y_r = 0` play no part in the conflict; the non-zero support is the
    /// natural seed for IIS extraction
    /// ([`extract_iis`](crate::extract_iis)).
    pub fn farkas(&self) -> Option<&[f64]> {
        self.farkas.as_deref()
    }

    /// Basis snapshot captured at an optimal solve, usable to warm-start
    /// later solves of the same (or a perturbed) model through
    /// [`Problem::solve_from_basis`](crate::Problem::solve_from_basis).
    ///
    /// `None` for non-optimal statuses, and for derived solutions
    /// (presolved, equilibrated, refined) whose internal basis would not
    /// map back onto the original problem's standard form.
    pub fn basis(&self) -> Option<&Basis> {
        self.basis.as_ref()
    }

    /// Sparse-LU kernel counters (refactorizations, eta fill) for this
    /// solve; `None` under the dense and revised variants.
    pub fn stats(&self) -> Option<&SolveStats> {
        self.stats.as_ref()
    }

    /// Converts into an [`OptimalSolution`], failing if the status is not
    /// optimal.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::NotOptimal`] carrying the actual status.
    pub fn into_optimal(self) -> Result<OptimalSolution, LpError> {
        if self.status == Status::Optimal {
            Ok(OptimalSolution(self))
        } else {
            Err(LpError::NotOptimal {
                status: self.status,
            })
        }
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.status {
            Status::Optimal => write!(
                f,
                "optimal: objective {} after {} iteration(s)",
                self.objective.unwrap_or(f64::NAN),
                self.iterations
            ),
            Status::Infeasible => {
                write!(f, "infeasible after {} iteration(s)", self.iterations)?;
                if let Some(y) = &self.farkas {
                    let support = y.iter().filter(|v| v.abs() > 1e-9).count();
                    write!(f, "; Farkas certificate over {support} row(s)")?;
                }
                Ok(())
            }
            Status::Unbounded => {
                write!(f, "unbounded after {} iteration(s)", self.iterations)
            }
        }
    }
}

/// A solution whose optimality is statically guaranteed, giving non-optional
/// accessors to the primal point, duals, reduced costs and slacks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimalSolution(Solution);

impl OptimalSolution {
    /// The optimal objective value.
    pub fn objective(&self) -> f64 {
        self.0.objective.expect("optimal solution has an objective")
    }

    /// Value of a decision variable at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.0.values[var.index()]
    }

    /// The full primal point, indexed by variable index.
    pub fn values(&self) -> &[f64] {
        &self.0.values
    }

    /// Dual value (shadow price) of a constraint.
    ///
    /// Sign convention: for a minimization problem, the dual of a binding
    /// `≥` constraint is non-negative and the dual of a binding `≤`
    /// constraint is non-positive; increasing the RHS by `ε` changes the
    /// optimum by `dual · ε` (to first order).
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to the solved problem.
    pub fn dual(&self, c: ConstraintId) -> f64 {
        self.0.duals[c.index()]
    }

    /// All dual values, indexed by constraint index.
    pub fn duals(&self) -> &[f64] {
        &self.0.duals
    }

    /// Slack of a constraint: `rhs − expr(x*)` for `≤`/`=` rows and
    /// `expr(x*) − rhs` for `≥` rows, i.e. non-negative iff satisfied, zero
    /// iff binding.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to the solved problem.
    pub fn slack(&self, c: ConstraintId) -> f64 {
        self.0.slacks[c.index()]
    }

    /// All slacks, indexed by constraint index.
    pub fn slacks(&self) -> &[f64] {
        &self.0.slacks
    }

    /// Reduced cost of a variable at the optimum (zero for basic variables).
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn reduced_cost(&self, var: VarId) -> f64 {
        self.0.reduced_costs[var.index()]
    }

    /// Total simplex iterations across both phases.
    pub fn iterations(&self) -> usize {
        self.0.iterations
    }

    /// Basis snapshot for warm-starting related solves (see
    /// [`Solution::basis`]).
    pub fn basis(&self) -> Option<&Basis> {
        self.0.basis()
    }

    /// Borrows the underlying [`Solution`].
    pub fn as_solution(&self) -> &Solution {
        &self.0
    }

    /// Recovers the underlying [`Solution`].
    pub fn into_inner(self) -> Solution {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display() {
        assert_eq!(Status::Optimal.to_string(), "optimal");
        assert_eq!(Status::Infeasible.to_string(), "infeasible");
        assert_eq!(Status::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn into_optimal_rejects_infeasible() {
        let s = Solution {
            status: Status::Infeasible,
            objective: None,
            values: vec![],
            duals: vec![],
            reduced_costs: vec![],
            slacks: vec![],
            iterations: 3,
            farkas: None,
            basis: None,
            stats: None,
        };
        let err = s.into_optimal().unwrap_err();
        assert_eq!(
            err,
            LpError::NotOptimal {
                status: Status::Infeasible
            }
        );
    }

    #[test]
    fn display_is_self_describing() {
        let mut s = Solution {
            status: Status::Infeasible,
            objective: None,
            values: vec![],
            duals: vec![],
            reduced_costs: vec![],
            slacks: vec![],
            iterations: 3,
            farkas: Some(vec![-1.0, 0.0, 2.0]),
            basis: None,
            stats: None,
        };
        assert_eq!(
            s.to_string(),
            "infeasible after 3 iteration(s); Farkas certificate over 2 row(s)"
        );
        s.status = Status::Optimal;
        s.objective = Some(8.0);
        assert_eq!(s.to_string(), "optimal: objective 8 after 3 iteration(s)");
        s.status = Status::Unbounded;
        assert_eq!(s.to_string(), "unbounded after 3 iteration(s)");
    }
}
