//! Scale-aware numerical tolerances.
//!
//! Every feasibility or agreement decision in this crate compares a
//! residual against `rel · (1 + scale)` where `scale` is the magnitude of
//! the quantities that produced the residual — never against a raw
//! absolute epsilon. A 1 ns slack on a 1 s cycle time and a 1 fs slack on
//! a 1 ps cycle time are then judged identically, which is what makes the
//! certificates of [`crate::verify`] meaningful on badly-scaled models
//! (mixed ps/ns delay units and the like).
//!
//! Two named tolerances cover the crate:
//!
//! * [`Tol::FEAS`] (`1e-7` relative) — feasibility decisions: constraint
//!   violations, bound violations, dual sign checks, Farkas certificates.
//! * [`Tol::TIGHT`] (`1e-9` relative) — agreement decisions: objective
//!   cross-checks, slope equality in parametric ranging, support
//!   detection in multiplier vectors.

/// A relative tolerance, applied as `rel · (1 + |scale|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tol {
    rel: f64,
}

impl Tol {
    /// Feasibility tolerance (`1e-7` relative): constraint and bound
    /// violations, dual sign conventions, certificate residuals.
    pub const FEAS: Tol = Tol::new(1e-7);

    /// Agreement tolerance (`1e-9` relative): equality of two computed
    /// values (objectives, slopes) and support detection.
    pub const TIGHT: Tol = Tol::new(1e-9);

    /// A custom relative tolerance.
    ///
    /// `rel` must be positive and finite (checked in debug builds).
    pub const fn new(rel: f64) -> Self {
        Tol { rel }
    }

    /// The raw relative factor.
    pub fn rel(self) -> f64 {
        self.rel
    }

    /// The absolute slack this tolerance grants at magnitude `scale`:
    /// `rel · (1 + |scale|)`.
    pub fn abs_for(self, scale: f64) -> f64 {
        self.rel * (1.0 + scale.abs())
    }

    /// Is `x` zero up to this tolerance at magnitude `scale`?
    pub fn is_zero(self, x: f64, scale: f64) -> bool {
        x.abs() <= self.abs_for(scale)
    }

    /// Is `a ≤ b` up to this tolerance, scaled by the larger magnitude?
    pub fn le(self, a: f64, b: f64) -> bool {
        self.le_scaled(a, b, a.abs().max(b.abs()))
    }

    /// Is `a ≤ b` up to this tolerance at an explicit magnitude `scale`?
    ///
    /// Use the explicit form when the comparands are small only through
    /// cancellation of large intermediates (e.g. an aggregated constraint
    /// activity): pass the cancellation scale, not the net value.
    pub fn le_scaled(self, a: f64, b: f64, scale: f64) -> bool {
        a <= b + self.abs_for(scale)
    }

    /// Is `a ≥ b` up to this tolerance, scaled by the larger magnitude?
    pub fn ge(self, a: f64, b: f64) -> bool {
        self.le(b, a)
    }

    /// Are `a` and `b` equal up to this tolerance, scaled by the larger
    /// magnitude?
    pub fn eq(self, a: f64, b: f64) -> bool {
        self.is_zero(a - b, a.abs().max(b.abs()))
    }

    /// The violation of `a ≤ b`, as a residual *relative* to `scale`:
    /// `max(0, a − b) / (1 + |scale|)`. Zero when satisfied; directly
    /// comparable against [`Tol::rel`].
    pub fn violation(self, a: f64, b: f64, scale: f64) -> f64 {
        (a - b).max(0.0) / (1.0 + scale.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_awareness() {
        // A 1e-5 residual is fatal at scale 1 but invisible at scale 1e9.
        assert!(!Tol::FEAS.is_zero(1e-5, 1.0));
        assert!(Tol::FEAS.is_zero(1e-5, 1e9));
        // Symmetric in sign.
        assert!(Tol::FEAS.is_zero(-1e-5, 1e9));
    }

    #[test]
    fn comparisons() {
        assert!(Tol::FEAS.le(1.0, 1.0));
        assert!(Tol::FEAS.le(1.0 + 1e-9, 1.0));
        assert!(!Tol::FEAS.le(1.0 + 1e-3, 1.0));
        assert!(Tol::FEAS.ge(1.0, 1.0 + 1e-9));
        assert!(Tol::TIGHT.eq(110.0, 110.0 + 1e-8));
        assert!(!Tol::TIGHT.eq(110.0, 110.0 + 1e-5));
    }

    #[test]
    fn relative_violation() {
        assert_eq!(Tol::FEAS.violation(1.0, 2.0, 1.0), 0.0);
        let v = Tol::FEAS.violation(2.0, 1.0, 0.0);
        assert!((v - 1.0).abs() < 1e-15);
        // Same absolute violation shrinks relatively at large scale.
        assert!(Tol::FEAS.violation(1e9 + 1.0, 1e9, 1e9) < 1e-8);
    }

    #[test]
    fn named_tolerances_order() {
        assert!(Tol::TIGHT.rel() < Tol::FEAS.rel());
        assert_eq!(Tol::FEAS.abs_for(0.0), Tol::FEAS.rel());
    }
}
