//! Irreducible infeasible subsystem (IIS) extraction.
//!
//! When a model is infeasible, *which* constraints conflict? An IIS is an
//! infeasible subset of the constraint rows that becomes feasible if any
//! single member is removed — the minimal "story" of the conflict. This
//! module extracts one by the classic **deletion filter**: start from an
//! infeasible subset (seeded by the support of the solver's Farkas
//! certificate, which is usually already small), then try deleting each
//! member once, keeping the deletion whenever the remainder stays
//! infeasible. One pass leaves an irreducible set.
//!
//! Variable bounds are treated as part of the ambient box, not as
//! removable rows: an IIS here means "these rows conflict *given* the
//! declared variable domains", which matches how the SMO timing models
//! are built (non-negativity is structural, eqs. (7)–(9), (18)).

use crate::error::LpError;
use crate::expr::VarId;
use crate::problem::{ConstraintId, Problem, Sense};
use crate::solution::Status;

/// An irreducible infeasible subsystem of a [`Problem`]'s rows.
///
/// Produced by [`extract_iis`]; every member is necessary (removing any
/// one of them makes the remaining subsystem feasible) and the set as a
/// whole is infeasible under the problem's variable bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iis {
    rows: Vec<ConstraintId>,
}

impl Iis {
    /// The member rows, in ascending [`ConstraintId`] order.
    pub fn rows(&self) -> &[ConstraintId] {
        &self.rows
    }

    /// Number of member rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the IIS has no rows (cannot happen for IISes produced
    /// by [`extract_iis`], which requires an infeasible row set).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `true` if `c` is a member.
    pub fn contains(&self, c: ConstraintId) -> bool {
        self.rows.binary_search(&c).is_ok()
    }
}

impl Problem {
    /// A copy of this problem containing only the rows in `keep` (same
    /// variables, bounds and objective).
    ///
    /// Row order follows `keep`; constraint ids of the returned problem
    /// index into `keep`, not into `self`.
    ///
    /// # Panics
    ///
    /// Panics if any id in `keep` does not belong to this problem.
    pub fn restricted(&self, keep: &[ConstraintId]) -> Problem {
        Problem {
            vars: self.vars.clone(),
            rows: keep.iter().map(|c| self.rows[c.index()].clone()).collect(),
            objective: self.objective.clone(),
        }
    }
}

/// Solves the subsystem of `p` given by `keep` and reports whether it is
/// infeasible (unbounded and optimal both count as feasible).
fn subsystem_infeasible(p: &Problem, keep: &[ConstraintId]) -> Result<bool, LpError> {
    Ok(p.restricted(keep).solve()?.status() == Status::Infeasible)
}

/// Extracts an irreducible infeasible subsystem from `p`.
///
/// Returns `Ok(None)` when `p` is feasible (or unbounded). Otherwise the
/// returned [`Iis`] satisfies both minimality properties, by
/// construction of the deletion filter:
///
/// * re-solving `p.restricted(iis.rows())` is infeasible, and
/// * removing any single member from it yields a feasible subsystem.
///
/// Cost: one solve of `p` plus at most one solve per candidate row —
/// candidates come from the Farkas certificate's support, so this is
/// usually far fewer than `p.num_constraints()` solves.
///
/// # Errors
///
/// Propagates solver errors ([`Problem::validate`] failures, iteration
/// limit) from any of the subsystem solves.
pub fn extract_iis(p: &Problem) -> Result<Option<Iis>, LpError> {
    let sol = p.solve()?;
    if sol.status() != Status::Infeasible {
        return Ok(None);
    }
    let all: Vec<ConstraintId> = (0..p.num_constraints()).map(ConstraintId).collect();

    // Seed from the Farkas support when it is itself infeasible (it can
    // fail to be only through numerical noise in the certificate).
    let mut members = match sol.farkas() {
        Some(y) => {
            let support: Vec<ConstraintId> = all
                .iter()
                .copied()
                .filter(|c| y[c.index()].abs() > crate::tol::Tol::TIGHT.rel())
                .collect();
            if !support.is_empty()
                && support.len() < all.len()
                && subsystem_infeasible(p, &support)?
            {
                support
            } else {
                all
            }
        }
        None => all,
    };

    // Deletion filter: one removal attempt per member.
    let mut i = 0;
    while i < members.len() {
        if members.len() == 1 {
            break; // a single infeasible row is trivially irreducible
        }
        let mut trial = members.clone();
        trial.remove(i);
        if subsystem_infeasible(p, &trial)? {
            members = trial; // row i was not needed for the conflict
        } else {
            i += 1; // row i is essential, keep it
        }
    }
    Ok(Some(Iis { rows: members }))
}

/// Checks that `y` is a valid Farkas certificate of infeasibility for `p`.
///
/// `y` must have one multiplier per constraint row, with `y_r ≤ 0` on `≤`
/// rows and `y_r ≥ 0` on `≥` rows (`=` rows are free). The check then
/// aggregates the rows into `(Σ y_r a_r)·x ≥ Σ y_r b_r` — implied by
/// feasibility — and verifies that the left-hand side's supremum over the
/// declared variable bounds stays strictly below the right-hand side.
/// When that holds no feasible point can exist, so a `true` return is a
/// machine-checked proof of infeasibility independent of the simplex run
/// that produced `y`.
pub fn certifies_infeasibility(p: &Problem, y: &[f64]) -> bool {
    let tol = crate::tol::Tol::FEAS;
    if y.len() != p.num_constraints() || y.iter().any(|v| !v.is_finite()) {
        return false;
    }
    // Sign conditions per row sense.
    for (c, &yr) in y.iter().enumerate() {
        let (_, sense, _) = p.constraint(ConstraintId(c));
        match sense {
            Sense::Le if yr > tol.rel() => return false,
            Sense::Ge if yr < -tol.rel() => return false,
            _ => {}
        }
    }
    // Aggregate coefficients and RHS, tracking the accumulation scale so
    // cancellation noise is not mistaken for a genuine coefficient.
    let n = p.num_vars();
    let mut coeff = vec![0.0; n];
    let mut scale = vec![0.0; n];
    let mut rhs = 0.0;
    for (c, &yr) in y.iter().enumerate() {
        if yr == 0.0 {
            continue;
        }
        let (expr, _, b) = p.constraint(ConstraintId(c));
        for (v, a) in expr.iter() {
            coeff[v.index()] += yr * a;
            scale[v.index()] += (yr * a).abs();
        }
        rhs += yr * b;
    }
    // sup over the variable box of `coeff·x`.
    let mut sup = 0.0;
    for j in 0..n {
        if coeff[j].abs() <= tol.abs_for(scale[j]) {
            continue; // numerically zero: contributes nothing
        }
        let (lo, up) = p.var_bounds(VarId(j));
        let term = if coeff[j] > 0.0 {
            coeff[j] * up
        } else {
            coeff[j] * lo
        };
        if !term.is_finite() {
            return false; // unbounded in the violating direction
        }
        sup += term;
    }
    sup < rhs - tol.abs_for(rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Problem, Sense, SimplexVariant};

    /// x ≤ 1 vs x ≥ 2, plus an unrelated satisfiable row.
    fn tiny_conflict() -> (Problem, Vec<ConstraintId>) {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let c0 = p.constrain_named(Some("cap"), x.into(), Sense::Le, 1.0);
        let c1 = p.constrain_named(Some("floor"), x.into(), Sense::Ge, 2.0);
        let c2 = p.constrain_named(Some("bystander"), y.into(), Sense::Ge, 0.5);
        p.minimize(LinExpr::from(x) + y);
        (p, vec![c0, c1, c2])
    }

    #[test]
    fn farkas_certificate_is_produced_and_verifies() {
        let (p, _) = tiny_conflict();
        for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
            let sol = p.solve_with(variant).unwrap();
            assert_eq!(sol.status(), Status::Infeasible);
            let y = sol
                .farkas()
                .expect("infeasible solutions carry a certificate");
            assert!(
                certifies_infeasibility(&p, y),
                "{variant:?} certificate {y:?} does not verify"
            );
        }
    }

    #[test]
    fn feasible_solutions_have_no_certificate() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Ge, 1.0);
        p.minimize(x.into());
        let sol = p.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert!(sol.farkas().is_none());
    }

    #[test]
    fn iis_finds_the_two_conflicting_rows() {
        let (p, ids) = tiny_conflict();
        let iis = extract_iis(&p).unwrap().expect("model is infeasible");
        assert_eq!(iis.rows(), &[ids[0], ids[1]]);
        assert!(iis.contains(ids[0]));
        assert!(!iis.contains(ids[2]));
        // infeasible in isolation…
        assert_eq!(
            p.restricted(iis.rows()).solve().unwrap().status(),
            Status::Infeasible
        );
        // …and minimal: each single-row removal is feasible.
        for drop in 0..iis.len() {
            let mut rest = iis.rows().to_vec();
            rest.remove(drop);
            assert_ne!(
                p.restricted(&rest).solve().unwrap().status(),
                Status::Infeasible
            );
        }
    }

    #[test]
    fn extract_iis_returns_none_on_feasible_models() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Le, 3.0);
        p.minimize(x.into());
        assert_eq!(extract_iis(&p).unwrap(), None);
    }

    #[test]
    fn iis_handles_chained_conflicts() {
        // x ≤ y − 1, y ≤ z − 1, z ≤ x − 1: a 3-cycle of strict gaps, only
        // jointly infeasible; plus two bystander rows.
        let mut p = Problem::new();
        let x = p.add_free_var("x");
        let y = p.add_free_var("y");
        let z = p.add_free_var("z");
        let a = p.constrain(LinExpr::from(x) - y, Sense::Le, -1.0);
        let b = p.constrain(LinExpr::from(y) - z, Sense::Le, -1.0);
        let c = p.constrain(LinExpr::from(z) - x, Sense::Le, -1.0);
        p.constrain(x.into(), Sense::Ge, -100.0);
        p.constrain(LinExpr::from(y) + z, Sense::Le, 500.0);
        p.minimize(x.into());
        let iis = extract_iis(&p).unwrap().expect("infeasible");
        assert_eq!(iis.rows(), &[a, b, c]);
    }

    #[test]
    fn certificate_check_rejects_wrong_signs_and_lengths() {
        let (p, _) = tiny_conflict();
        // wrong length
        assert!(!certifies_infeasibility(&p, &[1.0]));
        // wrong sign on the ≤ row
        assert!(!certifies_infeasibility(&p, &[1.0, 1.0, 0.0]));
        // all-zero proves nothing
        assert!(!certifies_infeasibility(&p, &[0.0, 0.0, 0.0]));
        // the textbook certificate: −1·(x ≤ 1) + 1·(x ≥ 2) ⇒ 0 ≥ 1
        assert!(certifies_infeasibility(&p, &[-1.0, 1.0, 0.0]));
    }

    #[test]
    fn restricted_preserves_vars_and_objective() {
        let (p, ids) = tiny_conflict();
        let q = p.restricted(&[ids[2]]);
        assert_eq!(q.num_vars(), p.num_vars());
        assert_eq!(q.num_constraints(), 1);
        let s = q.solve().unwrap();
        assert_eq!(s.status(), Status::Optimal);
        // min x + y with only y ≥ 0.5 ⇒ objective 0.5
        assert!((s.objective().unwrap() - 0.5).abs() < 1e-9);
    }
}
