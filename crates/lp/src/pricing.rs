//! Pricing strategies for the sparse-LU simplex.
//!
//! PR 9's devex pricing scans every nonbasic column each pivot — `O(ncols
//! × nnz-per-column)` per iteration, the second half (with the dense
//! triangular solves) of why 10k-row solves took ~48 s. This module makes
//! the strategy selectable:
//!
//! * [`Pricing::Devex`] — the full devex scan, exactly PR 9's loop.
//! * [`Pricing::Partial`] — candidate-list devex (the default for the
//!   sparse variant): keep a short list of attractive columns, re-price
//!   only the list plus a rotating slice of the column range each
//!   iteration, and *always* fall back to one full scan before declaring
//!   optimality, so verdicts are identical to full pricing by
//!   construction. Devex reference weights are maintained exactly on the
//!   candidate list and left stale elsewhere — a scoring approximation
//!   (may change the pivot sequence) that can never change the answer.
//! * [`Pricing::Bland`] — first-eligible lowest-index selection from the
//!   first iteration. Terminally slow but cycling-proof; the other two
//!   modes still switch to Bland automatically after the shared
//!   anti-cycling iteration threshold, exactly as before.
//!
//! The dense and revised variants price their whole tableau rows by
//! construction and ignore the setting (documented on
//! [`Pricing`]).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::EPS;

/// Simplex pricing strategy (honored by the sparse-LU variant; the dense
/// and revised variants always price the full column set and ignore it).
/// All strategies produce the same verdict and optimum — they differ only
/// in which eligible column enters first, i.e. in the path taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Full devex scan of every nonbasic column per pivot.
    Devex,
    /// Candidate-list devex with a rotating pricing slice and a full-scan
    /// optimality check (default).
    #[default]
    Partial,
    /// Bland's first-eligible rule from the first iteration.
    Bland,
}

impl Pricing {
    /// All strategies, for equivalence sweeps.
    pub const ALL: [Pricing; 3] = [Pricing::Devex, Pricing::Partial, Pricing::Bland];

    /// The CLI/serve spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Pricing::Devex => "devex",
            Pricing::Partial => "partial",
            Pricing::Bland => "bland",
        }
    }
}

impl std::fmt::Display for Pricing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Pricing {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "devex" => Ok(Pricing::Devex),
            "partial" => Ok(Pricing::Partial),
            "bland" => Ok(Pricing::Bland),
            other => Err(format!(
                "unknown pricing '{other}' (expected devex, partial, or bland)"
            )),
        }
    }
}

/// Candidate-list partial pricer.
///
/// Per [`PartialPricer::select`] call: re-score the candidate list exactly
/// (dropping columns that went basic or unattractive), top it up from a
/// rotating slice of the column range, and return the best devex-scored
/// column seen. Only when both come up empty does a full scan run — so an
/// `None` return is a *certified* "no eligible column anywhere", the same
/// optimality proof full pricing gives.
pub(crate) struct PartialPricer {
    candidates: Vec<usize>,
    member: Vec<bool>,
    cursor: usize,
    slice: usize,
    cap: usize,
}

impl PartialPricer {
    pub(crate) fn new(ncols: usize) -> Self {
        // Slice ~1/4 of the range: every column is re-priced at least once
        // every 4 iterations; small problems degenerate to a full scan per
        // pivot (i.e. plain devex). A wide slice keeps the devex scores
        // current enough to nearly match full devex's pivot count while
        // scanning a quarter of the columns — at the 10k-row bench anchor,
        // 1/16 took 26k pivots and 1/4 takes 20k (full devex: 18k), and
        // total time bottoms out here (1/2 pays more in scan time than it
        // saves in pivots).
        let slice = (ncols / 4).clamp(256, 16384);
        let cap = (ncols / 64).clamp(64, 2048);
        PartialPricer {
            candidates: Vec::with_capacity(cap),
            member: vec![false; ncols],
            cursor: 0,
            slice,
            cap,
        }
    }

    /// The current candidate list (the scope of partial devex weight
    /// maintenance).
    pub(crate) fn candidates(&self) -> &[usize] {
        &self.candidates
    }

    /// Picks the entering column. `eligible(j)` must exclude basic and
    /// disallowed columns; `zj(j)` is the exact reduced cost; `weight(j)`
    /// the devex reference weight. Returns `None` only after a full scan
    /// found no eligible column with `zj < -EPS` — a certified optimality
    /// condition, not a "list was empty" shortcut.
    pub(crate) fn select(
        &mut self,
        ncols: usize,
        eligible: impl Fn(usize) -> bool,
        zj: impl Fn(usize) -> f64,
        weight: impl Fn(usize) -> f64,
    ) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        let consider = |j: usize, best: &mut Option<(f64, usize)>| -> bool {
            if !eligible(j) {
                return false;
            }
            let z = zj(j);
            if z >= -EPS {
                return false;
            }
            let score = z * z / weight(j);
            if best.is_none_or(|(bs, _)| score > bs) {
                *best = Some((score, j));
            }
            true
        };

        // 1. Exact re-score of the standing candidates.
        let member = &mut self.member;
        self.candidates.retain(|&j| {
            let keep = consider(j, &mut best);
            if !keep {
                member[j] = false;
            }
            keep
        });

        // 2. Rotating slice: fresh blood for the list, and a guarantee
        // that every column is looked at every `ncols/slice` iterations.
        for _ in 0..self.slice.min(ncols) {
            let j = self.cursor;
            self.cursor += 1;
            if self.cursor >= ncols {
                self.cursor = 0;
            }
            if self.member[j] {
                continue;
            }
            if consider(j, &mut best) && self.candidates.len() < self.cap {
                self.candidates.push(j);
                self.member[j] = true;
            }
        }
        if best.is_some() {
            return best.map(|(_, j)| j);
        }

        // 3. Exhausted: full scan before declaring optimality (refills the
        // list as a side effect, so a near-optimal tail doesn't full-scan
        // every iteration).
        for j in 0..ncols {
            if self.member[j] {
                continue; // already re-scored (and rejected) above
            }
            if consider(j, &mut best) && self.candidates.len() < self.cap {
                self.candidates.push(j);
                self.member[j] = true;
            }
        }
        best.map(|(_, j)| j)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn pricing_round_trips_through_strings() {
        for p in Pricing::ALL {
            assert_eq!(p.as_str().parse::<Pricing>().unwrap(), p);
        }
        assert!("quantum".parse::<Pricing>().is_err());
        assert_eq!(Pricing::default(), Pricing::Partial);
    }

    #[test]
    fn select_finds_best_column_and_certifies_optimality() {
        let ncols = 10_000;
        let mut pricer = PartialPricer::new(ncols);
        // Only column 9_999 is attractive — outside the first slice, so
        // the full-scan fallback must find it rather than claim optimal.
        let q = pricer.select(
            ncols,
            |_| true,
            |j| if j == 9_999 { -1.0 } else { 0.0 },
            |_| 1.0,
        );
        assert_eq!(q, Some(9_999));
        // Now nothing is attractive: None, certified by a full scan.
        let q = pricer.select(ncols, |_| true, |_| 0.0, |_| 1.0);
        assert_eq!(q, None);
    }

    #[test]
    fn select_prefers_higher_devex_score() {
        let ncols = 100;
        let mut pricer = PartialPricer::new(ncols);
        // z = -1 everywhere, but column 42 has a tiny weight -> top score.
        let q = pricer.select(
            ncols,
            |_| true,
            |_| -1.0,
            |j| if j == 42 { 0.01 } else { 1.0 },
        );
        assert_eq!(q, Some(42));
    }

    #[test]
    fn candidate_list_drops_ineligible_columns() {
        let ncols = 100;
        let mut pricer = PartialPricer::new(ncols);
        pricer.select(ncols, |_| true, |_| -1.0, |_| 1.0);
        assert!(!pricer.candidates().is_empty());
        // Everything went basic: list must drain and the scan must still
        // terminate with None.
        let q = pricer.select(ncols, |_| false, |_| -1.0, |_| 1.0);
        assert_eq!(q, None);
        assert!(pricer.candidates().is_empty());
    }
}
