//! LP model builder.

use crate::error::LpError;
use crate::expr::{LinExpr, VarId};
use crate::revised;
use crate::simplex;
use crate::solution::Solution;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which simplex implementation [`Problem::solve_with`] runs.
///
/// All variants produce the same statuses and optima; see the
/// [`revised`-module docs](crate) for the performance trade-off (the
/// revised variant exploits the 0/±1 sparsity of SMO constraint matrices)
/// and the [`sparse`-module docs](crate) for the large-model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SimplexVariant {
    /// Classical dense tableau (default; required for parametric analysis).
    #[default]
    Dense,
    /// Revised simplex with a dense product-form inverse.
    Revised,
    /// Sparse-LU revised simplex: Markowitz-ordered basis factorization,
    /// bounded-eta updates, devex pricing. The only variant whose
    /// per-solve memory and refactorization cost scale with the matrix
    /// *nonzeros* rather than `rows²`/`rows³` — use it beyond a few
    /// thousand rows.
    SparseLu,
}

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize the objective expression.
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

/// Sense (direction) of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sense {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sense::Le => write!(f, "<="),
            Sense::Ge => write!(f, ">="),
            Sense::Eq => write!(f, "=="),
        }
    }
}

/// Opaque handle to a constraint row of a [`Problem`]; indexes the dual
/// vector of a [`Solution`](crate::Solution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Zero-based row index of this constraint in its owning problem.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Variable {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Row {
    pub name: Option<String>,
    pub expr: LinExpr,
    pub sense: Sense,
    pub rhs: f64,
}

/// A linear program under construction.
///
/// Variables default to the domain `[0, +∞)` — the natural domain for the SMO
/// timing variables (`Tc`, phase widths, phase starts, departure times are all
/// non-negative, eqs. (7)–(9), (18)). Free or bounded variables are available
/// through [`Problem::add_var_bounded`] / [`Problem::add_free_var`].
///
/// See the [crate docs](crate) for a worked example.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Problem {
    pub(crate) vars: Vec<Variable>,
    pub(crate) rows: Vec<Row>,
    pub(crate) objective: Option<(Objective, LinExpr)>,
}

impl Problem {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with domain `[0, +∞)` and returns its handle.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), 0.0, f64::INFINITY)
    }

    /// Adds a variable with domain `[lower, upper]` (either bound may be
    /// infinite).
    pub fn add_var_bounded(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.push_var(name.into(), lower, upper)
    }

    /// Adds a free variable with domain `(-∞, +∞)`.
    pub fn add_free_var(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), f64::NEG_INFINITY, f64::INFINITY)
    }

    fn push_var(&mut self, name: String, lower: f64, upper: f64) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable { name, lower, upper });
        id
    }

    /// Adds the constraint `expr (sense) rhs` and returns its handle.
    ///
    /// Any constant inside `expr` is folded onto the right-hand side, so
    /// `constrain(x - y + 3, Le, 5)` stores `x - y ≤ 2`.
    pub fn constrain(&mut self, expr: LinExpr, sense: Sense, rhs: f64) -> ConstraintId {
        self.constrain_named(None::<String>, expr, sense, rhs)
    }

    /// Like [`Problem::constrain`] but attaches a diagnostic name reported in
    /// infeasibility analyses.
    pub fn constrain_named(
        &mut self,
        name: Option<impl Into<String>>,
        mut expr: LinExpr,
        sense: Sense,
        rhs: f64,
    ) -> ConstraintId {
        let k = expr.constant();
        expr.add_constant(-k);
        let id = ConstraintId(self.rows.len());
        self.rows.push(Row {
            name: name.map(Into::into),
            expr,
            sense,
            rhs: rhs - k,
        });
        id
    }

    /// Sets the objective to minimize `expr`.
    pub fn minimize(&mut self, expr: LinExpr) {
        self.objective = Some((Objective::Minimize, expr));
    }

    /// Sets the objective to maximize `expr`.
    pub fn maximize(&mut self, expr: LinExpr) {
        self.objective = Some((Objective::Maximize, expr));
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// `(lower, upper)` bounds of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem.
    pub fn var_bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.vars[var.0];
        (v.lower, v.upper)
    }

    /// Optional diagnostic name of a constraint.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to this problem.
    pub fn constraint_name(&self, c: ConstraintId) -> Option<&str> {
        self.rows[c.0].name.as_deref()
    }

    /// The `(expr, sense, rhs)` triple of a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to this problem.
    pub fn constraint(&self, c: ConstraintId) -> (&LinExpr, Sense, f64) {
        let r = &self.rows[c.0];
        (&r.expr, r.sense, r.rhs)
    }

    /// Overwrites the right-hand side of an existing constraint.
    ///
    /// This is the entry point used by sweep-style experiments that re-solve
    /// the same model with a perturbed delay.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to this problem.
    pub fn set_rhs(&mut self, c: ConstraintId, rhs: f64) {
        self.rows[c.0].rhs = rhs;
    }

    /// Validates the model without solving it.
    ///
    /// # Errors
    ///
    /// Returns the first problem found: missing objective, empty model,
    /// inverted bounds, or non-finite input data.
    pub fn validate(&self) -> Result<(), LpError> {
        if self.vars.is_empty() {
            return Err(LpError::EmptyModel);
        }
        let (_, obj) = self.objective.as_ref().ok_or(LpError::MissingObjective)?;
        if !obj.is_finite() {
            return Err(LpError::NonFiniteInput {
                context: "objective".into(),
            });
        }
        for v in &self.vars {
            if v.lower > v.upper {
                return Err(LpError::InvalidBounds {
                    var: v.name.clone(),
                    lower: v.lower,
                    upper: v.upper,
                });
            }
            if v.lower.is_nan() || v.upper.is_nan() {
                return Err(LpError::NonFiniteInput {
                    context: format!("bounds of variable `{}`", v.name),
                });
            }
        }
        for (i, r) in self.rows.iter().enumerate() {
            if !r.expr.is_finite() || !r.rhs.is_finite() {
                return Err(LpError::NonFiniteInput {
                    context: match &r.name {
                        Some(n) => format!("constraint `{n}`"),
                        None => format!("constraint #{i}"),
                    },
                });
            }
        }
        Ok(())
    }

    /// Solves the model with the two-phase primal simplex.
    ///
    /// Infeasible and unbounded models are reported through
    /// [`Status`](crate::Status) on the returned [`Solution`], not as errors.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid models (see [`Problem::validate`]) or if
    /// the internal iteration safeguard trips.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(SimplexVariant::Dense)
    }

    /// Solves the model with an explicit simplex implementation.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_with(&self, variant: SimplexVariant) -> Result<Solution, LpError> {
        self.solve_with_budget(variant, crate::recover::SolveBudget::UNLIMITED)
    }

    /// Solves the model under a wall-clock / iteration budget, checked
    /// inside both simplex pivot loops.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`], plus [`LpError::Budget`] when the
    /// budget is exhausted before the solve terminates.
    pub fn solve_with_budget(
        &self,
        variant: SimplexVariant,
        budget: crate::recover::SolveBudget,
    ) -> Result<Solution, LpError> {
        self.solve_with_options(variant, budget, crate::Pricing::default())
    }

    /// [`Problem::solve_with_budget`] with an explicit pricing strategy.
    /// Pricing is honored by the sparse-LU variant; the dense and revised
    /// variants price their full tableau rows by construction and ignore
    /// it. Every strategy yields the same verdict and optimum.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve_with_budget`].
    pub fn solve_with_options(
        &self,
        variant: SimplexVariant,
        budget: crate::recover::SolveBudget,
        pricing: crate::Pricing,
    ) -> Result<Solution, LpError> {
        self.validate()?;
        match variant {
            SimplexVariant::Dense => simplex::solve_budgeted(self, budget),
            SimplexVariant::Revised => revised::solve_budgeted(self, budget),
            SimplexVariant::SparseLu => crate::sparse::solve_budgeted(self, budget, pricing),
        }
    }

    /// Solves warm-starting from a basis snapshot captured by an earlier
    /// optimal solve ([`Solution::basis`](crate::Solution::basis)) of this
    /// or a perturbed copy of this model.
    ///
    /// The snapshot is installed and repaired with a bounded dual/primal
    /// phase instead of a from-scratch phase 1; when it no longer fits the
    /// model (dimensions changed, a row's standard form flipped, the basis
    /// went singular, the repair budget ran out) the solve silently falls
    /// back to the cold path. Warm starts therefore never change a
    /// verdict — an `Infeasible`/`Unbounded` status and its Farkas
    /// certificate always come from the proven cold phase-1 machinery.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_from_basis(&self, basis: &crate::Basis) -> Result<Solution, LpError> {
        self.solve_from_basis_with(SimplexVariant::Dense, basis)
    }

    /// [`Problem::solve_from_basis`] with an explicit simplex
    /// implementation.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_from_basis_with(
        &self,
        variant: SimplexVariant,
        basis: &crate::Basis,
    ) -> Result<Solution, LpError> {
        self.solve_from_basis_with_budget(variant, basis, crate::recover::SolveBudget::UNLIMITED)
    }

    /// [`Problem::solve_from_basis_with`] under a wall-clock / iteration
    /// budget (shared by the warm attempt and any cold fallback).
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve_with_budget`].
    pub fn solve_from_basis_with_budget(
        &self,
        variant: SimplexVariant,
        basis: &crate::Basis,
        budget: crate::recover::SolveBudget,
    ) -> Result<Solution, LpError> {
        self.solve_from_basis_with_options(variant, basis, budget, crate::Pricing::default())
    }

    /// [`Problem::solve_from_basis_with_budget`] with an explicit pricing
    /// strategy (see [`Problem::solve_with_options`]).
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve_with_budget`].
    pub fn solve_from_basis_with_options(
        &self,
        variant: SimplexVariant,
        basis: &crate::Basis,
        budget: crate::recover::SolveBudget,
        pricing: crate::Pricing,
    ) -> Result<Solution, LpError> {
        self.validate()?;
        match variant {
            SimplexVariant::Dense => simplex::solve_from_basis_budgeted(self, basis, budget),
            SimplexVariant::Revised => revised::solve_from_basis_budgeted(self, basis, budget),
            SimplexVariant::SparseLu => {
                crate::sparse::solve_from_basis_budgeted(self, basis, budget, pricing)
            }
        }
    }

    /// Crossover: builds a warm-start [`Basis`](crate::Basis) from a bare
    /// primal point (one value per variable), with no prior simplex run.
    ///
    /// This is how a solution produced *outside* the simplex — the
    /// difference-constraint graph backend's schedule, a cached point from
    /// a related model — enters the warm-start machinery: rows with strict
    /// slack at the point get their logical column, tight rows get a
    /// supporting structural column. The guess is best-effort; if it turns
    /// out singular or badly infeasible,
    /// [`Problem::solve_from_basis`] falls back to a cold solve, so the
    /// verdict is never at risk.
    ///
    /// # Errors
    ///
    /// [`LpError`] if `x` has the wrong length or the problem fails
    /// standard-form construction (no objective, malformed bounds, …).
    pub fn basis_from_point(&self, x: &[f64]) -> Result<crate::Basis, LpError> {
        self.validate()?;
        simplex::Tableau::basis_from_point(self, x)
    }

    /// Fingerprint of the standard-form constraint *matrix* — the same
    /// FNV-1a hash a basis snapshot carries
    /// ([`Basis::matrix_hash`](crate::Basis::matrix_hash)).
    ///
    /// RHS values are deliberately excluded, so two models that differ only
    /// in right-hand sides (e.g. the same circuit with perturbed delays)
    /// share a fingerprint. Use it to key warm-start basis caches across a
    /// batch of structurally identical problems.
    ///
    /// # Errors
    ///
    /// [`LpError`] if the problem fails validation or standard-form
    /// construction (no objective, malformed bounds, …).
    pub fn matrix_fingerprint(&self) -> Result<u64, LpError> {
        self.validate()?;
        // The CSC standard form carries the same hash as the dense tableau
        // (the tableau is densified from it) at O(nnz) cost, not O(m·n).
        Ok(crate::sparse::StdForm::build(self, None)?.matrix_hash)
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.objective {
            Some((Objective::Minimize, e)) => writeln!(f, "minimize {e}")?,
            Some((Objective::Maximize, e)) => writeln!(f, "maximize {e}")?,
            None => writeln!(f, "(no objective)")?,
        }
        writeln!(f, "subject to")?;
        for r in &self.rows {
            write!(f, "  ")?;
            if let Some(n) = &r.name {
                write!(f, "[{n}] ")?;
            }
            writeln!(f, "{} {} {}", r.expr, r.sense, r.rhs)?;
        }
        for (i, v) in self.vars.iter().enumerate() {
            if v.lower != 0.0 || v.upper != f64::INFINITY {
                writeln!(
                    f,
                    "  {} in [{}, {}]  ({})",
                    VarId(i),
                    v.lower,
                    v.upper,
                    v.name
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_into_rhs() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let c = p.constrain(x - y + 3.0, Sense::Le, 5.0);
        let (expr, sense, rhs) = p.constraint(c);
        assert_eq!(expr.constant(), 0.0);
        assert_eq!(sense, Sense::Le);
        assert_eq!(rhs, 2.0);
    }

    #[test]
    fn validate_rejects_empty_and_objectiveless() {
        let p = Problem::new();
        assert_eq!(p.validate(), Err(LpError::EmptyModel));
        let mut p = Problem::new();
        p.add_var("x");
        assert_eq!(p.validate(), Err(LpError::MissingObjective));
    }

    #[test]
    fn validate_rejects_bad_bounds_and_nan() {
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", 2.0, 1.0);
        p.minimize(x.into());
        assert!(matches!(p.validate(), Err(LpError::InvalidBounds { .. })));

        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(LinExpr::term(x, f64::NAN), Sense::Le, 1.0);
        p.minimize(x.into());
        assert!(matches!(p.validate(), Err(LpError::NonFiniteInput { .. })));
    }

    #[test]
    fn display_round_trips_senses() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain_named(Some("cap"), x.into(), Sense::Le, 4.0);
        p.minimize(x.into());
        let s = format!("{p}");
        assert!(s.contains("minimize x0"));
        assert!(s.contains("[cap] x0 <= 4"));
    }

    #[test]
    fn set_rhs_updates_row() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let c = p.constrain(x.into(), Sense::Ge, 1.0);
        p.set_rhs(c, 7.0);
        assert_eq!(p.constraint(c).2, 7.0);
    }
}
