//! LP presolve: model reductions applied before the simplex, plus a
//! postsolve map back to the original problem.
//!
//! The SMO timing LPs carry a fair amount of structure the simplex does not
//! need to see: flip-flop departures are pinned to zero by equality rows
//! (eq. 21), `CycleBound`/`MinWidth` extras are single-variable rows that are
//! really just bounds, and same-phase edges generate `C3` rows that duplicate
//! the `C1` width rows (§IV). [`Problem::presolve`] strips all of that:
//!
//! 1. **empty rows** — constant rows are checked and dropped;
//! 2. **singleton rows** — `a·x ⋛ b` folds into the bound box of `x`;
//! 3. **fixed variables** — `lower == upper` substitutes the value into every
//!    row and removes the column (flip-flop departure variables, pinned
//!    departures);
//! 4. **bound tightening** — row activities over the bound box imply tighter
//!    variable bounds;
//! 5. **redundant rows** — rows satisfied by every point of the bound box;
//! 6. **dominated rows** — rows whose coefficient vector duplicates another
//!    row with a weaker right-hand side.
//!
//! The result is a [`Presolved`] bundle: the reduced [`Problem`], per-row
//! [`RowFate`]s and per-variable [`VarFate`]s keyed by the **original**
//! [`ConstraintId`]/[`VarId`] (so IIS extraction and `diagnose` provenance
//! keep working), plus [`Presolved::postsolve`] which lifts a solution of the
//! reduced problem back to a full primal/dual solution of the original.
//!
//! [`Problem::solve_with_presolve`] wires the pass into the solve path. It
//! is deliberately conservative: whenever the reduced solve (or the presolve
//! itself) concludes anything other than [`Status::Optimal`], it falls back
//! to solving the *original* problem so that infeasibility statuses, Farkas
//! certificates and IIS extraction see the exact original row set.
//!
//! Postsolve guarantees: the primal point, slacks and objective are exact
//! (slacks are re-evaluated on the original rows). Duals of kept rows are
//! exact; a singleton row that supplied the binding bound of a variable
//! receives the multiplier implied by that variable's reduced cost; other
//! removed rows are non-binding at the optimum and get a zero multiplier.

use crate::error::LpError;
use crate::expr::{LinExpr, VarId};
use crate::problem::{ConstraintId, Objective, Problem, Sense, SimplexVariant};
use crate::solution::{Solution, Status};
use crate::EPS;
use std::collections::HashMap;
use std::fmt;

/// Feasibility tolerance for presolve-level conflict detection (matches the
/// IIS certificate tolerance).
const FEAS_TOL: f64 = 1e-7;

/// Knobs for [`Problem::presolve`] / [`Problem::solve_with_presolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresolveOptions {
    /// Master switch; when `false`, [`Problem::solve_with_presolve`] behaves
    /// exactly like [`Problem::solve_with`].
    pub enabled: bool,
    /// Maximum number of reduction sweeps (each sweep re-runs every pass
    /// until a fixpoint or this cap).
    pub max_passes: usize,
}

impl Default for PresolveOptions {
    fn default() -> Self {
        PresolveOptions {
            enabled: true,
            max_passes: 8,
        }
    }
}

impl PresolveOptions {
    /// Presolve disabled: the solve path is byte-for-byte the plain simplex.
    pub fn off() -> Self {
        PresolveOptions {
            enabled: false,
            ..Self::default()
        }
    }
}

/// What presolve did with one constraint row of the original problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowFate {
    /// Row survives; its id in the reduced problem.
    Kept(ConstraintId),
    /// Row had no variable terms (after substitutions) and was trivially
    /// satisfied.
    Empty,
    /// Single-variable row folded into the variable's bound box.
    Singleton,
    /// Row is satisfied by every point of the variable bound box.
    Redundant,
    /// Row duplicates the referenced original row with an equal-or-weaker
    /// right-hand side.
    Dominated(ConstraintId),
}

/// What presolve did with one variable of the original problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarFate {
    /// Variable survives; its id in the reduced problem.
    Kept(VarId),
    /// Variable was fixed at the given value and substituted out.
    Fixed(f64),
}

/// Reduction counters reported by [`Presolved::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Rows in the original problem.
    pub rows_before: usize,
    /// Rows in the reduced problem.
    pub rows_after: usize,
    /// Variables in the original problem.
    pub vars_before: usize,
    /// Variables in the reduced problem.
    pub vars_after: usize,
    /// Rows removed because they had no variable terms.
    pub empty_rows: usize,
    /// Single-variable rows folded into bounds.
    pub singleton_rows: usize,
    /// Rows implied by the variable bound box.
    pub redundant_rows: usize,
    /// Rows dominated by a duplicate row.
    pub dominated_rows: usize,
    /// Variables fixed and substituted out.
    pub fixed_vars: usize,
    /// Variable bounds tightened from row activities.
    pub tightened_bounds: usize,
    /// Reduction sweeps executed.
    pub passes: usize,
}

impl PresolveStats {
    /// Total rows removed by any pass.
    pub fn rows_removed(&self) -> usize {
        self.rows_before - self.rows_after
    }
}

impl fmt::Display for PresolveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} rows ({} removed: {} singleton, {} dominated, {} redundant, {} empty), \
             {} -> {} vars ({} fixed), {} bound(s) tightened, {} pass(es)",
            self.rows_before,
            self.rows_after,
            self.rows_removed(),
            self.singleton_rows,
            self.dominated_rows,
            self.redundant_rows,
            self.empty_rows,
            self.vars_before,
            self.vars_after,
            self.fixed_vars,
            self.tightened_bounds,
            self.passes
        )
    }
}

/// Output of [`Problem::presolve`]: the reduced problem plus the postsolve
/// map back to the original.
#[derive(Debug, Clone)]
pub struct Presolved {
    original: Problem,
    reduced: Problem,
    row_fates: Vec<RowFate>,
    var_fates: Vec<VarFate>,
    stats: PresolveStats,
    verdict: Option<Status>,
    /// Original row index that supplied the final lower/upper bound of each
    /// original variable, when that bound came from a folded singleton row.
    lb_row: Vec<Option<usize>>,
    ub_row: Vec<Option<usize>>,
    /// Equality singleton row that fixed each variable, if any.
    fixing_row: Vec<Option<usize>>,
}

impl Presolved {
    /// The reduced problem. Only meaningful when
    /// [`Presolved::proven_status`] is `None`.
    pub fn reduced(&self) -> &Problem {
        &self.reduced
    }

    /// Reduction counters.
    pub fn stats(&self) -> &PresolveStats {
        &self.stats
    }

    /// Status proven during presolve itself (infeasible or unbounded), if
    /// any. [`Problem::solve_with_presolve`] re-solves the original problem
    /// in that case so certificates reference original rows.
    pub fn proven_status(&self) -> Option<Status> {
        self.verdict
    }

    /// Fate of an original constraint row.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to the original problem.
    pub fn row_fate(&self, c: ConstraintId) -> RowFate {
        self.row_fates[c.index()]
    }

    /// Fate of an original variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the original problem.
    pub fn var_fate(&self, v: VarId) -> VarFate {
        self.var_fates[v.index()]
    }

    /// Maps a constraint of the reduced problem back to the original row it
    /// came from.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to the reduced problem.
    pub fn original_row(&self, c: ConstraintId) -> ConstraintId {
        for (i, fate) in self.row_fates.iter().enumerate() {
            if let RowFate::Kept(r) = fate {
                if *r == c {
                    return ConstraintId(i);
                }
            }
        }
        panic!("constraint #{} does not belong to the reduced problem", c.0)
    }

    /// Maps an original constraint to its id in the reduced problem, if it
    /// survived.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to the original problem.
    pub fn reduced_row(&self, c: ConstraintId) -> Option<ConstraintId> {
        match self.row_fates[c.index()] {
            RowFate::Kept(r) => Some(r),
            _ => None,
        }
    }

    /// Lifts a solution of the reduced problem back to the original problem.
    ///
    /// The primal point, slacks and objective are exact (slacks are
    /// re-evaluated on the original rows at the reconstructed point). Duals
    /// of kept rows are copied; a folded singleton row that supplies the
    /// binding bound of a variable receives the multiplier implied by that
    /// variable's reduced cost, and all other removed rows get zero.
    ///
    /// For a non-[`Status::Optimal`] input the status is forwarded with
    /// empty vectors; [`Problem::solve_with_presolve`] never surfaces that
    /// case (it falls back to solving the original problem instead).
    pub fn postsolve(&self, reduced: &Solution) -> Solution {
        if reduced.status != Status::Optimal {
            return Solution {
                status: reduced.status,
                objective: None,
                values: vec![],
                duals: vec![],
                reduced_costs: vec![],
                slacks: vec![],
                iterations: reduced.iterations,
                farkas: None,
                basis: None,
                stats: None,
            };
        }

        let n = self.original.vars.len();
        let m = self.original.rows.len();

        // Primal point.
        let mut values = vec![0.0; n];
        for (j, fate) in self.var_fates.iter().enumerate() {
            values[j] = match *fate {
                VarFate::Kept(r) => reduced.values[r.index()],
                VarFate::Fixed(v) => v,
            };
        }

        // Duals: kept rows copy theirs, then transfer reduced costs onto the
        // singleton rows that supplied binding bounds.
        let mut duals = vec![0.0; m];
        for (i, fate) in self.row_fates.iter().enumerate() {
            if let RowFate::Kept(r) = fate {
                duals[i] = reduced.duals[r.index()];
            }
        }
        let mut reduced_costs = vec![0.0; n];
        for (j, fate) in self.var_fates.iter().enumerate() {
            if let VarFate::Kept(r) = *fate {
                let mut rc = reduced.reduced_costs[r.index()];
                let bound_row = if rc > EPS {
                    self.lb_row[j]
                } else if rc < -EPS {
                    self.ub_row[j]
                } else {
                    None
                };
                if let Some(i) = bound_row {
                    if matches!(self.row_fates[i], RowFate::Singleton) {
                        let a = self.original.rows[i].expr.coeff(VarId(j));
                        if a.abs() > EPS {
                            duals[i] = rc / a;
                            rc = 0.0;
                        }
                    }
                }
                reduced_costs[j] = rc;
            }
        }
        // Fixed variables: close the stationarity gap through the equality
        // singleton that fixed them, when there is one.
        let obj_expr = self.original.objective.as_ref().map(|(_, e)| e);
        for (j, fate) in self.var_fates.iter().enumerate() {
            if let VarFate::Fixed(_) = *fate {
                let c_j = obj_expr.map_or(0.0, |e| e.coeff(VarId(j)));
                let mut gap = c_j;
                for (i, row) in self.original.rows.iter().enumerate() {
                    if duals[i] != 0.0 {
                        gap -= duals[i] * row.expr.coeff(VarId(j));
                    }
                }
                let carrier = self.fixing_row[j].or(if gap > EPS {
                    self.lb_row[j]
                } else if gap < -EPS {
                    self.ub_row[j]
                } else {
                    None
                });
                if let Some(i) = carrier {
                    if matches!(self.row_fates[i], RowFate::Singleton) {
                        let a = self.original.rows[i].expr.coeff(VarId(j));
                        if a.abs() > EPS {
                            duals[i] += gap / a;
                            gap = 0.0;
                        }
                    }
                }
                reduced_costs[j] = gap;
            }
        }

        // Slacks and objective, evaluated exactly on the original model.
        let slacks = self
            .original
            .rows
            .iter()
            .map(|r| {
                let lhs = r.expr.eval(&values);
                match r.sense {
                    Sense::Le | Sense::Eq => r.rhs - lhs,
                    Sense::Ge => lhs - r.rhs,
                }
            })
            .collect();
        let objective = self
            .original
            .objective
            .as_ref()
            .map(|(_, e)| e.eval(&values));

        Solution {
            status: Status::Optimal,
            objective,
            values,
            duals,
            reduced_costs,
            slacks,
            iterations: reduced.iterations,
            // The reduced problem's basis does not map onto the original
            // rows; postsolved solutions are not warm-start sources.
            farkas: None,
            basis: None,
            stats: None,
        }
    }
}

// ---- working state ------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum WorkFate {
    Alive,
    Empty,
    Singleton,
    Redundant,
    Dominated(usize),
}

struct Work {
    lb: Vec<f64>,
    ub: Vec<f64>,
    rows: Vec<LinExpr>,
    sense: Vec<Sense>,
    rhs: Vec<f64>,
    fate: Vec<WorkFate>,
    fixed: Vec<Option<f64>>,
    lb_row: Vec<Option<usize>>,
    ub_row: Vec<Option<usize>>,
    fixing_row: Vec<Option<usize>>,
    stats: PresolveStats,
    verdict: Option<Status>,
}

impl Work {
    fn alive(&self, i: usize) -> bool {
        self.fate[i] == WorkFate::Alive
    }

    /// Raises the lower bound of `j` to `b` if that is a strict improvement
    /// of at least `min_gain`; `prov` records which row supplied the bound.
    fn tighten_lb(&mut self, j: usize, b: f64, prov: Option<usize>, min_gain: f64) -> bool {
        if b > self.lb[j] + min_gain || (self.lb[j] == f64::NEG_INFINITY && b > f64::NEG_INFINITY) {
            self.lb[j] = b;
            self.lb_row[j] = prov;
            true
        } else {
            false
        }
    }

    /// Mirror of [`Work::tighten_lb`] for the upper bound.
    fn tighten_ub(&mut self, j: usize, b: f64, prov: Option<usize>, min_gain: f64) -> bool {
        if b < self.ub[j] - min_gain || (self.ub[j] == f64::INFINITY && b < f64::INFINITY) {
            self.ub[j] = b;
            self.ub_row[j] = prov;
            true
        } else {
            false
        }
    }

    /// Minimum and maximum of `expr` over the current bound box. Each entry
    /// is either finite or the matching infinity; never NaN.
    fn activity(&self, expr: &LinExpr) -> (f64, f64) {
        let mut lo = 0.0;
        let mut hi = 0.0;
        let mut lo_inf = false;
        let mut hi_inf = false;
        for (v, a) in expr.iter() {
            let j = v.index();
            let (cl, ch) = if a > 0.0 {
                (a * self.lb[j], a * self.ub[j])
            } else {
                (a * self.ub[j], a * self.lb[j])
            };
            if cl == f64::NEG_INFINITY {
                lo_inf = true;
            } else {
                lo += cl;
            }
            if ch == f64::INFINITY {
                hi_inf = true;
            } else {
                hi += ch;
            }
        }
        (
            if lo_inf { f64::NEG_INFINITY } else { lo },
            if hi_inf { f64::INFINITY } else { hi },
        )
    }

    /// Folds the singleton row `i` (`a·x ⋛ rhs`) into the bounds of `x`.
    fn fold_singleton(&mut self, i: usize) {
        let Some((v, a)) = self.rows[i].iter().next() else {
            return; // empty rows are classified elsewhere, never folded
        };
        let j = v.index();
        let b = self.rhs[i] / a;
        match (self.sense[i], a > 0.0) {
            (Sense::Le, true) | (Sense::Ge, false) => {
                self.tighten_ub(j, b, Some(i), 0.0);
            }
            (Sense::Ge, true) | (Sense::Le, false) => {
                self.tighten_lb(j, b, Some(i), 0.0);
            }
            (Sense::Eq, _) => {
                if b < self.lb[j] - FEAS_TOL || b > self.ub[j] + FEAS_TOL {
                    self.verdict = Some(Status::Infeasible);
                    return;
                }
                self.tighten_lb(j, b, Some(i), 0.0);
                self.tighten_ub(j, b, Some(i), 0.0);
                self.fixing_row[j] = Some(i);
            }
        }
        self.fate[i] = WorkFate::Singleton;
        self.stats.singleton_rows += 1;
    }

    /// Substitutes `x_j = v` into every alive row.
    fn substitute(&mut self, j: usize, value: f64) {
        let var = VarId(j);
        for i in 0..self.rows.len() {
            if !self.alive(i) {
                continue;
            }
            let a = self.rows[i].coeff(var);
            if a != 0.0 {
                self.rows[i].add_term(var, -a);
                self.rhs[i] -= a * value;
            }
        }
    }
}

impl Problem {
    /// Runs the presolve reductions and returns the reduced problem together
    /// with the postsolve map. See the [module docs](crate::presolve) for
    /// the pass list.
    ///
    /// With `opts.enabled == false` this is the identity reduction: every
    /// row and variable is [`RowFate::Kept`]/[`VarFate::Kept`].
    pub fn presolve(&self, opts: &PresolveOptions) -> Presolved {
        let n = self.vars.len();
        let m = self.rows.len();
        let mut w = Work {
            lb: self.vars.iter().map(|v| v.lower).collect(),
            ub: self.vars.iter().map(|v| v.upper).collect(),
            rows: self.rows.iter().map(|r| r.expr.clone()).collect(),
            sense: self.rows.iter().map(|r| r.sense).collect(),
            rhs: self.rows.iter().map(|r| r.rhs).collect(),
            fate: vec![WorkFate::Alive; m],
            fixed: vec![None; n],
            lb_row: vec![None; n],
            ub_row: vec![None; n],
            fixing_row: vec![None; n],
            stats: PresolveStats {
                rows_before: m,
                vars_before: n,
                ..PresolveStats::default()
            },
            verdict: None,
        };

        if opts.enabled {
            let mut changed = true;
            while changed && w.stats.passes < opts.max_passes && w.verdict.is_none() {
                w.stats.passes += 1;
                changed = false;
                changed |= sweep_rows(&mut w);
                changed |= fix_variables(&mut w);
                changed |= sweep_activities(&mut w);
                changed |= sweep_duplicates(&mut w);
            }
            if w.verdict.is_none() {
                fix_empty_columns(&mut w, self.objective.as_ref());
            }
        }

        build_presolved(self, w)
    }

    /// Solves the model through the presolve pipeline: reduce, solve the
    /// reduced problem with `variant`, then postsolve back to the original.
    ///
    /// Falls back to a plain [`Problem::solve_with`] on the original problem
    /// whenever presolve or the reduced solve reaches a non-optimal status,
    /// so infeasible/unbounded results (including Farkas certificates and
    /// IIS extraction) are always reported in terms of the original rows.
    /// With `opts.enabled == false` this is exactly [`Problem::solve_with`].
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_with_presolve(
        &self,
        variant: SimplexVariant,
        opts: &PresolveOptions,
    ) -> Result<Solution, LpError> {
        if !opts.enabled {
            return self.solve_with(variant);
        }
        self.validate()?;
        let pre = self.presolve(opts);
        if pre.proven_status().is_some() {
            return self.solve_with(variant);
        }
        if pre.reduced.vars.is_empty() {
            // Everything was fixed; synthesize an empty optimal solution and
            // postsolve it.
            let empty = Solution {
                status: Status::Optimal,
                objective: pre.reduced.objective.as_ref().map(|(_, e)| e.constant()),
                values: vec![],
                duals: vec![],
                reduced_costs: vec![],
                slacks: vec![],
                iterations: 0,
                farkas: None,
                basis: None,
                stats: None,
            };
            return Ok(pre.postsolve(&empty));
        }
        let rsol = pre.reduced.solve_with(variant)?;
        if rsol.status != Status::Optimal {
            return self.solve_with(variant);
        }
        Ok(pre.postsolve(&rsol))
    }
}

/// Empty-row checks and singleton folds. Returns whether anything changed.
fn sweep_rows(w: &mut Work) -> bool {
    let mut changed = false;
    for i in 0..w.rows.len() {
        if !w.alive(i) || w.verdict.is_some() {
            continue;
        }
        match w.rows[i].len() {
            0 => {
                let ok = match w.sense[i] {
                    Sense::Le => 0.0 <= w.rhs[i] + FEAS_TOL,
                    Sense::Ge => 0.0 >= w.rhs[i] - FEAS_TOL,
                    Sense::Eq => w.rhs[i].abs() <= FEAS_TOL,
                };
                if ok {
                    w.fate[i] = WorkFate::Empty;
                    w.stats.empty_rows += 1;
                } else {
                    w.verdict = Some(Status::Infeasible);
                }
                changed = true;
            }
            1 => {
                w.fold_singleton(i);
                changed = true;
            }
            _ => {}
        }
    }
    changed
}

/// Fixes variables whose bound box collapsed; detects inverted boxes.
fn fix_variables(w: &mut Work) -> bool {
    let mut changed = false;
    for j in 0..w.lb.len() {
        if w.fixed[j].is_some() || w.verdict.is_some() {
            continue;
        }
        if w.lb[j] > w.ub[j] + FEAS_TOL {
            w.verdict = Some(Status::Infeasible);
            continue;
        }
        if w.lb[j].is_finite() && w.ub[j] - w.lb[j] <= EPS {
            let value = w.lb[j];
            w.fixed[j] = Some(value);
            w.stats.fixed_vars += 1;
            w.substitute(j, value);
            changed = true;
        }
    }
    changed
}

/// Activity-based redundancy detection, conflict detection and bound
/// tightening.
fn sweep_activities(w: &mut Work) -> bool {
    let mut changed = false;
    for i in 0..w.rows.len() {
        if !w.alive(i) || w.verdict.is_some() {
            continue;
        }
        let (lo, hi) = w.activity(&w.rows[i]);
        let rhs = w.rhs[i];
        let (redundant, conflict) = match w.sense[i] {
            Sense::Le => (hi <= rhs + EPS, lo > rhs + FEAS_TOL),
            Sense::Ge => (lo >= rhs - EPS, hi < rhs - FEAS_TOL),
            Sense::Eq => (
                hi <= rhs + EPS && lo >= rhs - EPS,
                lo > rhs + FEAS_TOL || hi < rhs - FEAS_TOL,
            ),
        };
        if conflict {
            w.verdict = Some(Status::Infeasible);
            return true;
        }
        if redundant {
            w.fate[i] = WorkFate::Redundant;
            w.stats.redundant_rows += 1;
            changed = true;
            continue;
        }
        changed |= tighten_from_row(w, i, lo, hi);
    }
    changed
}

/// Derives implied variable bounds from row `i` given its activity range.
fn tighten_from_row(w: &mut Work, i: usize, lo: f64, hi: f64) -> bool {
    let mut changed = false;
    let terms: Vec<(usize, f64)> = w.rows[i].iter().map(|(v, a)| (v.index(), a)).collect();
    let sense = w.sense[i];
    let rhs = w.rhs[i];
    for &(j, a) in &terms {
        let (cl, ch) = if a > 0.0 {
            (a * w.lb[j], a * w.ub[j])
        } else {
            (a * w.ub[j], a * w.lb[j])
        };
        // `expr ≤ rhs` ⇒ a·x_j ≤ rhs − (lo − contribution of x_j).
        if matches!(sense, Sense::Le | Sense::Eq) && lo > f64::NEG_INFINITY && cl.is_finite() {
            let limit = rhs - (lo - cl);
            let gain = 1e-9 * (1.0 + limit.abs());
            if a > 0.0 {
                changed |= w.tighten_ub(j, limit / a, None, gain);
            } else {
                changed |= w.tighten_lb(j, limit / a, None, gain);
            }
        }
        // `expr ≥ rhs` ⇒ a·x_j ≥ rhs − (hi − contribution of x_j).
        if matches!(sense, Sense::Ge | Sense::Eq) && hi < f64::INFINITY && ch.is_finite() {
            let limit = rhs - (hi - ch);
            let gain = 1e-9 * (1.0 + limit.abs());
            if a > 0.0 {
                changed |= w.tighten_lb(j, limit / a, None, gain);
            } else {
                changed |= w.tighten_ub(j, limit / a, None, gain);
            }
        }
    }
    changed
}

/// Canonical duplicate-detection key: coefficient vector as exact bit
/// patterns.
type RowKey = Vec<(usize, u64)>;

fn row_key(expr: &LinExpr, negate: bool) -> RowKey {
    expr.iter()
        .map(|(v, a)| (v.index(), (if negate { -a } else { a }).to_bits()))
        .collect()
}

/// Removes rows whose coefficient vector duplicates another row's with an
/// equal-or-weaker right-hand side. `≥` rows are compared in negated (`≤`)
/// form, so a `C3` self-pair row `Tc − T_i ≥ 0` collides with the `C1`
/// width row `T_i − Tc ≤ 0`.
fn sweep_duplicates(w: &mut Work) -> bool {
    let mut changed = false;
    // key -> (row index, rhs in ≤-normalized orientation)
    let mut le_rows: HashMap<RowKey, (usize, f64)> = HashMap::new();
    // key (sign-normalized) -> (row index, rhs in normalized orientation)
    let mut eq_rows: HashMap<RowKey, (usize, f64)> = HashMap::new();

    for i in 0..w.rows.len() {
        if !w.alive(i) || w.verdict.is_some() || w.rows[i].len() < 2 {
            continue;
        }
        match w.sense[i] {
            Sense::Eq => {
                let flip = w.rows[i]
                    .iter()
                    .next()
                    .map(|(_, a)| a < 0.0)
                    .unwrap_or(false);
                let key = row_key(&w.rows[i], flip);
                let rhs = if flip { -w.rhs[i] } else { w.rhs[i] };
                match eq_rows.get(&key) {
                    Some(&(prev, prev_rhs)) => {
                        if (rhs - prev_rhs).abs() <= FEAS_TOL {
                            w.fate[i] = WorkFate::Dominated(prev);
                            w.stats.dominated_rows += 1;
                            changed = true;
                        } else {
                            w.verdict = Some(Status::Infeasible);
                        }
                    }
                    None => {
                        eq_rows.insert(key, (i, rhs));
                    }
                }
            }
            Sense::Le | Sense::Ge => {
                let negate = w.sense[i] == Sense::Ge;
                let key = row_key(&w.rows[i], negate);
                let rhs = if negate { -w.rhs[i] } else { w.rhs[i] };
                match le_rows.get_mut(&key) {
                    Some(entry) => {
                        let (prev, prev_rhs) = *entry;
                        if rhs >= prev_rhs {
                            w.fate[i] = WorkFate::Dominated(prev);
                        } else {
                            // This row is strictly tighter: it dominates the
                            // previously kept duplicate.
                            w.fate[prev] = WorkFate::Dominated(i);
                            *entry = (i, rhs);
                        }
                        w.stats.dominated_rows += 1;
                        changed = true;
                    }
                    None => {
                        le_rows.insert(key, (i, rhs));
                    }
                }
            }
        }
    }
    changed
}

/// Fixes variables that appear in no alive row at their objective-optimal
/// bound; detects unboundedness when that bound is infinite.
fn fix_empty_columns(w: &mut Work, objective: Option<&(Objective, LinExpr)>) {
    let mut used = vec![false; w.lb.len()];
    for i in 0..w.rows.len() {
        if w.alive(i) {
            for (v, _) in w.rows[i].iter() {
                used[v.index()] = true;
            }
        }
    }
    for (j, &in_use) in used.iter().enumerate() {
        if in_use || w.fixed[j].is_some() || w.verdict.is_some() {
            continue;
        }
        let c_eff = objective.map_or(0.0, |(dir, e)| {
            let c = e.coeff(VarId(j));
            match dir {
                Objective::Minimize => c,
                Objective::Maximize => -c,
            }
        });
        let value = if c_eff > EPS {
            if w.lb[j].is_finite() {
                w.lb[j]
            } else {
                w.verdict = Some(Status::Unbounded);
                continue;
            }
        } else if c_eff < -EPS {
            if w.ub[j].is_finite() {
                w.ub[j]
            } else {
                w.verdict = Some(Status::Unbounded);
                continue;
            }
        } else if w.lb[j].is_finite() {
            w.lb[j]
        } else if w.ub[j].is_finite() {
            w.ub[j]
        } else {
            0.0
        };
        w.fixed[j] = Some(value);
        w.stats.fixed_vars += 1;
    }
}

/// Assembles the final [`Presolved`] from the work state.
fn build_presolved(original: &Problem, mut w: Work) -> Presolved {
    let n = original.vars.len();

    let mut var_fates = Vec::with_capacity(n);
    let mut reduced = Problem::new();
    for j in 0..n {
        match w.fixed[j] {
            Some(v) => var_fates.push(VarFate::Fixed(v)),
            None => {
                let id = reduced.add_var_bounded(original.vars[j].name.clone(), w.lb[j], w.ub[j]);
                var_fates.push(VarFate::Kept(id));
            }
        }
    }

    let remap = |expr: &LinExpr| -> (LinExpr, f64) {
        let mut out = LinExpr::new();
        let mut fixed_part = 0.0;
        for (v, a) in expr.iter() {
            match var_fates[v.index()] {
                VarFate::Kept(r) => out.add_term(r, a),
                VarFate::Fixed(val) => fixed_part += a * val,
            }
        }
        (out, fixed_part)
    };

    let mut row_fates = Vec::with_capacity(original.rows.len());
    for i in 0..original.rows.len() {
        match w.fate[i] {
            WorkFate::Alive => {
                // Work rows already have fixed variables substituted out, so
                // remap is a pure renumbering here.
                let (expr, _) = remap(&w.rows[i]);
                let id = reduced.constrain_named(
                    original.rows[i].name.clone(),
                    expr,
                    w.sense[i],
                    w.rhs[i],
                );
                row_fates.push(RowFate::Kept(id));
            }
            WorkFate::Empty => row_fates.push(RowFate::Empty),
            WorkFate::Singleton => row_fates.push(RowFate::Singleton),
            WorkFate::Redundant => row_fates.push(RowFate::Redundant),
            WorkFate::Dominated(by) => row_fates.push(RowFate::Dominated(ConstraintId(by))),
        }
    }

    if let Some((dir, expr)) = &original.objective {
        let (mut obj, fixed_part) = remap(expr);
        obj.add_constant(expr.constant() + fixed_part);
        match dir {
            Objective::Minimize => reduced.minimize(obj),
            Objective::Maximize => reduced.maximize(obj),
        }
    }

    w.stats.rows_after = reduced.rows.len();
    w.stats.vars_after = reduced.vars.len();

    Presolved {
        original: original.clone(),
        reduced,
        row_fates,
        var_fates,
        stats: w.stats,
        verdict: w.verdict,
        lb_row: w.lb_row,
        ub_row: w.ub_row,
        fixing_row: w.fixing_row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::Status;

    fn on() -> PresolveOptions {
        PresolveOptions::default()
    }

    #[test]
    fn disabled_presolve_is_identity() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x + y, Sense::Ge, 2.0);
        p.minimize(x + y);
        let pre = p.presolve(&PresolveOptions::off());
        assert_eq!(pre.stats().rows_removed(), 0);
        assert_eq!(pre.stats().fixed_vars, 0);
        assert_eq!(pre.reduced().num_constraints(), 1);
        let a = p.solve().unwrap();
        let b = p
            .solve_with_presolve(SimplexVariant::Dense, &PresolveOptions::off())
            .unwrap();
        assert_eq!(a.objective(), b.objective());
        assert_eq!(a.iterations(), b.iterations());
    }

    #[test]
    fn singleton_rows_fold_into_bounds() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let c = p.constrain(LinExpr::term(x, 2.0), Sense::Ge, 4.0);
        p.minimize(x.into());
        let pre = p.presolve(&on());
        assert_eq!(pre.row_fate(c), RowFate::Singleton);
        assert_eq!(pre.stats().singleton_rows, 1);
        let sol = p
            .solve_with_presolve(SimplexVariant::Dense, &on())
            .unwrap()
            .into_optimal()
            .unwrap();
        assert_eq!(sol.objective(), 2.0);
        assert_eq!(sol.value(x), 2.0);
        // The folded row supplied the binding lower bound, so it carries the
        // multiplier implied by the reduced cost: min x s.t. 2x ≥ 4 has
        // dual 1/2 on the row.
        assert!((sol.dual(c) - 0.5).abs() < 1e-9);
        assert!(sol.reduced_cost(x).abs() < 1e-9);
    }

    #[test]
    fn equality_singleton_fixes_variable() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let pin = p.constrain(LinExpr::from(x), Sense::Eq, 3.0);
        let link = p.constrain(y - x, Sense::Ge, 1.0);
        p.minimize(x + y);
        let pre = p.presolve(&on());
        assert_eq!(pre.row_fate(pin), RowFate::Singleton);
        assert_eq!(pre.var_fate(x), VarFate::Fixed(3.0));
        // After substituting x, `y − x ≥ 1` becomes the singleton `y ≥ 4`,
        // and y (objective-improving at its lower bound) is fixed too.
        assert_eq!(pre.var_fate(y), VarFate::Fixed(4.0));
        let sol = p
            .solve_with_presolve(SimplexVariant::Dense, &on())
            .unwrap()
            .into_optimal()
            .unwrap();
        assert_eq!(sol.objective(), 7.0);
        assert_eq!(sol.value(x), 3.0);
        assert_eq!(sol.value(y), 4.0);
        // Slacks are re-evaluated on the original rows.
        assert_eq!(sol.slack(pin), 0.0);
        assert_eq!(sol.slack(link), 0.0);
    }

    #[test]
    fn duplicate_rows_are_dominated() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let keep = p.constrain(x - y, Sense::Le, 0.0);
        // Same coefficients through the ≥-negation, weaker after flipping.
        let dup = p.constrain(y - x, Sense::Ge, -1.0);
        p.constrain(x + y, Sense::Ge, 2.0);
        p.minimize(x + y);
        let pre = p.presolve(&on());
        assert!(matches!(pre.row_fate(keep), RowFate::Kept(_)));
        assert_eq!(pre.row_fate(dup), RowFate::Dominated(keep));
        assert_eq!(pre.stats().dominated_rows, 1);
        let a = p.solve().unwrap().objective();
        let b = p
            .solve_with_presolve(SimplexVariant::Dense, &on())
            .unwrap()
            .objective();
        assert_eq!(a, b);
    }

    #[test]
    fn tighter_duplicate_wins() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let weak = p.constrain(x - y, Sense::Le, 5.0);
        let tight = p.constrain(x - y, Sense::Le, 1.0);
        p.minimize(x + y);
        let pre = p.presolve(&on());
        assert_eq!(pre.row_fate(weak), RowFate::Dominated(tight));
        assert!(matches!(pre.row_fate(tight), RowFate::Kept(_)));
    }

    #[test]
    fn activity_redundant_rows_are_removed() {
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", 0.0, 5.0);
        let y = p.add_var_bounded("y", 0.0, 5.0);
        let r = p.constrain(x + y, Sense::Le, 20.0);
        let live = p.constrain(x + y, Sense::Ge, 2.0);
        p.minimize(x + y);
        let pre = p.presolve(&on());
        assert_eq!(pre.row_fate(r), RowFate::Redundant);
        assert!(matches!(pre.row_fate(live), RowFate::Kept(_)));
    }

    #[test]
    fn empty_row_feasible_and_conflicting() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let c = p.constrain(LinExpr::new(), Sense::Le, 1.0);
        p.minimize(x.into());
        let pre = p.presolve(&on());
        assert_eq!(pre.row_fate(c), RowFate::Empty);
        assert_eq!(pre.proven_status(), None);

        let mut q = Problem::new();
        let x = q.add_var("x");
        q.constrain(LinExpr::new(), Sense::Ge, 1.0);
        q.minimize(x.into());
        let pre = q.presolve(&on());
        assert_eq!(pre.proven_status(), Some(Status::Infeasible));
        // The solve path falls back to the full problem, which reports the
        // infeasibility with a certificate over original rows.
        let sol = q.solve_with_presolve(SimplexVariant::Dense, &on()).unwrap();
        assert_eq!(sol.status(), Status::Infeasible);
    }

    #[test]
    fn conflicting_singletons_prove_infeasibility() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(LinExpr::from(x), Sense::Ge, 3.0);
        p.constrain(LinExpr::from(x), Sense::Le, 1.0);
        p.minimize(x.into());
        let pre = p.presolve(&on());
        assert_eq!(pre.proven_status(), Some(Status::Infeasible));
        let sol = p.solve_with_presolve(SimplexVariant::Dense, &on()).unwrap();
        assert_eq!(sol.status(), Status::Infeasible);
        assert!(sol.farkas().is_some());
    }

    #[test]
    fn all_variables_fixed_still_solves() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(LinExpr::from(x), Sense::Eq, 2.0);
        p.constrain(LinExpr::from(y), Sense::Eq, 5.0);
        p.minimize(x + y);
        let sol = p
            .solve_with_presolve(SimplexVariant::Dense, &on())
            .unwrap()
            .into_optimal()
            .unwrap();
        assert_eq!(sol.objective(), 7.0);
        assert_eq!(sol.values(), &[2.0, 5.0]);
    }

    #[test]
    fn unconstrained_column_with_improving_infinite_bound_is_unbounded() {
        let mut p = Problem::new();
        let x = p.add_free_var("x");
        let y = p.add_var("y");
        p.constrain(LinExpr::from(y), Sense::Ge, 1.0);
        p.minimize(x + y);
        let pre = p.presolve(&on());
        assert_eq!(pre.proven_status(), Some(Status::Unbounded));
        let sol = p.solve_with_presolve(SimplexVariant::Dense, &on()).unwrap();
        assert_eq!(sol.status(), Status::Unbounded);
    }

    #[test]
    fn provenance_round_trips_between_problems() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(LinExpr::from(x), Sense::Le, 9.0); // singleton: removed
        let kept = p.constrain(x + y, Sense::Ge, 2.0);
        p.minimize(x + y);
        let pre = p.presolve(&on());
        let r = pre.reduced_row(kept).expect("row survives");
        assert_eq!(pre.original_row(r), kept);
        assert_eq!(pre.reduced().num_constraints(), 1);
    }

    #[test]
    fn postsolve_matches_full_solve_on_composite_model() {
        // Mix of singleton rows, a fixed variable, a duplicate and a live
        // core; the presolved path must agree with the plain simplex on the
        // primal point, objective, and slacks.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let z = p.add_var("z");
        p.constrain(LinExpr::from(z), Sense::Eq, 4.0);
        p.constrain(LinExpr::from(x), Sense::Ge, 1.0);
        p.constrain(x - y, Sense::Le, 0.0);
        p.constrain(y - x, Sense::Ge, 0.0);
        p.constrain(x + y + z, Sense::Ge, 10.0);
        p.minimize(x + y + z);
        let full = p.solve().unwrap().into_optimal().unwrap();
        let pre = p
            .solve_with_presolve(SimplexVariant::Dense, &on())
            .unwrap()
            .into_optimal()
            .unwrap();
        // The optimum is degenerate (a whole face), so the vertex may
        // differ; the objective must not, and the postsolved point must be
        // feasible for every original row.
        assert_eq!(full.objective(), pre.objective());
        for s in pre.slacks() {
            assert!(*s > -1e-9, "postsolved point violates a row: slack {s}");
        }
        for (j, v) in pre.values().iter().enumerate() {
            let (lo, hi) = p.var_bounds(VarId(j));
            assert!(*v > lo - 1e-9 && *v < hi + 1e-9, "value out of bounds");
        }
    }

    #[test]
    fn revised_variant_agrees_through_presolve() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(LinExpr::from(x), Sense::Ge, 2.0);
        p.constrain(x + y, Sense::Ge, 5.0);
        p.minimize(2.0 * x + y);
        let dense = p
            .solve_with_presolve(SimplexVariant::Dense, &on())
            .unwrap()
            .objective()
            .unwrap();
        let revised = p
            .solve_with_presolve(SimplexVariant::Revised, &on())
            .unwrap()
            .objective()
            .unwrap();
        assert_eq!(dense, revised);
        assert_eq!(dense, 7.0);
    }

    #[test]
    fn stats_display_is_self_describing() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(LinExpr::from(x), Sense::Ge, 1.0);
        p.minimize(x.into());
        let pre = p.presolve(&on());
        let s = pre.stats().to_string();
        assert!(s.contains("1 -> 0 rows"), "unexpected stats: {s}");
        assert!(s.contains("1 singleton"), "unexpected stats: {s}");
    }
}
