//! Difference-constraint classification and a shortest-path fast path.
//!
//! The SMO constraint matrices are `0, ±1` valued (§VI of the paper), and
//! under the variable recombination performed by the timing layer (phase
//! ends `E_p = s_p + T_p`, global departures `u_i = s_{p_i} + D_i`) every
//! generated row becomes a *two-variable difference constraint*
//! `x_i − x_j ≤ base + slope·λ`, affine in the cycle time `λ = T_c`. Such
//! systems are exactly the shortest-path / DBM fragment of linear
//! programming:
//!
//! * feasibility at a fixed `λ` is the absence of a negative cycle in the
//!   constraint graph (Bellman–Ford, `O(V·E)`),
//! * the minimal feasible `λ` is a minimum cycle-ratio problem, solved
//!   here by Lawler's parametric iteration (repeatedly jump `λ` to the
//!   ratio of the current negative-cycle witness),
//! * infeasibility yields a *negative-cycle certificate*: `±1` multipliers
//!   on the cycle's rows whose sum telescopes to an absurd inequality —
//!   precisely a Farkas vector, independently checkable by
//!   [`certifies_infeasibility`](crate::certifies_infeasibility) with no
//!   reference to the graph solver.
//!
//! The entry points are [`classify`] (map every row of a [`Problem`] to a
//! [`RowClass`] under a caller-provided [`VarImage`] substitution) and
//! [`DifferenceSystem::build`] (assemble the classified difference subset
//! into a graph). Rows that do not fit ([`RowClass::General`]) are simply
//! absent from the graph; callers decide whether the system is exact
//! ([`Classification::is_pure`]) or a relaxation that routes to the
//! simplex fallback.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::expr::VarId;
use crate::problem::{ConstraintId, Problem, Sense};
use crate::recover::SolveBudget;

/// Absolute tolerance for coefficient recognition and cycle negativity,
/// matching the solver-wide [`EPS`](crate::EPS) on the `0, ±1` matrices
/// this module targets.
const TOL: f64 = 1e-9;

/// How one problem variable maps into difference-graph node space.
///
/// The caller supplies one image per variable (see [`classify`]); node
/// indices are the caller's, dense from `0`. Values are interpreted as
/// potentials relative to an implicit *origin* node pinned at `0`, which
/// the [`DifferenceSystem`] appends itself (single-variable rows and
/// finite variable bounds become arcs to or from the origin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarImage {
    /// The variable *is* the potential of node `i`.
    Node(usize),
    /// The variable equals the potential difference `x_a − x_b`.
    Diff(usize, usize),
    /// The variable is the parameter `λ` (the cycle time).
    Param,
}

/// An affine bound `base + slope·λ` on a difference of potentials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineBound {
    /// Constant part.
    pub base: f64,
    /// Coefficient of the parameter `λ`.
    pub slope: f64,
}

impl AffineBound {
    /// The bound's value at a fixed parameter.
    pub fn at(&self, lambda: f64) -> f64 {
        self.base + self.slope * lambda
    }
}

/// Classification of one constraint row under a [`VarImage`] substitution,
/// normalized to `≤` form (a `≥` row is negated first; an `=` row
/// classifies by its `≤` direction and contributes both directions to the
/// graph).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowClass {
    /// `x_i − x_j ≤ base + slope·λ` — a pure difference constraint.
    Difference {
        /// Node with coefficient `+1`.
        i: usize,
        /// Node with coefficient `−1`.
        j: usize,
        /// The affine right-hand side.
        bound: AffineBound,
    },
    /// `±x_i ≤ base + slope·λ` — one node against the origin.
    SingleVar {
        /// The single node.
        i: usize,
        /// `true` when the node's coefficient is `−1` (a lower bound on
        /// `x_i`).
        negated: bool,
        /// The affine right-hand side.
        bound: AffineBound,
    },
    /// `coef·λ ≤ rhs` — a bound on the parameter alone (`coef` may be
    /// zero: a constant row).
    ParamBound {
        /// Coefficient of `λ`.
        coef: f64,
        /// Right-hand side.
        rhs: f64,
    },
    /// Anything else — outside the difference fragment; handled by the
    /// simplex fallback.
    General,
}

impl RowClass {
    /// `true` for every class except [`RowClass::General`].
    pub fn is_difference_fragment(&self) -> bool {
        !matches!(self, RowClass::General)
    }
}

/// One normalized `≤`-form atom of a row, with the Farkas multiplier that
/// "using this atom once" contributes to the row (`−1` for the stated
/// direction of a `≤`/`=` row, `+1` for the negated direction of a `≥`/`=`
/// row).
#[derive(Debug, Clone, Copy)]
struct Atom {
    class: RowClass,
    sign: f64,
}

/// The per-row result of [`classify`].
#[derive(Debug, Clone)]
pub struct Classification {
    atoms: Vec<Vec<Atom>>,
}

impl Classification {
    /// The normalized classification of a row (for `=` rows, of its `≤`
    /// direction).
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to the classified problem.
    pub fn class(&self, c: ConstraintId) -> RowClass {
        self.atoms[c.index()][0].class
    }

    /// Number of classified rows.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// `true` when the problem had no rows.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// `true` when every row lies in the difference fragment — the graph
    /// backend is then *exact*, not a relaxation.
    pub fn is_pure(&self) -> bool {
        self.atoms
            .iter()
            .all(|a| a[0].class.is_difference_fragment())
    }

    /// The rows classified [`RowClass::General`], in ascending id order.
    pub fn general_rows(&self) -> Vec<ConstraintId> {
        (0..self.atoms.len())
            .filter(|&r| !self.atoms[r][0].class.is_difference_fragment())
            .map(ConstraintId)
            .collect()
    }

    /// Count of rows classified as pure differences.
    pub fn num_difference(&self) -> usize {
        self.count(|c| matches!(c, RowClass::Difference { .. }))
    }

    /// Count of single-variable rows.
    pub fn num_single_var(&self) -> usize {
        self.count(|c| matches!(c, RowClass::SingleVar { .. }))
    }

    /// Count of parameter-only rows.
    pub fn num_param_bound(&self) -> usize {
        self.count(|c| matches!(c, RowClass::ParamBound { .. }))
    }

    /// Count of rows outside the difference fragment.
    pub fn num_general(&self) -> usize {
        self.count(|c| matches!(c, RowClass::General))
    }

    fn count(&self, f: impl Fn(&RowClass) -> bool) -> usize {
        self.atoms.iter().filter(|a| f(&a[0].class)).count()
    }
}

/// Classifies every row of `p` under the image map, one [`VarImage`] per
/// variable (in [`VarId`] order).
///
/// # Errors
///
/// Returns [`LpError::Numerical`](crate::LpError) when `images` does not
/// cover every variable of `p`.
pub fn classify(p: &Problem, images: &[VarImage]) -> Result<Classification, crate::LpError> {
    if images.len() != p.num_vars() {
        return Err(crate::LpError::Numerical {
            context: format!(
                "classify: {} variable images for {} variables",
                images.len(),
                p.num_vars()
            ),
        });
    }
    let atoms = (0..p.num_constraints())
        .map(|r| {
            let (expr, sense, rhs) = p.constraint(ConstraintId(r));
            let fwd = classify_le(expr.iter(), rhs, images, false);
            match sense {
                Sense::Le => vec![Atom {
                    class: fwd,
                    sign: -1.0,
                }],
                Sense::Ge => vec![Atom {
                    class: classify_le(expr.iter(), rhs, images, true),
                    sign: 1.0,
                }],
                Sense::Eq => vec![
                    Atom {
                        class: fwd,
                        sign: -1.0,
                    },
                    Atom {
                        class: classify_le(expr.iter(), rhs, images, true),
                        sign: 1.0,
                    },
                ],
            }
        })
        .collect();
    Ok(Classification { atoms })
}

/// Classifies one `≤`-form inequality `Σ c_v·x_v ≤ rhs` (negated first
/// when `negate` is set) by substituting variable images and collecting
/// net node coefficients.
fn classify_le(
    terms: impl Iterator<Item = (VarId, f64)>,
    rhs: f64,
    images: &[VarImage],
    negate: bool,
) -> RowClass {
    let flip = if negate { -1.0 } else { 1.0 };
    // Net coefficient per node; rows touch at most a handful of nodes, so
    // a small association list beats a map.
    let mut nodes: Vec<(usize, f64)> = Vec::with_capacity(4);
    let mut add = |n: usize, c: f64| {
        if let Some(e) = nodes.iter_mut().find(|(i, _)| *i == n) {
            e.1 += c;
        } else {
            nodes.push((n, c));
        }
    };
    let mut param = 0.0;
    for (v, c) in terms {
        let c = c * flip;
        match images[v.index()] {
            VarImage::Node(i) => add(i, c),
            VarImage::Diff(a, b) => {
                add(a, c);
                add(b, -c);
            }
            VarImage::Param => param += c,
        }
    }
    nodes.retain(|(_, c)| c.abs() > TOL);
    let rhs = rhs * flip;
    let bound = AffineBound {
        base: rhs,
        slope: -param,
    };
    let unit = |c: f64| (c - 1.0).abs() <= TOL || (c + 1.0).abs() <= TOL;
    match nodes.as_slice() {
        [] => RowClass::ParamBound { coef: param, rhs },
        [(i, c)] if unit(*c) => RowClass::SingleVar {
            i: *i,
            negated: *c < 0.0,
            bound,
        },
        [(a, ca), (b, cb)] if unit(*ca) && unit(*cb) && (ca * cb) < 0.0 => {
            let (i, j) = if *ca > 0.0 { (*a, *b) } else { (*b, *a) };
            RowClass::Difference { i, j, bound }
        }
        _ => RowClass::General,
    }
}

/// Where an arc of the constraint graph came from.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ArcSource {
    /// A constraint row; `sign` is the Farkas multiplier one use of the
    /// arc contributes to the row.
    Row { c: ConstraintId, sign: f64 },
    /// A finite variable bound — absent from Farkas vectors (the
    /// certificate checker's supremum over the variable box absorbs it).
    Bound,
}

/// One arc `x_to − x_from ≤ base + slope·λ`.
#[derive(Debug, Clone, Copy)]
struct GraphArc {
    from: usize,
    to: usize,
    base: f64,
    slope: f64,
    source: ArcSource,
}

/// Provenance of one side of the parameter interval `λ ∈ [lower, upper]`.
#[derive(Debug, Clone, Copy)]
enum ParamBoundSrc {
    /// The parameter variable's own bound (or no bound at all) — absorbed
    /// by the certificate checker's box supremum.
    VarBound,
    /// A [`RowClass::ParamBound`] row `coef·λ ≤ rhs` with its Farkas
    /// direction sign.
    Row {
        c: ConstraintId,
        sign: f64,
        coef: f64,
    },
}

/// The difference-constraint subset of a [`Problem`], as a weighted graph
/// with arc weights affine in the parameter `λ`.
///
/// Built by [`DifferenceSystem::build`]; solves the subset *exactly* when
/// the classification [`is_pure`](Classification::is_pure), and a
/// relaxation (useful for warm starts and early infeasibility detection —
/// an infeasible subset proves the full problem infeasible) otherwise.
#[derive(Debug, Clone)]
pub struct DifferenceSystem {
    /// Caller node space; the origin is appended at index `num_nodes`.
    num_nodes: usize,
    arcs: Vec<GraphArc>,
    lambda_lower: f64,
    lambda_lower_src: ParamBoundSrc,
    lambda_upper: f64,
    lambda_upper_src: ParamBoundSrc,
    /// A constant row that is infeasible on its own (`0 ≤ rhs < 0`).
    constant_conflict: Option<(ConstraintId, f64)>,
    num_rows: usize,
}

/// Outcome of a fixed-parameter feasibility check
/// ([`DifferenceSystem::feasible_at`]).
#[derive(Debug, Clone)]
pub enum FixedParamOutcome {
    /// A feasible potential assignment exists; `potentials[i]` is the
    /// value of node `i` relative to the origin (pinned at `0`).
    Feasible {
        /// Node potentials, caller node space.
        potentials: Vec<f64>,
    },
    /// A negative cycle at this `λ`: no potentials exist.
    NegativeCycle(NegativeCycle),
}

/// A negative cycle of the constraint graph — the graph analogue of a
/// Farkas certificate.
#[derive(Debug, Clone)]
pub struct NegativeCycle {
    /// `(row, multiplier)` support: summing `multiplier ×` each row
    /// telescopes the node potentials away.
    rows: Vec<(ConstraintId, f64)>,
    /// Σ base over the cycle's arcs.
    base: f64,
    /// Σ slope over the cycle's arcs.
    slope: f64,
}

impl NegativeCycle {
    /// The `(row, Farkas multiplier)` support of the cycle, in traversal
    /// order. Variable-bound arcs do not appear (the certificate checker's
    /// box supremum covers them).
    pub fn rows(&self) -> &[(ConstraintId, f64)] {
        &self.rows
    }

    /// The cycle's weight `Σ base + λ·Σ slope` at a given parameter;
    /// negative means infeasible at that `λ`.
    pub fn weight_at(&self, lambda: f64) -> f64 {
        self.base + self.slope * lambda
    }

    /// The smallest `λ` at which the cycle stops being negative
    /// (`−Σbase / Σslope`), or `None` when the cycle is negative for every
    /// larger `λ` (`Σ slope ≤ 0`).
    pub fn min_feasible_lambda(&self) -> Option<f64> {
        (self.slope > TOL).then(|| -self.base / self.slope)
    }
}

/// Proof that `λ*` returned by [`DifferenceSystem::minimize_param`] is
/// minimal: `(row, multiplier)` pairs whose sum implies `λ ≥ implied_lower`
/// by pure row arithmetic (empty when `λ*` sits on the parameter's own
/// lower bound).
#[derive(Debug, Clone)]
pub struct ParamLowerWitness {
    rows: Vec<(ConstraintId, f64)>,
    implied_lower: f64,
    /// Σ slope of the witness cycle — needed to combine this witness with
    /// a later slope-free negative cycle into a standalone certificate.
    slope: f64,
}

impl ParamLowerWitness {
    /// The `(row, multiplier)` support of the witness cycle.
    pub fn rows(&self) -> &[(ConstraintId, f64)] {
        &self.rows
    }

    /// The lower bound on `λ` the witness implies.
    pub fn implied_lower(&self) -> f64 {
        self.implied_lower
    }
}

/// A graph-derived Farkas certificate of infeasibility for the *problem*
/// (not just one fixed `λ`): a negative cycle whose weight stays negative
/// over the parameter's entire admissible range.
#[derive(Debug, Clone)]
pub struct GraphInfeasibility {
    y: Vec<f64>,
    rows: Vec<(ConstraintId, f64)>,
}

impl GraphInfeasibility {
    /// The full Farkas vector, one multiplier per row of the source
    /// problem (zeros off the cycle).
    pub fn farkas(&self) -> &[f64] {
        &self.y
    }

    /// The non-zero `(row, multiplier)` support.
    pub fn rows(&self) -> &[(ConstraintId, f64)] {
        &self.rows
    }

    /// Independently verifies the certificate against `p` via
    /// [`certifies_infeasibility`](crate::certifies_infeasibility) — the
    /// same machine check an LP Farkas vector gets, with no reference to
    /// the graph solver that produced it.
    pub fn check(&self, p: &Problem) -> bool {
        crate::iis::certifies_infeasibility(p, &self.y)
    }
}

/// Outcome of [`DifferenceSystem::minimize_param`].
#[derive(Debug, Clone)]
pub enum MinParamOutcome {
    /// The exact minimal feasible parameter, a witness schedule, and (when
    /// a critical cycle binds `λ*`) an arithmetic lower-bound witness.
    Optimal {
        /// The minimal feasible `λ`.
        lambda: f64,
        /// Node potentials feasible at `lambda`, caller node space,
        /// relative to the origin.
        potentials: Vec<f64>,
        /// Row-arithmetic proof of minimality; `None` when `λ*` sits on
        /// the parameter's own lower bound.
        witness: Option<ParamLowerWitness>,
    },
    /// No parameter value is feasible.
    Infeasible(GraphInfeasibility),
}

impl DifferenceSystem {
    /// Assembles the difference-fragment rows of `p` (under `cls`, from
    /// [`classify`] with the same `images`) plus every finite variable
    /// bound into a constraint graph. [`RowClass::General`] rows are
    /// skipped — check [`Classification::is_pure`] to know whether the
    /// system is exact.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Numerical`](crate::LpError) when `images` and
    /// `cls` do not match `p`'s dimensions.
    pub fn build(
        p: &Problem,
        images: &[VarImage],
        cls: &Classification,
    ) -> Result<Self, crate::LpError> {
        if images.len() != p.num_vars() || cls.len() != p.num_constraints() {
            return Err(crate::LpError::Numerical {
                context: "difference system: image or classification dimension mismatch".into(),
            });
        }
        let num_nodes = images
            .iter()
            .map(|im| match *im {
                VarImage::Node(i) => i + 1,
                VarImage::Diff(a, b) => a.max(b) + 1,
                VarImage::Param => 0,
            })
            .max()
            .unwrap_or(0);
        let origin = num_nodes;
        let mut sys = DifferenceSystem {
            num_nodes,
            arcs: Vec::new(),
            lambda_lower: f64::NEG_INFINITY,
            lambda_lower_src: ParamBoundSrc::VarBound,
            lambda_upper: f64::INFINITY,
            lambda_upper_src: ParamBoundSrc::VarBound,
            constant_conflict: None,
            num_rows: p.num_constraints(),
        };

        // Parameter bounds from the parameter variable's own box (if any
        // variable maps to Param); tightened by ParamBound rows below.
        for (v, im) in images.iter().enumerate() {
            if matches!(im, VarImage::Param) {
                let (lo, up) = p.var_bounds(VarId(v));
                sys.lambda_lower = sys.lambda_lower.max(lo);
                sys.lambda_upper = sys.lambda_upper.min(up);
            }
        }
        if sys.lambda_lower == f64::NEG_INFINITY
            && !images.iter().any(|im| matches!(im, VarImage::Param))
        {
            // No parameter at all: weights are constant, pin λ = 0.
            sys.lambda_lower = 0.0;
            sys.lambda_upper = 0.0;
        }

        // Constraint-row arcs.
        for (r, atoms) in cls.atoms.iter().enumerate() {
            let c = ConstraintId(r);
            for atom in atoms {
                let source = ArcSource::Row { c, sign: atom.sign };
                match atom.class {
                    RowClass::Difference { i, j, bound } => sys.arcs.push(GraphArc {
                        from: j,
                        to: i,
                        base: bound.base,
                        slope: bound.slope,
                        source,
                    }),
                    RowClass::SingleVar { i, negated, bound } => {
                        // +x_i ≤ b: origin→i; −x_i ≤ b: i→origin.
                        let (from, to) = if negated { (i, origin) } else { (origin, i) };
                        sys.arcs.push(GraphArc {
                            from,
                            to,
                            base: bound.base,
                            slope: bound.slope,
                            source,
                        });
                    }
                    RowClass::ParamBound { coef, rhs } => {
                        if coef > TOL {
                            let cand = rhs / coef;
                            if cand < sys.lambda_upper {
                                sys.lambda_upper = cand;
                                sys.lambda_upper_src = ParamBoundSrc::Row {
                                    c,
                                    sign: atom.sign,
                                    coef,
                                };
                            }
                        } else if coef < -TOL {
                            let cand = rhs / coef;
                            if cand > sys.lambda_lower {
                                sys.lambda_lower = cand;
                                sys.lambda_lower_src = ParamBoundSrc::Row {
                                    c,
                                    sign: atom.sign,
                                    coef,
                                };
                            }
                        } else if rhs < -TOL && sys.constant_conflict.is_none() {
                            // 0 ≤ rhs < 0: the row is infeasible alone.
                            sys.constant_conflict = Some((c, atom.sign));
                        }
                    }
                    RowClass::General => {}
                }
            }
        }

        // Variable-bound arcs (the ambient box, structural in the SMO
        // models: non-negativity of widths, starts and departures).
        for (v, im) in images.iter().enumerate() {
            let (lo, up) = p.var_bounds(VarId(v));
            let (a, b) = match *im {
                VarImage::Node(i) => (i, origin),
                VarImage::Diff(i, j) => (i, j),
                VarImage::Param => continue,
            };
            // lo ≤ x_a − x_b ≤ up
            if lo.is_finite() {
                sys.arcs.push(GraphArc {
                    from: a,
                    to: b,
                    base: -lo,
                    slope: 0.0,
                    source: ArcSource::Bound,
                });
            }
            if up.is_finite() {
                sys.arcs.push(GraphArc {
                    from: b,
                    to: a,
                    base: up,
                    slope: 0.0,
                    source: ArcSource::Bound,
                });
            }
        }
        Ok(sys)
    }

    /// Number of nodes in the caller's node space (the internal origin is
    /// not counted).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of arcs, including variable-bound arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The admissible parameter interval `[lower, upper]` implied by the
    /// parameter variable's box and the `ParamBound` rows.
    pub fn param_range(&self) -> (f64, f64) {
        (self.lambda_lower, self.lambda_upper)
    }

    /// Bellman–Ford feasibility at a fixed parameter: either a feasible
    /// potential assignment (the DBM closure relative to the origin) or a
    /// negative-cycle witness.
    ///
    /// The `budget` is checked once per Bellman–Ford pass (each pass scans
    /// every arc), so an expired deadline surfaces as
    /// [`LpError::Budget`](crate::LpError) within one `O(E)` sweep rather
    /// than after the full `O(V·E)` relaxation — the graph backend honors
    /// `--time-limit` exactly like the simplex variants do.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Budget`](crate::LpError) when the budget expires
    /// mid-search; the `iterations` field counts completed passes.
    pub fn feasible_at(
        &self,
        lambda: f64,
        budget: &SolveBudget,
    ) -> Result<FixedParamOutcome, crate::LpError> {
        let mut passes = 0usize;
        Ok(match self.bellman_ford(lambda, budget, &mut passes)? {
            Ok(potentials) => FixedParamOutcome::Feasible { potentials },
            Err(cycle) => FixedParamOutcome::NegativeCycle(self.summarize(&cycle)),
        })
    }

    /// Lawler's parametric search for the exact minimal feasible `λ`.
    ///
    /// Starting from the parameter's lower bound, each round either proves
    /// feasibility (done — the current `λ` is optimal, since every prior
    /// round's witness cycle forces `λ` at least this high) or produces a
    /// negative-cycle witness whose ratio `−Σbase/Σslope` is the next
    /// candidate. A witness with `Σslope ≤ 0` stays negative for every
    /// admissible `λ` — infeasibility, certified through the cycle's rows.
    ///
    /// The `budget` is threaded into every Bellman–Ford round and checked
    /// once per pass; the cumulative pass count across rounds plays the
    /// role simplex pivots play in [`LpError::Budget`](crate::LpError).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Numerical`](crate::LpError) if the parameter is
    /// unbounded below (no minimum exists) or the iteration stalls on
    /// floating-point noise instead of making progress, and
    /// [`LpError::Budget`](crate::LpError) when the budget expires before
    /// the search terminates.
    pub fn minimize_param(&self, budget: &SolveBudget) -> Result<MinParamOutcome, crate::LpError> {
        if let Some((c, sign)) = self.constant_conflict {
            return Ok(MinParamOutcome::Infeasible(
                self.certificate(&[(c, sign)], &[]),
            ));
        }
        if self.lambda_lower == f64::NEG_INFINITY {
            return Err(crate::LpError::Numerical {
                context: "minimize_param: parameter is unbounded below".into(),
            });
        }
        if self.lambda_lower > self.lambda_upper + TOL {
            // The parameter interval itself is empty.
            return Ok(MinParamOutcome::Infeasible(
                self.empty_interval_certificate(),
            ));
        }
        let mut lambda = self.lambda_lower;
        let mut witness: Option<ParamLowerWitness> = None;
        let mut stalls = 0usize;
        let mut passes = 0usize;
        // Lawler terminates after at most one round per distinct simple-
        // cycle ratio; the cap is a generous safety net over that.
        for _ in 0..(1000 + 10 * self.arcs.len()) {
            let cycle = match self.bellman_ford(lambda, budget, &mut passes)? {
                Ok(potentials) => {
                    return Ok(MinParamOutcome::Optimal {
                        lambda,
                        potentials,
                        witness,
                    })
                }
                Err(cycle) => self.summarize(&cycle),
            };
            match cycle.min_feasible_lambda() {
                None => {
                    // Negative at every λ' ≥ lambda. A standalone Farkas
                    // vector must also rule out λ' < lambda: combine with
                    // whatever forced λ this high — the previous witness
                    // cycle (scaled so the λ terms cancel) or, on the
                    // first round, the parameter's lower bound.
                    let extra = match &witness {
                        Some(w) if cycle.slope < -TOL => {
                            let t = -cycle.slope / w.slope;
                            w.rows.iter().map(|&(c, m)| (c, t * m)).collect()
                        }
                        _ => self.lower_bound_multiplier(cycle.slope),
                    };
                    return Ok(MinParamOutcome::Infeasible(
                        self.certificate(&cycle.rows, &extra),
                    ));
                }
                Some(next) => {
                    if next > self.lambda_upper + TOL * (1.0 + self.lambda_upper.abs()) {
                        // The cycle forces λ beyond its admissible maximum.
                        let extra = self.upper_bound_multiplier(cycle.slope);
                        return Ok(MinParamOutcome::Infeasible(
                            self.certificate(&cycle.rows, &extra),
                        ));
                    }
                    if next <= lambda + TOL * (1.0 + lambda.abs()) {
                        // No numeric progress: nudge once, then give up.
                        stalls += 1;
                        if stalls > 3 {
                            return Err(crate::LpError::Numerical {
                                context: format!(
                                    "minimize_param stalled at λ = {lambda} (cycle ratio {next})"
                                ),
                            });
                        }
                        lambda += TOL * (1.0 + lambda.abs());
                    } else {
                        stalls = 0;
                        lambda = next;
                    }
                    witness = Some(ParamLowerWitness {
                        rows: cycle.rows.clone(),
                        implied_lower: next,
                        slope: cycle.slope,
                    });
                }
            }
        }
        Err(crate::LpError::Numerical {
            context: "minimize_param failed to converge".into(),
        })
    }

    /// Bellman–Ford with super-source semantics (all distances start at
    /// zero, making every node reachable): returns origin-normalized
    /// potentials, or the arc indices of a negative cycle. The outer
    /// `Result` is the budget verdict; `passes` accumulates across calls
    /// so [`minimize_param`](Self::minimize_param) reports total work.
    fn bellman_ford(
        &self,
        lambda: f64,
        budget: &SolveBudget,
        passes: &mut usize,
    ) -> Result<Result<Vec<f64>, Vec<usize>>, crate::LpError> {
        let n = self.num_nodes + 1; // + origin
        let mut dist = vec![0.0f64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        for pass in 0..n {
            budget.check(*passes)?;
            *passes += 1;
            let mut relaxed = None;
            for (idx, a) in self.arcs.iter().enumerate() {
                let w = a.base + a.slope * lambda;
                let cand = dist[a.from] + w;
                if cand < dist[a.to] - TOL * (1.0 + dist[a.to].abs().max(w.abs())) {
                    dist[a.to] = cand;
                    pred[a.to] = Some(idx);
                    relaxed = Some(a.to);
                }
            }
            match relaxed {
                None => {
                    let o = dist[self.num_nodes];
                    return Ok(Ok(dist[..self.num_nodes].iter().map(|d| d - o).collect()));
                }
                Some(node) if pass == n - 1 => {
                    // A relaxation on pass n: walk predecessors n steps to
                    // land inside the cycle, then collect it.
                    let mut cur = node;
                    for _ in 0..n {
                        if let Some(p) = pred[cur] {
                            cur = self.arcs[p].from;
                        }
                    }
                    let start = cur;
                    let mut cycle = Vec::new();
                    // Every node on the walk has a predecessor, since we
                    // arrived here following predecessor arcs.
                    while let Some(p) = pred[cur] {
                        cycle.push(p);
                        cur = self.arcs[p].from;
                        if cur == start {
                            break;
                        }
                    }
                    cycle.reverse();
                    return Ok(Err(cycle));
                }
                Some(_) => {}
            }
        }
        // Unreachable: the loop either converges or detects a cycle on the
        // final pass. Report "no cycle" conservatively.
        let o = dist[self.num_nodes];
        Ok(Ok(dist[..self.num_nodes].iter().map(|d| d - o).collect()))
    }

    /// Aggregates a cycle's arcs into its row support and affine weight.
    fn summarize(&self, cycle: &[usize]) -> NegativeCycle {
        let mut rows: Vec<(ConstraintId, f64)> = Vec::new();
        let (mut base, mut slope) = (0.0, 0.0);
        for &idx in cycle {
            let a = &self.arcs[idx];
            base += a.base;
            slope += a.slope;
            if let ArcSource::Row { c, sign } = a.source {
                if let Some(e) = rows.iter_mut().find(|(rc, _)| *rc == c) {
                    e.1 += sign;
                } else {
                    rows.push((c, sign));
                }
            }
        }
        rows.retain(|(_, m)| m.abs() > TOL);
        NegativeCycle { base, slope, rows }
    }

    /// The extra `(row, multiplier)` needed when a `Σslope ≤ 0` cycle's
    /// residual `λ` term must be cancelled by the parameter's *lower*
    /// bound row (nothing when the bound is the variable's own box).
    fn lower_bound_multiplier(&self, cycle_slope: f64) -> Vec<(ConstraintId, f64)> {
        match self.lambda_lower_src {
            ParamBoundSrc::Row { c, sign, coef } if cycle_slope.abs() > TOL => {
                vec![(c, (cycle_slope / coef) * sign)]
            }
            _ => Vec::new(),
        }
    }

    /// Likewise for a `Σslope > 0` cycle clashing with the parameter's
    /// *upper* bound row.
    fn upper_bound_multiplier(&self, cycle_slope: f64) -> Vec<(ConstraintId, f64)> {
        match self.lambda_upper_src {
            ParamBoundSrc::Row { c, sign, coef } => {
                vec![(c, (cycle_slope / coef) * sign)]
            }
            ParamBoundSrc::VarBound => Vec::new(),
        }
    }

    /// Certificate for an empty parameter interval (`λ_lo > λ_hi`).
    ///
    /// With both sides row-backed, `t_lo = q_hi` copies of the lower
    /// `≤`-atom (`q_lo·λ ≤ r_lo`, `q_lo < 0`) plus `t_hi = −q_lo` copies
    /// of the upper one cancel the λ terms exactly; a side backed by the
    /// variable box instead uses one copy of the remaining row and lets
    /// the checker's box supremum absorb the residual λ coefficient.
    fn empty_interval_certificate(&self) -> GraphInfeasibility {
        let mut support: Vec<(ConstraintId, f64)> = Vec::new();
        let row_coef = |src: &ParamBoundSrc| match *src {
            ParamBoundSrc::Row { coef, .. } => coef,
            ParamBoundSrc::VarBound => 0.0,
        };
        let lo_coef = row_coef(&self.lambda_lower_src);
        let hi_coef = row_coef(&self.lambda_upper_src);
        if let ParamBoundSrc::Row { c, sign, .. } = self.lambda_lower_src {
            let t = if hi_coef.abs() > TOL { hi_coef } else { 1.0 };
            support.push((c, t * sign));
        }
        if let ParamBoundSrc::Row { c, sign, .. } = self.lambda_upper_src {
            let t = if lo_coef.abs() > TOL { -lo_coef } else { 1.0 };
            support.push((c, t * sign));
        }
        self.certificate(&support, &[])
    }

    /// Assembles a [`GraphInfeasibility`] from row-multiplier support.
    fn certificate(
        &self,
        rows: &[(ConstraintId, f64)],
        extra: &[(ConstraintId, f64)],
    ) -> GraphInfeasibility {
        let mut y = vec![0.0; self.num_rows];
        for &(c, m) in rows.iter().chain(extra) {
            y[c.index()] += m;
        }
        let support: Vec<(ConstraintId, f64)> = (0..self.num_rows)
            .filter(|&r| y[r].abs() > TOL)
            .map(|r| (ConstraintId(r), y[r]))
            .collect();
        GraphInfeasibility { y, rows: support }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{LinExpr, Problem, Status};

    /// A 2-node ring with one λ-dependent arc: x_b − x_a ≤ −150 + λ and
    /// x_a − x_b ≤ 50 force λ ≥ 100.
    fn ring() -> (Problem, Vec<VarImage>) {
        let mut p = Problem::new();
        let tc = p.add_var("Tc"); // [0, ∞)
        let a = p.add_free_var("a");
        let b = p.add_free_var("b");
        p.constrain(b - a - LinExpr::from(tc), Sense::Le, -150.0);
        p.constrain(a - b, Sense::Le, 50.0);
        p.minimize(tc.into());
        let images = vec![VarImage::Param, VarImage::Node(0), VarImage::Node(1)];
        (p, images)
    }

    #[test]
    fn classifier_recognizes_shapes() {
        let (p, images) = ring();
        let cls = classify(&p, &images).unwrap();
        assert!(cls.is_pure());
        assert_eq!(cls.num_difference(), 2);
        match cls.class(ConstraintId(0)) {
            RowClass::Difference { i, j, bound } => {
                assert_eq!((i, j), (1, 0));
                assert_eq!(bound.base, -150.0);
                assert_eq!(bound.slope, 1.0);
            }
            other => panic!("unexpected class {other:?}"),
        }
    }

    #[test]
    fn classifier_flags_general_rows() {
        let (mut p, images) = ring();
        let a = VarId(1);
        p.constrain(2.0 * a, Sense::Le, 3.0);
        let cls = classify(&p, &images).unwrap();
        assert!(!cls.is_pure());
        assert_eq!(cls.num_general(), 1);
        assert_eq!(cls.general_rows(), vec![ConstraintId(2)]);
    }

    #[test]
    fn minimize_param_finds_exact_ratio() {
        let (p, images) = ring();
        let cls = classify(&p, &images).unwrap();
        let sys = DifferenceSystem::build(&p, &images, &cls).unwrap();
        match sys.minimize_param(&SolveBudget::UNLIMITED).unwrap() {
            MinParamOutcome::Optimal {
                lambda,
                potentials,
                witness,
            } => {
                assert!((lambda - 100.0).abs() < 1e-6, "λ* = {lambda}");
                // Potentials satisfy both difference rows at λ*.
                let (a, b) = (potentials[0], potentials[1]);
                assert!(b - a <= -150.0 + lambda + 1e-6);
                assert!(a - b <= 50.0 + 1e-6);
                let w = witness.expect("cycle-bound optimum carries a witness");
                assert!((w.implied_lower() - 100.0).abs() < 1e-6);
                assert_eq!(w.rows().len(), 2);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // Agreement with the simplex on the same problem.
        let lp = p.solve().unwrap().into_optimal().unwrap();
        assert!((lp.objective() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn feasible_at_separates_the_threshold() {
        let (p, images) = ring();
        let cls = classify(&p, &images).unwrap();
        let sys = DifferenceSystem::build(&p, &images, &cls).unwrap();
        assert!(matches!(
            sys.feasible_at(120.0, &SolveBudget::UNLIMITED).unwrap(),
            FixedParamOutcome::Feasible { .. }
        ));
        match sys.feasible_at(90.0, &SolveBudget::UNLIMITED).unwrap() {
            FixedParamOutcome::NegativeCycle(cyc) => {
                assert!(cyc.weight_at(90.0) < 0.0);
                assert_eq!(cyc.min_feasible_lambda().map(f64::round), Some(100.0));
            }
            FixedParamOutcome::Feasible { .. } => panic!("λ = 90 must be infeasible"),
        }
    }

    #[test]
    fn upper_bound_row_conflict_yields_checkable_certificate() {
        let (mut p, images) = ring();
        let tc = VarId(0);
        p.constrain(tc.into(), Sense::Le, 80.0); // λ ≤ 80 < λ* = 100
        let cls = classify(&p, &images).unwrap();
        let sys = DifferenceSystem::build(&p, &images, &cls).unwrap();
        match sys.minimize_param(&SolveBudget::UNLIMITED).unwrap() {
            MinParamOutcome::Infeasible(cert) => {
                assert!(cert.check(&p), "certificate must verify independently");
                assert!(cert.rows().iter().any(|(c, _)| c.index() == 2));
                // The simplex agrees the model is infeasible.
                assert_eq!(p.solve().unwrap().status(), Status::Infeasible);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn slope_free_negative_cycle_is_infeasible_forever() {
        // x − y ≤ −1, y − x ≤ −1: classic 2-cycle with no parameter.
        let mut p = Problem::new();
        let tc = p.add_var("Tc");
        let x = p.add_free_var("x");
        let y = p.add_free_var("y");
        p.constrain(x - y, Sense::Le, -1.0);
        p.constrain(y - x, Sense::Le, -1.0);
        p.minimize(tc.into());
        let images = vec![VarImage::Param, VarImage::Node(0), VarImage::Node(1)];
        let cls = classify(&p, &images).unwrap();
        let sys = DifferenceSystem::build(&p, &images, &cls).unwrap();
        match sys.minimize_param(&SolveBudget::UNLIMITED).unwrap() {
            MinParamOutcome::Infeasible(cert) => {
                assert!(cert.check(&p));
                assert_eq!(cert.rows().len(), 2);
                assert_eq!(p.solve().unwrap().status(), Status::Infeasible);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn eq_rows_and_bound_arcs_compose() {
        // A Diff-imaged variable w = x_1 − x_0 pinned by an Eq row, plus a
        // SingleVar cap on s; non-negativity enters as bound arcs.
        let mut p = Problem::new();
        let _tc = p.add_var("Tc");
        let w = p.add_var("w"); // [0, ∞), image Diff(1, 0)
        let s = p.add_var("s"); // [0, ∞), image Node(0)
        p.constrain(w.into(), Sense::Eq, 5.0);
        p.constrain(s.into(), Sense::Le, 3.0);
        p.minimize(LinExpr::from(VarId(0)));
        let images = vec![VarImage::Param, VarImage::Diff(1, 0), VarImage::Node(0)];
        let cls = classify(&p, &images).unwrap();
        assert_eq!(cls.num_difference(), 1); // the Eq row, via w's image
        assert_eq!(cls.num_single_var(), 1);
        let sys = DifferenceSystem::build(&p, &images, &cls).unwrap();
        match sys.feasible_at(0.0, &SolveBudget::UNLIMITED).unwrap() {
            FixedParamOutcome::Feasible { potentials } => {
                let wv = potentials[1] - potentials[0];
                assert!((wv - 5.0).abs() < 1e-6, "w = {wv}");
                assert!(potentials[0] <= 3.0 + 1e-6);
                assert!(potentials[0] >= -1e-6, "s ≥ 0 bound arc");
            }
            FixedParamOutcome::NegativeCycle(_) => panic!("system is feasible"),
        }
    }

    #[test]
    fn param_only_interval_conflict_certifies() {
        // Tc ≥ 10 and Tc ≤ 4 as rows: empty interval.
        let mut p = Problem::new();
        let tc = p.add_var("Tc");
        p.constrain(tc.into(), Sense::Ge, 10.0);
        p.constrain(tc.into(), Sense::Le, 4.0);
        p.minimize(tc.into());
        let images = vec![VarImage::Param];
        let cls = classify(&p, &images).unwrap();
        assert_eq!(cls.num_param_bound(), 2);
        let sys = DifferenceSystem::build(&p, &images, &cls).unwrap();
        match sys.minimize_param(&SolveBudget::UNLIMITED).unwrap() {
            MinParamOutcome::Infeasible(cert) => assert!(cert.check(&p)),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
