//! Dense two-phase primal simplex with Bland anti-cycling fallback.
//!
//! The implementation works on a classical dense tableau. Models are brought
//! to standard form as follows:
//!
//! * a variable with a finite lower bound `lo` is shifted, `x = lo + x'`,
//!   `x' ≥ 0`;
//! * a free variable is split, `x = x⁺ − x⁻`;
//! * a finite upper bound becomes an extra `≤` row (in the shifted variable);
//! * every row is normalized to a non-negative right-hand side (recording the
//!   sign flip so dual values can be mapped back);
//! * `≤` rows get a slack column (initially basic), `≥` rows a surplus and an
//!   artificial column, `=` rows an artificial column.
//!
//! Phase 1 minimizes the sum of artificials; phase 2 the real objective.
//! Pricing is Dantzig (most negative reduced cost) switching to Bland's rule
//! after a fixed number of iterations, which guarantees termination.
//!
//! The tableau carries one extra **parametric** column alongside the RHS; it
//! is transformed by every pivot and is used by [`crate::parametric`] to run
//! the Gass–Saaty parametric-RHS procedure on the optimal tableau.

use crate::basis::{Basis, BasisEntry};
use crate::error::LpError;
use crate::problem::{Problem, Sense};
use crate::solution::{Solution, Status};
use crate::EPS;
use std::sync::OnceLock;

/// What a standard-form column represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ColKind {
    /// Part of user variable `var`: contributes `sign · col_value`.
    Structural { var: usize, sign: f64 },
    /// Slack of standard-form row `row` (`+1` coefficient).
    Slack { row: usize },
    /// Surplus of standard-form row `row` (`−1` coefficient).
    Surplus { row: usize },
    /// Artificial of standard-form row `row` (`+1` coefficient).
    Artificial { row: usize },
}

use crate::sparse::VarCols;

/// Standard-form tableau shared between the primal solver and the parametric
/// post-processor.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    /// `m` rows of width `ncols + 2`: columns, then RHS, then parametric Δ.
    pub(crate) tab: Vec<Vec<f64>>,
    /// Basic column index per row.
    pub(crate) basis: Vec<usize>,
    pub(crate) ncols: usize,
    pub(crate) col_kinds: Vec<ColKind>,
    /// Phase-2 cost per column, already in *minimize* orientation.
    pub(crate) costs: Vec<f64>,
    /// Current reduced-cost row for the phase-2 costs (valid after solve).
    pub(crate) z: Vec<f64>,
    /// Optional second reduced-cost row (used by parametric objective
    /// ranging); transformed by every pivot alongside `z`.
    pub(crate) z2: Option<Vec<f64>>,
    /// `+1.0` for minimize, `−1.0` for maximize.
    pub(crate) sense_factor: f64,
    /// Per standard-form row: was the row negated during normalization?
    row_flip: Vec<bool>,
    /// For standard row `r`, the column whose reduced cost yields the dual:
    /// prefer the artificial, else the slack.
    dual_col: Vec<usize>,
    /// Number of leading standard rows that correspond 1:1 to user rows.
    pub(crate) user_rows: usize,
    /// FNV-1a hash of the standard-form matrix (coefficients only, no
    /// RHS), computed at build time before any pivot. Two builds with the
    /// same hash share every column, so a basis factorization carries over.
    pub(crate) matrix_hash: u64,
    var_cols: Vec<VarCols>,
    pub(crate) iterations: usize,
    /// Caller-supplied wall-clock / iteration budget, consulted inside
    /// the pivot loop every [`crate::recover::BUDGET_CHECK_EVERY`] pivots.
    pub(crate) budget: crate::recover::SolveBudget,
}

const RHS: usize = 0; // symbolic: rhs column is at index ncols + RHS
const PARAM: usize = 1; // parametric column is at index ncols + PARAM

impl Tableau {
    #[inline]
    pub(crate) fn rhs(&self, r: usize) -> f64 {
        self.tab[r][self.ncols + RHS]
    }

    #[inline]
    pub(crate) fn param(&self, r: usize) -> f64 {
        self.tab[r][self.ncols + PARAM]
    }

    #[inline]
    pub(crate) fn rows(&self) -> usize {
        self.tab.len()
    }

    /// Builds the standard-form tableau for `p`. `param` gives the per-user-row
    /// RHS perturbation direction (defaults to all zeros).
    pub(crate) fn build(p: &Problem, param: Option<&[f64]>) -> Result<Tableau, LpError> {
        Ok(Tableau::from_std_form(crate::sparse::StdForm::build(
            p, param,
        )?))
    }

    /// Densifies the shared CSC standard form into the classic tableau
    /// layout: one row of width `ncols + 2` per constraint (columns, then
    /// RHS, then the parametric Δ). Every standard-form convention —
    /// column order, RHS normalization, the matrix hash — is inherited
    /// from [`StdForm`](crate::sparse::StdForm), so the dense, revised,
    /// and sparse-LU variants agree on them by construction.
    pub(crate) fn from_std_form(sf: crate::sparse::StdForm) -> Tableau {
        let m = sf.m;
        let ncols = sf.ncols;
        let mut tab = vec![vec![0.0; ncols + 2]; m];
        for (j, col) in sf.cols.iter().enumerate() {
            for &(r, v) in col {
                tab[r][j] = v;
            }
        }
        for (r, row) in tab.iter_mut().enumerate() {
            row[ncols + RHS] = sf.rhs[r];
            row[ncols + PARAM] = sf.param[r];
        }
        Tableau {
            tab,
            basis: sf.initial_basis,
            ncols,
            col_kinds: sf.col_kinds,
            costs: sf.costs,
            z: vec![0.0; ncols],
            z2: None,
            sense_factor: sf.sense_factor,
            row_flip: sf.row_flip,
            dual_col: sf.dual_col,
            user_rows: sf.user_rows,
            matrix_hash: sf.matrix_hash,
            var_cols: sf.var_cols,
            iterations: 0,
            budget: crate::recover::SolveBudget::UNLIMITED,
        }
    }

    /// Snapshots an arbitrary basic-column list as a [`Basis`] in
    /// problem-structure terms (used by both simplex variants).
    pub(crate) fn capture_basis_from(&self, basic: &[usize]) -> Basis {
        let entries = basic
            .iter()
            .map(|&b| match self.col_kinds[b] {
                ColKind::Structural { var, sign } => BasisEntry::Structural {
                    var,
                    negative: sign < 0.0,
                },
                ColKind::Slack { row } => BasisEntry::Slack { row },
                ColKind::Surplus { row } => BasisEntry::Surplus { row },
                ColKind::Artificial { row } => BasisEntry::Artificial { row },
            })
            .collect();
        Basis {
            entries,
            num_vars: self.var_cols.len(),
            user_rows: self.user_rows,
            ncols: self.ncols,
            matrix_hash: self.matrix_hash,
            factor: OnceLock::new(),
        }
    }

    /// Snapshots the tableau's current basis.
    pub(crate) fn capture_basis(&self) -> Basis {
        self.capture_basis_from(&self.basis)
    }

    /// Crossover: guesses a basis that supports the primal point `x`
    /// (user-variable space), for warm-starting a simplex solve from a
    /// solution obtained outside the simplex — e.g. the graph fast path's
    /// schedule on the difference subset of a mixed system.
    ///
    /// Per standard-form row, the slack/surplus is made basic when the row
    /// has strict slack at `x`; tight rows take an unused structural
    /// column that is positive at `x` (largest pivot coefficient first),
    /// or park a logical column at zero when none remains. The result is
    /// not guaranteed nonsingular or feasible — the warm-start entry path
    /// validates and silently falls back to a cold solve, so a poor guess
    /// costs nothing but the attempt.
    pub(crate) fn basis_from_point(p: &Problem, x: &[f64]) -> Result<Basis, LpError> {
        if x.len() != p.vars.len() {
            return Err(LpError::Numerical {
                context: format!(
                    "basis_from_point: {} values for {} variables",
                    x.len(),
                    p.vars.len()
                ),
            });
        }
        let t = Tableau::build(p, None)?;
        // Standard-form values of the structural columns at `x`.
        let mut xstd = vec![0.0; t.ncols];
        for (v, vc) in t.var_cols.iter().enumerate() {
            match *vc {
                VarCols::Shifted { col, shift } => xstd[col] = x[v] - shift,
                VarCols::Split { pos, neg } => {
                    xstd[pos] = x[v].max(0.0);
                    xstd[neg] = (-x[v]).max(0.0);
                }
            }
        }
        let m = t.rows();
        let mut slack_of = vec![usize::MAX; m];
        let mut surplus_of = vec![usize::MAX; m];
        let mut art_of = vec![usize::MAX; m];
        let mut nstruct = 0usize;
        for (c, k) in t.col_kinds.iter().enumerate() {
            match *k {
                ColKind::Structural { .. } => nstruct += 1,
                ColKind::Slack { row } => slack_of[row] = c,
                ColKind::Surplus { row } => surplus_of[row] = c,
                ColKind::Artificial { row } => art_of[row] = c,
            }
        }
        let mut used = vec![false; t.ncols];
        let mut basic = vec![usize::MAX; m];
        let mut tight: Vec<usize> = Vec::new();
        for (r, slot) in basic.iter_mut().enumerate() {
            let activity: f64 = (0..nstruct).map(|c| t.tab[r][c] * xstd[c]).sum();
            let resid = t.rhs(r) - activity;
            if slack_of[r] != usize::MAX && resid > crate::EPS {
                *slot = slack_of[r];
                used[slack_of[r]] = true;
            } else if surplus_of[r] != usize::MAX && resid < -crate::EPS {
                *slot = surplus_of[r];
                used[surplus_of[r]] = true;
            } else {
                tight.push(r);
            }
        }
        for &r in &tight {
            let mut best: Option<(usize, f64)> = None;
            for c in 0..nstruct {
                if used[c] || xstd[c] <= crate::EPS {
                    continue;
                }
                let a = t.tab[r][c].abs();
                if a > crate::EPS && best.is_none_or(|(_, ba)| a > ba) {
                    best = Some((c, a));
                }
            }
            let col = match best {
                Some((c, _)) => c,
                // Degenerate row: park a logical column at value zero.
                None if art_of[r] != usize::MAX => art_of[r],
                None if slack_of[r] != usize::MAX => slack_of[r],
                None => surplus_of[r],
            };
            basic[r] = col;
            used[col] = true;
        }
        Ok(t.capture_basis_from(&basic))
    }

    /// Resolves a snapshot's entries to column indices of *this* tableau,
    /// or `None` when the snapshot is incompatible (different dimensions,
    /// or an entry with no matching column — e.g. a row whose RHS
    /// normalization flipped, swapping its slack for a surplus).
    pub(crate) fn basis_columns(&self, basis: &Basis) -> Option<Vec<usize>> {
        if basis.num_vars != self.var_cols.len()
            || basis.user_rows != self.user_rows
            || basis.ncols != self.ncols
            || basis.entries.len() != self.rows()
        {
            return None;
        }
        basis
            .entries
            .iter()
            .map(|e| {
                let want = match *e {
                    BasisEntry::Structural { var, negative } => ColKind::Structural {
                        var,
                        sign: if negative { -1.0 } else { 1.0 },
                    },
                    BasisEntry::Slack { row } => ColKind::Slack { row },
                    BasisEntry::Surplus { row } => ColKind::Surplus { row },
                    BasisEntry::Artificial { row } => ColKind::Artificial { row },
                };
                self.col_kinds.iter().position(|k| *k == want)
            })
            .collect()
    }

    /// Recomputes the reduced-cost row `z = c − c_B·B⁻¹A` for cost vector `c`.
    pub(crate) fn reduced_costs_for(&self, costs: &[f64]) -> Vec<f64> {
        let mut z = costs.to_vec();
        for (r, &b) in self.basis.iter().enumerate() {
            let cb = costs[b];
            if cb != 0.0 {
                let row = &self.tab[r];
                for (j, zj) in z.iter_mut().enumerate() {
                    *zj -= cb * row[j];
                }
            }
        }
        z
    }

    /// Performs one pivot on `(row, col)`, updating the tableau, the basis
    /// and the reduced-cost row.
    pub(crate) fn pivot(&mut self, row: usize, col: usize) {
        let width = self.ncols + 2;
        let piv = self.tab[row][col];
        debug_assert!(piv.abs() > EPS, "pivot on near-zero element");
        let inv = 1.0 / piv;
        for j in 0..width {
            self.tab[row][j] *= inv;
        }
        // exact unit pivot column in the pivot row
        self.tab[row][col] = 1.0;
        // Split the rows around the pivot row so the elimination can stream
        // over slices instead of double-indexing every element.
        let (before, rest) = self.tab.split_at_mut(row);
        let Some((pivot_row, after)) = rest.split_first_mut() else {
            return; // row ≥ tab.len(): nothing to eliminate against
        };
        for r in before.iter_mut().chain(after.iter_mut()) {
            let factor = r[col];
            if factor != 0.0 {
                for (dst, &src) in r.iter_mut().zip(pivot_row.iter()).take(width) {
                    *dst -= factor * src;
                }
                r[col] = 0.0;
            }
        }
        let zfac = self.z[col];
        if zfac != 0.0 {
            for j in 0..self.ncols {
                self.z[j] -= zfac * self.tab[row][j];
            }
            self.z[col] = 0.0;
        }
        if let Some(z2) = &mut self.z2 {
            let z2fac = z2[col];
            if z2fac != 0.0 {
                for (j, z2j) in z2.iter_mut().enumerate().take(self.ncols) {
                    *z2j -= z2fac * self.tab[row][j];
                }
                z2[col] = 0.0;
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Primal simplex on the current basis for cost vector `costs`
    /// (minimize). `allow_artificial_entering` is true only in phase 1.
    ///
    /// Returns `Ok(true)` on optimal, `Ok(false)` on unbounded.
    fn primal_loop(
        &mut self,
        costs: &[f64],
        allow_artificial_entering: bool,
        limit: usize,
    ) -> Result<bool, LpError> {
        self.z = self.reduced_costs_for(costs);
        let bland_after = self.iterations + 10 * (self.rows() + self.ncols);
        loop {
            if self.iterations > limit {
                return Err(LpError::IterationLimit { limit });
            }
            if self
                .iterations
                .is_multiple_of(crate::recover::BUDGET_CHECK_EVERY)
            {
                self.budget.check(self.iterations)?;
            }
            let bland = self.iterations > bland_after;
            // entering column
            let mut enter = None;
            let mut best = -EPS;
            for j in 0..self.ncols {
                if !allow_artificial_entering
                    && matches!(self.col_kinds[j], ColKind::Artificial { .. })
                {
                    continue;
                }
                if self.z[j] < -EPS {
                    if bland {
                        enter = Some(j);
                        break;
                    }
                    if self.z[j] < best {
                        best = self.z[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(jc) = enter else {
                return Ok(true); // optimal
            };
            // ratio test
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows() {
                let a = self.tab[r][jc];
                if a > EPS {
                    let ratio = self.rhs(r) / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(r) = leave else {
                return Ok(false); // unbounded in this phase
            };
            self.pivot(r, jc);
        }
    }

    /// Sum of artificial basic values (the phase-1 objective).
    fn artificial_infeasibility(&self) -> f64 {
        self.basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| matches!(self.col_kinds[b], ColKind::Artificial { .. }))
            .map(|(r, _)| self.rhs(r))
            .sum()
    }

    /// Runs phase 1 + phase 2.
    pub(crate) fn optimize(&mut self) -> Result<Status, LpError> {
        let limit = 50_000 + 200 * (self.rows() + self.ncols);

        // Phase 1 (skip when no artificials exist).
        let has_art = self
            .col_kinds
            .iter()
            .any(|k| matches!(k, ColKind::Artificial { .. }));
        if has_art {
            let phase1_costs: Vec<f64> = self
                .col_kinds
                .iter()
                .map(|k| {
                    if matches!(k, ColKind::Artificial { .. }) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let optimal = self.primal_loop(&phase1_costs, true, limit)?;
            debug_assert!(optimal, "phase-1 objective is bounded below by zero");
            // NOTE: absolute threshold — adequate for the 0/±1-coefficient
            // SMO matrices this crate serves; models with very large RHS
            // magnitudes should be scaled by the caller.
            if self.artificial_infeasibility() > 1e-7 {
                return Ok(Status::Infeasible);
            }
            // Drive remaining artificials out of the basis where possible.
            for r in 0..self.rows() {
                if matches!(self.col_kinds[self.basis[r]], ColKind::Artificial { .. }) {
                    if let Some(j) = (0..self.ncols).find(|&j| {
                        !matches!(self.col_kinds[j], ColKind::Artificial { .. })
                            && self.tab[r][j].abs() > EPS
                    }) {
                        self.pivot(r, j);
                    }
                    // else: redundant row; inert because artificials never
                    // re-enter and all its non-artificial entries are ~0.
                }
            }
        }

        // Phase 2.
        let costs = self.costs.clone();
        let optimal = self.primal_loop(&costs, false, limit)?;
        if optimal {
            Ok(Status::Optimal)
        } else {
            Ok(Status::Unbounded)
        }
    }

    /// Current value of each standard-form column at the basic solution.
    fn column_values(&self) -> Vec<f64> {
        let mut vals = vec![0.0; self.ncols];
        for (r, &b) in self.basis.iter().enumerate() {
            vals[b] = self.rhs(r);
        }
        vals
    }

    /// Maps the basic solution back to user-variable values.
    pub(crate) fn user_values(&self) -> Vec<f64> {
        let cols = self.column_values();
        self.user_values_from(&cols)
    }

    /// Maps arbitrary standard-form column values back to user variables.
    pub(crate) fn user_values_from(&self, cols: &[f64]) -> Vec<f64> {
        self.var_cols
            .iter()
            .map(|vc| match *vc {
                VarCols::Shifted { col, shift } => cols[col] + shift,
                VarCols::Split { pos, neg } => cols[pos] - cols[neg],
            })
            .collect()
    }

    /// Converts a per-user-variable cost delta into a standard-column cost
    /// vector (minimize orientation), for parametric objective ranging.
    pub(crate) fn user_costs_to_columns(&self, delta: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.ncols];
        for (var, vc) in self.var_cols.iter().enumerate() {
            let d = self.sense_factor * delta[var];
            match *vc {
                VarCols::Shifted { col, .. } => out[col] += d,
                VarCols::Split { pos, neg } => {
                    out[pos] += d;
                    out[neg] -= d;
                }
            }
        }
        out
    }

    /// Maps a standard-row dual vector `y = c_B·B⁻¹` to user-constraint
    /// duals (undoing row normalization flips and the minimize orientation).
    pub(crate) fn map_duals(&self, y: &[f64]) -> Vec<f64> {
        (0..self.user_rows)
            .map(|r| {
                let v = if self.row_flip[r] { -y[r] } else { y[r] };
                self.sense_factor * v
            })
            .collect()
    }

    /// Maps a standard-row dual vector back to user rows undoing only the
    /// normalization flips — **not** the objective orientation.
    ///
    /// Used for phase-1 (feasibility) duals, which are independent of
    /// whether the user minimizes or maximizes. Multipliers of internal
    /// upper-bound rows (standard rows past `user_rows`) are dropped; the
    /// certificate stays valid because each dropped row is `x_i ≤ u_i`
    /// with `y ≤ 0`, which the variable-box supremum check used by
    /// [`certifies_infeasibility`](crate::certifies_infeasibility) already
    /// accounts for.
    pub(crate) fn map_feasibility_duals(&self, y: &[f64]) -> Vec<f64> {
        (0..self.user_rows)
            .map(|r| if self.row_flip[r] { -y[r] } else { y[r] })
            .collect()
    }

    /// Phase-1 duals per standard row, read off the phase-1 reduced-cost
    /// row. Only meaningful right after phase 1 terminated infeasible (no
    /// phase-2 pivots may have run since).
    ///
    /// Each row's dual comes from the reduced cost of its designated
    /// logical column `j`: `z_j = c_j − y·a_j`, and `a_j` is `±e_r`, so a
    /// slack (`c = 0`, `a = +e_r`) gives `y_r = −z_j` and an artificial
    /// (`c = 1` in phase 1, `a = +e_r`) gives `y_r = 1 − z_j`.
    pub(crate) fn phase1_duals(&self) -> Vec<f64> {
        (0..self.rows())
            .map(|r| {
                let col = self.dual_col[r];
                match self.col_kinds[col] {
                    ColKind::Slack { .. } => -self.z[col],
                    ColKind::Artificial { .. } => 1.0 - self.z[col],
                    ColKind::Surplus { .. } | ColKind::Structural { .. } => {
                        unreachable!("dual col is a slack or artificial")
                    }
                }
            })
            .collect()
    }

    /// Maps standard-column reduced costs to user-variable reduced costs.
    pub(crate) fn map_reduced_costs(&self, z: &[f64]) -> Vec<f64> {
        self.var_cols
            .iter()
            .map(|vc| {
                let col = match *vc {
                    VarCols::Shifted { col, .. } => col,
                    VarCols::Split { pos, .. } => pos,
                };
                self.sense_factor * z[col]
            })
            .collect()
    }

    /// Objective value in the *user's* orientation (NaN if the problem has
    /// no objective, which `validate` rules out before any solve).
    pub(crate) fn user_objective(&self, p: &Problem) -> f64 {
        let values = self.user_values();
        p.objective
            .as_ref()
            .map_or(f64::NAN, |(_, obj)| obj.eval(&values))
    }

    /// Dual value of each user constraint, in the user's orientation and
    /// original row signs.
    pub(crate) fn user_duals(&self) -> Vec<f64> {
        (0..self.user_rows)
            .map(|r| {
                let col = self.dual_col[r];
                let y = match self.col_kinds[col] {
                    ColKind::Slack { .. } => -self.z[col],
                    ColKind::Artificial { .. } => -self.z[col],
                    ColKind::Surplus { .. } => self.z[col],
                    ColKind::Structural { .. } => unreachable!("dual col is logical"),
                };
                let y = if self.row_flip[r] { -y } else { y };
                self.sense_factor * y
            })
            .collect()
    }

    /// Reduced cost of each user variable (positive part for split vars), in
    /// the user's orientation.
    pub(crate) fn user_reduced_costs(&self) -> Vec<f64> {
        self.var_cols
            .iter()
            .map(|vc| {
                let col = match *vc {
                    VarCols::Shifted { col, .. } => col,
                    VarCols::Split { pos, .. } => pos,
                };
                self.sense_factor * self.z[col]
            })
            .collect()
    }
}

/// Solves `p`, returning both the packaged [`Solution`] and (when optimal)
/// the final tableau for parametric post-processing.
pub(crate) fn solve_with_tableau(
    p: &Problem,
    param: Option<&[f64]>,
) -> Result<(Solution, Option<Tableau>), LpError> {
    let t = Tableau::build(p, param)?;
    finish_solve(p, t)
}

/// Packages an optimal tableau (reduced costs in `t.z`) as a [`Solution`],
/// including the basis snapshot for warm restarts.
fn package_optimal(p: &Problem, t: &Tableau) -> Solution {
    let values = t.user_values();
    let slacks = p
        .rows
        .iter()
        .map(|r| {
            let lhs = r.expr.eval(&values);
            match r.sense {
                Sense::Le | Sense::Eq => r.rhs - lhs,
                Sense::Ge => lhs - r.rhs,
            }
        })
        .collect();
    Solution {
        status: Status::Optimal,
        objective: Some(t.user_objective(p)),
        duals: t.user_duals(),
        reduced_costs: t.user_reduced_costs(),
        values,
        slacks,
        iterations: t.iterations,
        farkas: None,
        basis: Some(t.capture_basis()),
        stats: None,
    }
}

/// Runs the already-built tableau to termination and packages the result.
fn finish_solve(p: &Problem, mut t: Tableau) -> Result<(Solution, Option<Tableau>), LpError> {
    let status = t.optimize()?;
    let solution = match status {
        Status::Optimal => package_optimal(p, &t),
        _ => Solution {
            status,
            objective: None,
            values: vec![],
            duals: vec![],
            reduced_costs: vec![],
            slacks: vec![],
            iterations: t.iterations,
            // When phase 1 ends with positive artificial mass, its duals
            // are exactly a Farkas certificate of infeasibility.
            farkas: (status == Status::Infeasible)
                .then(|| t.map_feasibility_duals(&t.phase1_duals())),
            basis: None,
            stats: None,
        },
    };
    let keep = solution.status == Status::Optimal;
    Ok((solution, keep.then_some(t)))
}

/// Entry point used by [`Problem::solve_with_budget`].
pub(crate) fn solve_budgeted(
    p: &Problem,
    budget: crate::recover::SolveBudget,
) -> Result<Solution, LpError> {
    solve_with_tableau_budgeted(p, None, budget).map(|(s, _)| s)
}

/// [`solve_with_tableau`] under a caller-supplied budget.
pub(crate) fn solve_with_tableau_budgeted(
    p: &Problem,
    param: Option<&[f64]>,
    budget: crate::recover::SolveBudget,
) -> Result<(Solution, Option<Tableau>), LpError> {
    let mut t = Tableau::build(p, param)?;
    t.budget = budget;
    finish_solve(p, t)
}

/// Outcome of a warm-start attempt: a repaired optimal tableau, or a
/// signal to fall back to the cold two-phase path.
enum Warm {
    Solved,
    Fallback,
}

/// Feasibility tolerance for warm-start repair decisions; matches the
/// solvers' absolute phase-1 threshold rather than the pivot `EPS`.
const WARM_FEAS: f64 = 1e-7;

/// Dense dual simplex on the current basis: restores `rhs ≥ 0` while
/// preserving dual feasibility of `t.z` (which must already hold). Pivots
/// are bounded by `max_pivots`.
///
/// Returns `Ok(true)` when primal feasibility is reached, `Ok(false)` when
/// the repair gives up (primal infeasibility detected, pivot budget spent,
/// or a numerically hopeless row) — the caller falls back to a cold solve
/// either way, so a `false` is never wrong, only slower.
fn dual_simplex(t: &mut Tableau, max_pivots: usize) -> Result<bool, LpError> {
    let mut pivots = 0usize;
    loop {
        // Leaving row: most negative basic value.
        let mut leave = None;
        let mut most = -WARM_FEAS;
        for r in 0..t.rows() {
            if t.rhs(r) < most {
                most = t.rhs(r);
                leave = Some(r);
            }
        }
        let Some(r) = leave else {
            return Ok(true);
        };
        if pivots >= max_pivots {
            return Ok(false);
        }
        if pivots.is_multiple_of(crate::recover::BUDGET_CHECK_EVERY) {
            t.budget.check(t.iterations)?;
        }
        // Entering column: dual ratio test over the negative entries of the
        // leaving row. Artificials are barred (they never re-enter); basic
        // columns have a unit/zero entry in this row and are excluded by
        // the `< -EPS` screen. First-come tie-breaking keeps the lowest
        // index, Bland-style.
        let mut enter = None;
        let mut best = f64::INFINITY;
        for j in 0..t.ncols {
            if matches!(t.col_kinds[j], ColKind::Artificial { .. }) {
                continue;
            }
            let a = t.tab[r][j];
            if a < -EPS {
                let ratio = t.z[j].max(0.0) / -a;
                if ratio < best {
                    best = ratio;
                    enter = Some(j);
                }
            }
        }
        let Some(j) = enter else {
            // Row r reads `(≥0 coeffs)·x = rhs < 0`: primal infeasible.
            // Fall back so the Farkas certificate comes from phase 1.
            return Ok(false);
        };
        t.pivot(r, j);
        pivots += 1;
    }
}

/// Attempts to install `basis` into the freshly built tableau `t` and
/// repair it to optimality without a phase 1.
///
/// Install = bounded Gauss–Jordan pivots onto the snapshot's columns;
/// repair = dual simplex when the start is primal-infeasible but
/// dual-feasible (the RHS-perturbation case), then a primal phase-2
/// cleanup. Every failure mode returns [`Warm::Fallback`]; only
/// [`LpError::Budget`] propagates as an error.
fn warm_optimize(t: &mut Tableau, basis: &Basis) -> Result<Warm, LpError> {
    let Some(targets) = t.basis_columns(basis) else {
        return Ok(Warm::Fallback);
    };
    let m = t.rows();

    // --- install ------------------------------------------------------
    // First claim the targets that are basic already (the initial basis is
    // slacks + artificials, so snapshot slacks usually are), then pivot
    // the rest in, choosing the largest available pivot each time.
    let mut placed = vec![false; m];
    for &jc in &targets {
        if let Some(r) = t.basis.iter().position(|&b| b == jc) {
            placed[r] = true;
        }
    }
    for &jc in &targets {
        if t.basis.contains(&jc) {
            continue;
        }
        let mut best_r = None;
        let mut best_a = 1e-9;
        for (r, &done) in placed.iter().enumerate() {
            if done {
                continue;
            }
            let a = t.tab[r][jc].abs();
            if a > best_a {
                best_a = a;
                best_r = Some(r);
            }
        }
        let Some(r) = best_r else {
            return Ok(Warm::Fallback); // snapshot basis singular here
        };
        t.pivot(r, jc);
        placed[r] = true;
    }
    // Install pivots are bookkeeping, not simplex work: report only the
    // repair pivots so warm-vs-cold iteration counts compare honestly.
    t.iterations = 0;

    // --- classify the starting point ----------------------------------
    let costs = t.costs.clone();
    t.z = t.reduced_costs_for(&costs);
    let primal_ok = (0..m).all(|r| t.rhs(r) >= -WARM_FEAS);
    if !primal_ok {
        let in_basis = {
            let mut flags = vec![false; t.ncols];
            for &b in &t.basis {
                flags[b] = true;
            }
            flags
        };
        let dual_ok = (0..t.ncols).all(|j| {
            in_basis[j]
                || matches!(t.col_kinds[j], ColKind::Artificial { .. })
                || t.z[j] >= -WARM_FEAS
        });
        if !dual_ok {
            return Ok(Warm::Fallback);
        }
        let repair_budget = 2 * (m + t.ncols);
        if !dual_simplex(t, repair_budget)? {
            return Ok(Warm::Fallback);
        }
    }
    // Snap residual tolerance-level negatives so the primal ratio test
    // starts from a clean feasible point.
    for r in 0..m {
        let v = t.rhs(r);
        if (-WARM_FEAS..0.0).contains(&v) {
            let c = t.ncols;
            t.tab[r][c] = 0.0;
        }
    }
    // A warm path must never claim infeasibility: positive artificial mass
    // means the snapshot dragged in an artificial the repair cannot judge.
    if t.artificial_infeasibility() > WARM_FEAS {
        return Ok(Warm::Fallback);
    }

    // --- primal cleanup (phase 2 from the repaired basis) --------------
    let limit = 50_000 + 200 * (m + t.ncols);
    match t.primal_loop(&costs, false, limit) {
        Ok(true) => {}
        Ok(false) => return Ok(Warm::Fallback), // suspicious: verify cold
        Err(e @ LpError::Budget { .. }) => return Err(e),
        Err(_) => return Ok(Warm::Fallback),
    }
    if t.artificial_infeasibility() > WARM_FEAS {
        return Ok(Warm::Fallback);
    }
    Ok(Warm::Solved)
}

/// Entry point used by [`Problem::solve_from_basis_with_budget`]: solve
/// warm from `basis`, falling back to the cold two-phase path whenever the
/// snapshot cannot be installed and repaired cleanly.
pub(crate) fn solve_from_basis_budgeted(
    p: &Problem,
    basis: &Basis,
    budget: crate::recover::SolveBudget,
) -> Result<Solution, LpError> {
    let mut t = Tableau::build(p, None)?;
    t.budget = budget;
    match warm_optimize(&mut t, basis)? {
        Warm::Solved => Ok(package_optimal(p, &t)),
        Warm::Fallback => {
            let mut cold = Tableau::build(p, None)?;
            cold.budget = budget;
            finish_solve(p, cold).map(|(s, _)| s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Tableau;
    use crate::{LinExpr, Problem, Sense, Status, VarId};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn solves_textbook_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> z* = 36 at (2,6)
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x.into(), Sense::Le, 4.0);
        p.constrain(2.0 * y, Sense::Le, 12.0);
        p.constrain(3.0 * x + 2.0 * y, Sense::Le, 18.0);
        p.maximize(3.0 * x + 5.0 * y);
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.objective(), 36.0));
        assert!(near(s.value(x), 2.0));
        assert!(near(s.value(y), 6.0));
    }

    #[test]
    fn solves_min_with_ge_rows() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 -> z* = 8 at (4, 0)? check:
        // candidates: (4,0) z=8; (1,3) z=11 -> optimum (4,0).
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x + y, Sense::Ge, 4.0);
        p.constrain(x.into(), Sense::Ge, 1.0);
        p.minimize(2.0 * x + 3.0 * y);
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.objective(), 8.0));
        assert!(near(s.value(x), 4.0));
        assert!(near(s.value(y), 0.0));
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Le, 1.0);
        p.constrain(x.into(), Sense::Ge, 2.0);
        p.minimize(x.into());
        assert_eq!(p.solve().unwrap().status(), Status::Infeasible);
    }

    #[test]
    fn basis_from_point_warm_starts() {
        // Crossover from the known optimum of the textbook model: the
        // warm solve must reach the same optimum, typically in fewer
        // pivots than the cold two-phase run.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x.into(), Sense::Le, 4.0);
        p.constrain(2.0 * y, Sense::Le, 12.0);
        p.constrain(3.0 * x + 2.0 * y, Sense::Le, 18.0);
        p.maximize(3.0 * x + 5.0 * y);
        let basis = p.basis_from_point(&[2.0, 6.0]).unwrap();
        let warm = p.solve_from_basis(&basis).unwrap().into_optimal().unwrap();
        assert!(near(warm.objective(), 36.0));
        assert!(near(warm.value(x), 2.0));
        assert!(near(warm.value(y), 6.0));
        // An interior (suboptimal) point still yields a usable basis.
        let rough = p.basis_from_point(&[1.0, 1.0]).unwrap();
        let s = p.solve_from_basis(&rough).unwrap().into_optimal().unwrap();
        assert!(near(s.objective(), 36.0));
        // And a wrong-length point is rejected.
        assert!(p.basis_from_point(&[1.0]).is_err());
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Ge, 1.0);
        p.maximize(x.into());
        assert_eq!(p.solve().unwrap().status(), Status::Unbounded);
    }

    #[test]
    fn equality_rows_via_artificials() {
        // min x + y s.t. x + 2y = 6, x - y = 0  -> x = y = 2, z = 4
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x + 2.0 * y, Sense::Eq, 6.0);
        p.constrain(x - y, Sense::Eq, 0.0);
        p.minimize(x + y);
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.value(x), 2.0));
        assert!(near(s.value(y), 2.0));
        assert!(near(s.objective(), 4.0));
    }

    #[test]
    fn free_variables_split() {
        // min |style|: min t s.t. t >= x - 3, t >= 3 - x with x free and
        // x = 5 forced -> t = 2.
        let mut p = Problem::new();
        let x = p.add_free_var("x");
        let t = p.add_var("t");
        p.constrain(LinExpr::from(t) - x, Sense::Ge, -3.0);
        p.constrain(LinExpr::from(t) + x, Sense::Ge, 3.0);
        p.constrain(x.into(), Sense::Eq, 5.0);
        p.minimize(t.into());
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.value(x), 5.0));
        assert!(near(s.value(t), 2.0));
    }

    #[test]
    fn negative_lower_bounds_shift() {
        // min x s.t. x >= -5 with domain [-10, inf) -> x* = -5
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", -10.0, f64::INFINITY);
        p.constrain(x.into(), Sense::Ge, -5.0);
        p.minimize(x.into());
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.value(x), -5.0));
        assert!(near(s.objective(), -5.0));
    }

    #[test]
    fn upper_bounds_enforced() {
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", 0.0, 3.5);
        p.maximize(x.into());
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.value(x), 3.5));
    }

    #[test]
    fn duals_match_shadow_prices() {
        // max 3x + 5y as in `solves_textbook_max`; known duals y* = (0, 1.5, 1)
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let c1 = p.constrain(x.into(), Sense::Le, 4.0);
        let c2 = p.constrain(2.0 * y, Sense::Le, 12.0);
        let c3 = p.constrain(3.0 * x + 2.0 * y, Sense::Le, 18.0);
        p.maximize(3.0 * x + 5.0 * y);
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.dual(c1), 0.0), "dual c1 = {}", s.dual(c1));
        assert!(near(s.dual(c2), 1.5), "dual c2 = {}", s.dual(c2));
        assert!(near(s.dual(c3), 1.0), "dual c3 = {}", s.dual(c3));
        // slack of c1 at (2,6) is 2
        assert!(near(s.slack(c1), 2.0));
        assert!(near(s.slack(c2), 0.0));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple redundant constraints through a vertex.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x + y, Sense::Le, 1.0);
        p.constrain(x + y, Sense::Le, 1.0);
        p.constrain(2.0 * x + 2.0 * y, Sense::Le, 2.0);
        p.constrain(x - y, Sense::Le, 0.0);
        p.maximize(x + y);
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.objective(), 1.0));
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y = 2 listed twice: phase 1 leaves a redundant artificial basic.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x + y, Sense::Eq, 2.0);
        p.constrain(x + y, Sense::Eq, 2.0);
        p.minimize(x.into());
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.value(x), 0.0));
        assert!(near(s.value(y), 2.0));
    }

    #[test]
    fn smo_shaped_problem() {
        // A miniature of the SMO LP: min Tc with a borrowing chain.
        // Tc >= D + 5; D >= 7 - g; g <= Tc/2 encoded as 2g - Tc <= 0.
        let mut p = Problem::new();
        let tc = p.add_var("Tc");
        let d = p.add_var("D");
        let g = p.add_var("g");
        p.constrain(LinExpr::from(tc) - d, Sense::Ge, 5.0);
        p.constrain(LinExpr::from(d) + g, Sense::Ge, 7.0);
        p.constrain(2.0 * g - tc, Sense::Le, 0.0);
        p.minimize(tc.into());
        let s = p.solve().unwrap().into_optimal().unwrap();
        // Tc = D + 5, D = 7 - g, g = Tc/2 -> Tc = 12 - Tc/2 -> Tc = 8
        assert!(near(s.objective(), 8.0), "Tc = {}", s.objective());
    }

    #[test]
    fn objective_constant_is_respected() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Ge, 2.0);
        p.minimize(LinExpr::from(x) + 10.0);
        let s = p.solve().unwrap().into_optimal().unwrap();
        assert!(near(s.objective(), 12.0));
    }

    #[test]
    fn warm_start_agrees_after_rhs_perturbation() {
        // Solve, perturb a RHS, warm-start from the stale basis: the
        // verdict must match a cold re-solve exactly.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x.into(), Sense::Le, 4.0);
        p.constrain(2.0 * y, Sense::Le, 12.0);
        let c3 = p.constrain(3.0 * x + 2.0 * y, Sense::Le, 18.0);
        p.maximize(3.0 * x + 5.0 * y);
        let cold = p.solve().unwrap();
        let basis = cold
            .basis()
            .expect("optimal solve captures a basis")
            .clone();
        p.set_rhs(c3, 15.0);
        let warm = p.solve_from_basis(&basis).unwrap();
        let cold2 = p.solve().unwrap();
        assert_eq!(warm.status(), Status::Optimal);
        assert!(near(warm.objective().unwrap(), cold2.objective().unwrap()));
        // The warm solve skipped phase 1: strictly fewer pivots.
        assert!(warm.iterations() <= cold2.iterations());
    }

    #[test]
    fn warm_start_falls_back_when_structure_flips() {
        // Driving the RHS negative flips the row's standard-form sign
        // (slack becomes surplus + artificial): the snapshot no longer
        // matches and the warm path must fall back to a correct cold solve.
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", -10.0, f64::INFINITY);
        let c = p.constrain(x.into(), Sense::Ge, 2.0);
        p.minimize(x.into());
        let cold = p.solve().unwrap();
        let basis = cold.basis().unwrap().clone();
        p.set_rhs(c, -5.0);
        let warm = p.solve_from_basis(&basis).unwrap();
        assert!(near(warm.objective().unwrap(), -5.0));
    }

    #[test]
    fn warm_start_never_claims_uncertified_infeasibility() {
        // Perturb the model into infeasibility: the warm solve must come
        // back Infeasible *with* a Farkas certificate (i.e. via the cold
        // phase-1 path, since the dual repair cannot certify).
        let mut p = Problem::new();
        let x = p.add_var("x");
        let hi = p.constrain(x.into(), Sense::Le, 5.0);
        p.constrain(x.into(), Sense::Ge, 2.0);
        p.minimize(x.into());
        let cold = p.solve().unwrap();
        let basis = cold.basis().unwrap().clone();
        p.set_rhs(hi, 1.0);
        let warm = p.solve_from_basis(&basis).unwrap();
        assert_eq!(warm.status(), Status::Infeasible);
        let y = warm.farkas().expect("infeasible carries Farkas");
        assert!(crate::certifies_infeasibility(&p, y));
    }

    #[test]
    fn matrix_hash_ignores_rhs_but_not_coefficients() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let c = p.constrain(2.0 * x, Sense::Ge, 3.0);
        p.minimize(x.into());
        let h1 = Tableau::build(&p, None).unwrap().matrix_hash;
        p.set_rhs(c, 7.0);
        let h2 = Tableau::build(&p, None).unwrap().matrix_hash;
        assert_eq!(h1, h2, "RHS change must keep the matrix hash");
        let mut q = Problem::new();
        let x = q.add_var("x");
        q.constrain(4.0 * x, Sense::Ge, 3.0);
        q.minimize(x.into());
        let h3 = Tableau::build(&q, None).unwrap().matrix_hash;
        assert_ne!(h1, h3, "coefficient change must change the hash");
    }

    #[test]
    fn var_id_index_is_stable() {
        let mut p = Problem::new();
        let a = p.add_var("a");
        let b = p.add_var("b");
        assert_eq!(a, VarId(0));
        assert_eq!(b.index(), 1);
    }
}
