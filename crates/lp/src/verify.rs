//! Independent certification of `Optimal` verdicts.
//!
//! [`certifies_infeasibility`](crate::certifies_infeasibility) (PR 1)
//! closes the loop on the *infeasible* verdict: a Farkas vector is checked
//! against the original rows, so the caller never has to trust the simplex
//! internals. This module does the same for the *optimal* verdict.
//! [`Solution::certify`] re-derives every optimality condition from the
//! original (pre-presolve, pre-scaling) [`Problem`] and the returned
//! primal/dual vectors alone:
//!
//! 1. **Primal feasibility** — every row holds at the returned values;
//! 2. **Bound satisfaction** — every variable sits inside its box;
//! 3. **Dual feasibility** — row duals carry the sign their sense demands,
//!    and no reduced cost pushes against an infinite bound;
//! 4. **Stationarity** — `c − Aᵀy = rc`, column by column;
//! 5. **Complementary slackness** — a nonzero dual forces a binding row, a
//!    nonzero reduced cost forces a variable at its bound;
//! 6. **Duality gap** — the primal and dual objectives agree.
//!
//! All residuals are *relative* to the magnitudes that produced them
//! ([`Tol`]); there is no raw-`EPS` comparison anywhere, so the
//! certificate is as meaningful at picosecond scale as at second scale.
//!
//! Sign conventions (matching [`Solution::duals`] /
//! [`Solution::reduced_costs`]): after multiplying by `σ = +1` for
//! `Minimize` and `σ = −1` for `Maximize`, a binding `≥` row has dual
//! `≥ 0`, a binding `≤` row has dual `≤ 0`, and the *effective* reduced
//! cost `g = c − Aᵀy` is `≥ 0` for a variable at its lower bound and
//! `≤ 0` at its upper bound. The solver encodes finite upper bounds as
//! internal `≤` rows whose duals are invisible to the caller, so the
//! *reported* reduced cost of a variable at its upper bound may differ
//! from `g` by that hidden multiplier; the stationarity check admits
//! exactly that discrepancy (correct sign, variable pinned at the bound)
//! and nothing else. All other conditions are evaluated on `g`, so the
//! certificate rests on `(x, y)` and weak duality alone.

use crate::problem::{Objective, Problem, Sense};
use crate::solution::{Solution, Status};
use crate::tol::Tol;
use std::fmt;

/// The result of independently checking an `Optimal` verdict against the
/// original problem. Produced by [`Solution::certify`].
///
/// Each field is the *worst relative residual* of one optimality
/// condition; the verdict is certified when every residual is at most
/// [`Certificate::tol`]. A solution whose status is not
/// [`Status::Optimal`] yields an infinite-residual (invalid) certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Worst relative violation of a constraint row (primal feasibility).
    pub primal: f64,
    /// Worst relative violation of a variable bound.
    pub bounds: f64,
    /// Worst relative stationarity residual: how far the reported reduced
    /// cost `rc_j` is from the effective `c_j − Σᵢ aᵢⱼ yᵢ`, beyond what a
    /// hidden upper-bound multiplier can explain.
    pub stationarity: f64,
    /// Worst relative dual-sign violation (row dual with the wrong sign
    /// for its sense, or a reduced cost pushing against an infinite
    /// bound).
    pub dual_sign: f64,
    /// Worst relative complementary-slackness violation (nonzero dual on
    /// a slack row, or nonzero reduced cost on an interior variable).
    pub complementarity: f64,
    /// Relative gap between the primal and dual objective values.
    pub gap: f64,
    tol: Tol,
}

impl Certificate {
    /// A certificate that fails every check (used for non-optimal or
    /// malformed solutions).
    fn invalid() -> Self {
        Certificate {
            primal: f64::INFINITY,
            bounds: f64::INFINITY,
            stationarity: f64::INFINITY,
            dual_sign: f64::INFINITY,
            complementarity: f64::INFINITY,
            gap: f64::INFINITY,
            tol: Tol::FEAS,
        }
    }

    /// The relative tolerance every residual is judged against.
    pub fn tol(&self) -> f64 {
        self.tol.rel()
    }

    /// Does every residual pass? `true` means the `Optimal` verdict is
    /// machine-checked against the original problem.
    pub fn is_valid(&self) -> bool {
        // NaN compares false, so a NaN residual correctly fails here.
        self.residuals().iter().all(|&(_, r)| r <= self.tol.rel())
    }

    /// The largest residual across all six conditions (NaN-safe: NaN maps
    /// to `+∞`).
    pub fn worst(&self) -> f64 {
        self.residuals()
            .iter()
            .map(|&(_, r)| if r.is_nan() { f64::INFINITY } else { r })
            .fold(0.0, f64::max)
    }

    /// The name and value of the worst residual.
    pub fn worst_named(&self) -> (&'static str, f64) {
        let mut out = ("primal", 0.0f64);
        for &(name, r) in &self.residuals() {
            let r = if r.is_nan() { f64::INFINITY } else { r };
            if r >= out.1 {
                out = (name, r);
            }
        }
        out
    }

    /// All residuals with their condition names, in checking order.
    pub fn residuals(&self) -> [(&'static str, f64); 6] {
        [
            ("primal", self.primal),
            ("bounds", self.bounds),
            ("stationarity", self.stationarity),
            ("dual sign", self.dual_sign),
            ("complementarity", self.complementarity),
            ("duality gap", self.gap),
        ]
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(
                f,
                "certified optimal (worst residual {:.3e} <= {:.0e} relative)",
                self.worst(),
                self.tol.rel()
            )
        } else {
            let (name, worst) = self.worst_named();
            write!(
                f,
                "NOT certified: {name} residual {worst:.3e} exceeds {:.0e} relative",
                self.tol.rel()
            )
        }
    }
}

/// NaN-safe running maximum: a NaN residual poisons the certificate as
/// `+∞` rather than being silently dropped by `f64::max`.
fn bump(worst: &mut f64, r: f64) {
    *worst = worst.max(if r.is_nan() { f64::INFINITY } else { r });
}

impl Solution {
    /// Independently certifies this solution's `Optimal` verdict against
    /// `p` — the *original* problem, before any presolve or scaling.
    ///
    /// The check uses only the returned primal values, duals and reduced
    /// costs; nothing is trusted from the solver's internal state. See the
    /// [module docs](crate::verify) for the conditions and sign
    /// conventions. Solutions with a non-`Optimal` status, or with vectors
    /// that do not match the problem's shape, yield an invalid
    /// certificate.
    pub fn certify(&self, p: &Problem) -> Certificate {
        let tol = Tol::FEAS;
        let n = p.vars.len();
        let m = p.rows.len();
        let Some((direction, obj)) = p.objective.as_ref() else {
            return Certificate::invalid();
        };
        if self.status() != Status::Optimal
            || self.values.len() != n
            || self.duals.len() != m
            || self.reduced_costs.len() != n
        {
            return Certificate::invalid();
        }
        let sigma = match direction {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        let x = &self.values;
        let dual_scale = self
            .duals
            .iter()
            .fold(0.0f64, |a, &y| a.max(y.abs()))
            .max(1.0);

        let mut primal = 0.0f64;
        let mut dual_sign = 0.0f64;
        let mut complementarity = 0.0f64;
        // Per-column accumulators for stationarity: Σᵢ aᵢⱼ yᵢ and its
        // cancellation scale Σᵢ |aᵢⱼ yᵢ|.
        let mut aty = vec![0.0f64; n];
        let mut aty_scale = vec![0.0f64; n];
        // Dual objective: Σᵢ yᵢ bᵢ (normalized) plus bound terms below.
        let mut dual_obj = 0.0f64;

        for (row, &y) in p.rows.iter().zip(&self.duals) {
            // Row activity with its cancellation scale.
            let mut activity = 0.0;
            let mut act_scale = row.rhs.abs();
            for (var, coeff) in row.expr.iter() {
                let term = coeff * x[var.index()];
                activity += term;
                act_scale += term.abs();
                aty[var.index()] += coeff * y;
                aty_scale[var.index()] += (coeff * y).abs();
            }
            // 1. Primal feasibility.
            let viol = match row.sense {
                Sense::Le => activity - row.rhs,
                Sense::Ge => row.rhs - activity,
                Sense::Eq => (activity - row.rhs).abs(),
            };
            bump(&mut primal, tol.violation(viol, 0.0, act_scale));

            // 3. Dual sign per sense (normalized orientation).
            let yn = sigma * y;
            let wrong = match row.sense {
                Sense::Le => yn.max(0.0),
                Sense::Ge => (-yn).max(0.0),
                Sense::Eq => 0.0,
            };
            bump(&mut dual_sign, wrong / dual_scale);

            // 5. Complementary slackness on rows: either the dual or the
            // slack must vanish (relative to their own scales).
            if !matches!(row.sense, Sense::Eq) {
                let slack = match row.sense {
                    Sense::Le => row.rhs - activity,
                    Sense::Ge => activity - row.rhs,
                    Sense::Eq => 0.0,
                };
                let rel_y = y.abs() / dual_scale;
                let rel_slack = slack.abs() / (1.0 + act_scale);
                bump(&mut complementarity, rel_y.min(rel_slack));
            }

            dual_obj += sigma * y * row.rhs;
        }

        let mut bounds = 0.0f64;
        let mut stationarity = 0.0f64;
        for (j, (var, &xj)) in p.vars.iter().zip(x).enumerate() {
            // 2. Bound satisfaction.
            if var.lower.is_finite() {
                let scale = xj.abs().max(var.lower.abs());
                bump(&mut bounds, tol.violation(var.lower - xj, 0.0, scale));
            }
            if var.upper.is_finite() {
                let scale = xj.abs().max(var.upper.abs());
                bump(&mut bounds, tol.violation(xj - var.upper, 0.0, scale));
            }

            // The *effective* reduced cost is derived from the duals
            // alone: g_j = c_j − Σᵢ aᵢⱼ yᵢ. The optimality conditions are
            // checked on g_j, so the certificate rests on (x, y) and weak
            // duality, not on trusting the reported reduced costs.
            let cj = obj.coeff(crate::expr::VarId(j));
            let rc = self.reduced_costs[j];
            let g = cj - aty[j];
            let gscale = 1.0 + cj.abs() + aty_scale[j] + rc.abs();

            // 4. Stationarity (consistency of the reported reduced cost):
            // the solver folds finite upper bounds into internal `≤` rows
            // whose duals are not part of the user-visible vector, so
            // rc_j may differ from g_j by an upper-bound multiplier
            // μ_j = g_j − rc_j — admissible only with the `≤`-row sign
            // (normalized μ ≤ 0) and only when x_j sits at its upper
            // bound. Anywhere else rc_j must equal g_j.
            let mu_n = sigma * (g - rc) / gscale;
            let at_ub = var.upper.is_finite()
                && (var.upper - xj).abs() <= tol.abs_for(xj.abs().max(var.upper.abs()));
            let resid = if at_ub { mu_n.max(0.0) } else { mu_n.abs() };
            bump(&mut stationarity, resid);

            // 3b/5b. Direction and complementarity of the effective
            // reduced cost: (normalized) positive holds the variable at
            // its lower bound, negative at its upper bound; pushing
            // against an infinite bound is dual-infeasible.
            let gn = sigma * g;
            let rel_g = gn.abs() / gscale;
            if gn > 0.0 {
                if var.lower.is_finite() {
                    let dist = (xj - var.lower).abs() / (1.0 + xj.abs() + var.lower.abs());
                    bump(&mut complementarity, rel_g.min(dist));
                    dual_obj += gn * var.lower;
                } else {
                    bump(&mut dual_sign, rel_g);
                }
            } else if gn < 0.0 {
                if var.upper.is_finite() {
                    let dist = (var.upper - xj).abs() / (1.0 + xj.abs() + var.upper.abs());
                    bump(&mut complementarity, rel_g.min(dist));
                    dual_obj += gn * var.upper;
                } else {
                    bump(&mut dual_sign, rel_g);
                }
            }
        }

        // 6. Duality gap, on the linear parts (the objective constant is
        // shared by both sides and cancels). The primal value is
        // re-evaluated from the returned point, never read back from the
        // solver.
        let primal_obj = sigma * (obj.eval(x) - obj.constant());
        let gap = (primal_obj - dual_obj).abs() / (1.0 + primal_obj.abs() + dual_obj.abs());

        Certificate {
            primal,
            bounds,
            stationarity,
            dual_sign,
            complementarity,
            gap: if gap.is_nan() { f64::INFINITY } else { gap },
            tol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::SimplexVariant;
    use proptest::prelude::*;

    /// A tiny hand-checkable LP: min x + 2y s.t. x + y ≥ 4, x ≤ 3.
    /// Optimum (3, 1), objective 5.
    fn tiny() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Ge,
            4.0,
        );
        p.constrain(LinExpr::term(x, 1.0), Sense::Le, 3.0);
        p.minimize(LinExpr::term(x, 1.0) + LinExpr::term(y, 2.0));
        p
    }

    #[test]
    fn accepts_both_variants_on_a_tiny_lp() {
        let p = tiny();
        for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
            let sol = p.solve_with(variant).expect("solves");
            let cert = sol.certify(&p);
            assert!(cert.is_valid(), "{variant:?}: {cert}");
            assert!(
                cert.worst() < 1e-9,
                "{variant:?}: residual {}",
                cert.worst()
            );
        }
    }

    #[test]
    fn accepts_a_maximize_lp() {
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", 0.0, 10.0);
        let y = p.add_var_bounded("y", 0.0, 10.0);
        p.constrain(
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Le,
            12.0,
        );
        p.maximize(LinExpr::term(x, 3.0) + LinExpr::term(y, 1.0));
        let sol = p.solve().expect("solves");
        let cert = sol.certify(&p);
        assert!(cert.is_valid(), "{cert}");
    }

    #[test]
    fn rejects_non_optimal_and_mismatched_shapes() {
        let p = tiny();
        let mut sol = p.solve().expect("solves");
        let cert_ok = sol.certify(&p);
        assert!(cert_ok.is_valid());
        sol.values.push(0.0); // wrong arity
        assert!(!sol.certify(&p).is_valid());
    }

    #[test]
    fn display_names_the_failing_condition() {
        let p = tiny();
        let mut sol = p.solve().expect("solves");
        sol.duals[0] = -sol.duals[0] - 1.0; // Ge row dual goes negative
        let cert = sol.certify(&p);
        assert!(!cert.is_valid());
        let text = cert.to_string();
        assert!(text.contains("NOT certified"), "{text}");
    }

    #[test]
    fn scale_invariance_of_the_certificate() {
        // The same model at 1e6× the magnitudes must certify identically.
        for scale in [1.0, 1e-6, 1e6] {
            let mut p = Problem::new();
            let x = p.add_var("x");
            let y = p.add_var("y");
            p.constrain(
                LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
                Sense::Ge,
                4.0 * scale,
            );
            p.constrain(LinExpr::term(x, 1.0), Sense::Le, 3.0 * scale);
            p.minimize(LinExpr::term(x, 1.0) + LinExpr::term(y, 2.0));
            let sol = p.solve().expect("solves");
            let cert = sol.certify(&p);
            assert!(cert.is_valid(), "scale {scale}: {cert}");
        }
    }

    /// Strategy: a random feasible, bounded LP (box-constrained minimize
    /// with rows generated around an interior point).
    #[derive(Debug, Clone)]
    struct LpSpec {
        ub: Vec<f64>,                   // per-var upper bound
        point: Vec<f64>,                // interior point (fraction of ub)
        costs: Vec<f64>,                // strictly positive objective
        rows: Vec<(Vec<f64>, u8, f64)>, // (coeffs, sense code, slack)
    }

    fn lp_strategy() -> impl Strategy<Value = LpSpec> {
        (2usize..=6).prop_flat_map(|n| {
            let bounds = proptest::collection::vec(1.0f64..50.0, n..=n);
            let point = proptest::collection::vec(0.05f64..0.95, n..=n);
            let costs = proptest::collection::vec(0.1f64..5.0, n..=n);
            let row = (
                proptest::collection::vec(-3.0f64..3.0, n..=n),
                0u8..3,
                0.0f64..10.0,
            );
            let rows = proptest::collection::vec(row, 1..=2 * n);
            (bounds, point, costs, rows).prop_map(|(ub, point, costs, rows)| LpSpec {
                ub,
                point,
                costs,
                rows,
            })
        })
    }

    fn build_lp(spec: &LpSpec) -> Problem {
        let mut p = Problem::new();
        let vars: Vec<_> = spec
            .ub
            .iter()
            .enumerate()
            .map(|(i, &u)| p.add_var_bounded(format!("x{i}"), 0.0, u))
            .collect();
        let x0: Vec<f64> = spec
            .point
            .iter()
            .zip(&spec.ub)
            .map(|(&f, &u)| f * u)
            .collect();
        let mut obj = LinExpr::new();
        for (&c, &v) in spec.costs.iter().zip(&vars) {
            obj = obj + LinExpr::term(v, c);
        }
        p.minimize(obj);
        for (coeffs, sense, slack) in &spec.rows {
            let mut expr = LinExpr::new();
            let mut at_point = 0.0;
            for ((&a, &v), &xi) in coeffs.iter().zip(&vars).zip(&x0) {
                expr = expr + LinExpr::term(v, a);
                at_point += a * xi;
            }
            // rhs chosen so the interior point satisfies the row.
            match sense % 3 {
                0 => p.constrain(expr, Sense::Le, at_point + slack),
                1 => p.constrain(expr, Sense::Ge, at_point - slack),
                _ => p.constrain(expr, Sense::Eq, at_point),
            };
        }
        p
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Acceptance: every optimal solve of a random LP certifies, with
        /// both simplex variants.
        #[test]
        fn prop_certify_accepts_optimal_solves(spec in lp_strategy()) {
            let p = build_lp(&spec);
            for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
                let sol = p.solve_with(variant).expect("runs");
                if sol.status() == Status::Optimal {
                    let cert = sol.certify(&p);
                    prop_assert!(cert.is_valid(), "{variant:?}: {cert}");
                }
            }
        }

        /// Mutation: perturbing any primal variable away from the optimum
        /// is caught (the objective is strictly positive, so sliding a
        /// value up either breaks feasibility or opens a duality gap).
        #[test]
        fn prop_certify_rejects_perturbed_variable(
            spec in lp_strategy(),
            which in 0usize..64,
        ) {
            let p = build_lp(&spec);
            let mut sol = p.solve().expect("runs");
            prop_assume!(sol.status() == Status::Optimal);
            prop_assume!(sol.certify(&p).is_valid());
            let j = which % sol.values.len();
            let scale = sol.values.iter().fold(1.0f64, |a, v| a.max(v.abs()));
            sol.values[j] += 0.5 * scale;
            let cert = sol.certify(&p);
            prop_assert!(!cert.is_valid(), "mutation survived: {cert}");
        }

        /// Mutation: flipping the sign of a significant dual is caught via
        /// the sign convention or the stationarity residual.
        #[test]
        fn prop_certify_rejects_flipped_dual(
            spec in lp_strategy(),
            which in 0usize..64,
        ) {
            let p = build_lp(&spec);
            let mut sol = p.solve().expect("runs");
            prop_assume!(sol.status() == Status::Optimal);
            prop_assume!(sol.certify(&p).is_valid());
            let significant: Vec<usize> = sol
                .duals
                .iter()
                .enumerate()
                .filter(|(_, y)| y.abs() > 1e-3)
                .map(|(i, _)| i)
                .collect();
            prop_assume!(!significant.is_empty());
            let i = significant[which % significant.len()];
            sol.duals[i] = -sol.duals[i];
            let cert = sol.certify(&p);
            prop_assert!(!cert.is_valid(), "mutation survived: {cert}");
        }

        /// Mutation: planting a correctly-signed dual on a row with real
        /// slack breaks complementary slackness and is caught.
        #[test]
        fn prop_certify_rejects_broken_complementarity(
            spec in lp_strategy(),
            which in 0usize..64,
        ) {
            let p = build_lp(&spec);
            let mut sol = p.solve().expect("runs");
            prop_assume!(sol.status() == Status::Optimal);
            prop_assume!(sol.certify(&p).is_valid());
            // rows with genuine slack and a ~zero dual
            let loose: Vec<(usize, f64)> = p
                .rows
                .iter()
                .enumerate()
                .filter_map(|(i, row)| {
                    let activity = row.expr.eval(&sol.values);
                    let slack = match row.sense {
                        Sense::Le => row.rhs - activity,
                        Sense::Ge => activity - row.rhs,
                        Sense::Eq => return None,
                    };
                    let sign = match row.sense {
                        Sense::Le => -1.0, // minimize: binding ≤ has y ≤ 0
                        _ => 1.0,
                    };
                    (slack > 1e-2 * (1.0 + row.rhs.abs()) && sol.duals[i].abs() < 1e-9)
                        .then_some((i, sign))
                })
                .collect();
            prop_assume!(!loose.is_empty());
            let (i, sign) = loose[which % loose.len()];
            sol.duals[i] = sign; // right sign, wrong row: pure CS break
            let cert = sol.certify(&p);
            prop_assert!(!cert.is_valid(), "mutation survived: {cert}");
        }
    }
}
