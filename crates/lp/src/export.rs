//! Export models in the CPLEX LP text format.
//!
//! Useful for debugging a timing model against an external solver, and for
//! archiving the exact LP a result came from. The dialect written here is
//! the common subset understood by CPLEX, Gurobi, GLPK and SCIP.

use crate::expr::LinExpr;
use crate::problem::{Objective, Problem, Sense};
use std::fmt::Write as _;

/// Renders `p` in CPLEX LP format.
///
/// Variable names are sanitized to the format's identifier rules (the
/// original names appear when they are already valid, otherwise `x<i>` is
/// used). Constraints are named `c<i>` (their row index), so solver logs
/// can be mapped back to [`ConstraintId`](crate::ConstraintId)s.
///
/// ```
/// use smo_lp::{write_lp, Problem, Sense};
/// let mut p = Problem::new();
/// let x = p.add_var("x");
/// p.constrain(x.into(), Sense::Ge, 2.0);
/// p.minimize(x.into());
/// let text = write_lp(&p);
/// assert!(text.contains("Minimize"));
/// assert!(text.contains("c0: + 1 x >= 2"));
/// ```
pub fn write_lp(p: &Problem) -> String {
    let mut out = String::new();
    let names: Vec<String> = (0..p.num_vars())
        .map(|i| sanitize(p.var_name(crate::VarId(i)), i))
        .collect();

    match &p.objective {
        Some((Objective::Minimize, e)) => {
            let _ = writeln!(out, "Minimize");
            let _ = writeln!(out, " obj: {}", expr_text(e, &names));
        }
        Some((Objective::Maximize, e)) => {
            let _ = writeln!(out, "Maximize");
            let _ = writeln!(out, " obj: {}", expr_text(e, &names));
        }
        None => {
            let _ = writeln!(out, "Minimize");
            let _ = writeln!(out, " obj: 0 {}", names.first().map_or("x0", |n| n));
        }
    }

    let _ = writeln!(out, "Subject To");
    for i in 0..p.num_constraints() {
        let (expr, sense, rhs) = p.constraint(crate::ConstraintId(i));
        let op = match sense {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "=",
        };
        let _ = writeln!(out, " c{i}: {} {op} {rhs}", expr_text(expr, &names));
    }

    let _ = writeln!(out, "Bounds");
    #[allow(clippy::needless_range_loop)]
    for i in 0..p.num_vars() {
        let (lo, hi) = p.var_bounds(crate::VarId(i));
        let n = &names[i];
        match (lo == 0.0, hi.is_infinite()) {
            (true, true) => {} // default 0 <= x < inf
            (false, true) if lo.is_infinite() => {
                let _ = writeln!(out, " {n} free");
            }
            (false, true) => {
                let _ = writeln!(out, " {n} >= {lo}");
            }
            (_, false) if lo.is_infinite() => {
                let _ = writeln!(out, " -inf <= {n} <= {hi}");
            }
            (_, false) => {
                let _ = writeln!(out, " {lo} <= {n} <= {hi}");
            }
        }
    }
    let _ = writeln!(out, "End");
    out
}

fn expr_text(e: &LinExpr, names: &[String]) -> String {
    let mut s = String::new();
    for (v, c) in e.iter() {
        let sign = if c < 0.0 { '-' } else { '+' };
        let _ = write!(s, "{sign} {} {} ", c.abs(), names[v.index()]);
    }
    if e.is_empty() {
        let _ = write!(s, "0 {} ", names.first().map_or("x0", |n| n.as_str()));
    }
    s.trim_end().to_string()
}

fn sanitize(name: &str, index: usize) -> String {
    let valid = !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "_!\"#$%&()/,;?@'`{}|~".contains(c));
    if valid {
        name.to_string()
    } else {
        format!("x{index}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Sense};

    #[test]
    fn format_has_all_sections() {
        let mut p = Problem::new();
        let x = p.add_var("Tc");
        let y = p.add_var_bounded("w", 1.0, 5.0);
        let z = p.add_free_var("slack var"); // invalid name → sanitized
        p.constrain(x + y, Sense::Le, 10.0);
        p.constrain(LinExpr::from(x) - z, Sense::Eq, 0.0);
        p.minimize(x.into());
        let text = write_lp(&p);
        assert!(text.starts_with("Minimize\n obj: + 1 Tc"));
        assert!(text.contains("Subject To"));
        assert!(text.contains("c0: + 1 Tc + 1 w <= 10"));
        assert!(text.contains("c1: + 1 Tc - 1 x2 = 0"));
        assert!(text.contains("Bounds"));
        assert!(text.contains(" 1 <= w <= 5"));
        assert!(text.contains(" x2 free"));
        assert!(text.trim_end().ends_with("End"));
    }

    #[test]
    fn maximize_and_constants() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(LinExpr::from(x) + 3.0, Sense::Le, 5.0); // folded to x <= 2
        p.maximize(2.0 * x);
        let text = write_lp(&p);
        assert!(text.starts_with("Maximize"));
        assert!(text.contains("c0: + 1 x <= 2"));
    }

    #[test]
    fn digit_leading_names_are_sanitized() {
        let mut p = Problem::new();
        let x = p.add_var("1bad");
        p.minimize(x.into());
        let text = write_lp(&p);
        assert!(text.contains("x0"));
        assert!(!text.contains("1bad"));
    }
}
