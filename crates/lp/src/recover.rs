//! Certified solves: budgets, the recovery ladder, and
//! [`Problem::solve_certified`].
//!
//! A production timing engine must never return a silently-wrong cycle
//! time. [`Problem::solve_certified`] therefore treats the simplex as an
//! untrusted oracle: every verdict is machine-checked against the
//! *original* problem ([`Solution::certify`] for `Optimal`,
//! [`certifies_infeasibility`](crate::certifies_infeasibility) for
//! `Infeasible`), and when a check fails — or the solver itself errors
//! with an iteration limit or numerical breakdown — a **recovery ladder**
//! is walked, cheapest rung first:
//!
//! 1. **Initial solve** with the requested [`SimplexVariant`].
//! 2. **Alternate variant** — the dense tableau and the revised simplex
//!    have independent failure modes (accumulated pivot error vs eta-file
//!    drift), so the other implementation often succeeds where one fails.
//! 3. **Geometric-mean equilibration** ([`crate::scale`]) — re-solve the
//!    rescaled model; cures the badly-scaled instances that defeat the
//!    solvers' absolute phase-1 threshold. The certificate is still
//!    checked in *unscaled* space against the original problem.
//! 4. **Iterative refinement** — one round: the best candidate point is
//!    shifted to the origin and the residual problem re-solved at a
//!    power-of-two zoom factor, recovering digits the first solve lost.
//!
//! Exhaustion never fabricates an answer: it returns
//! [`LpError::CertificationFailed`] carrying the worst residual of the
//! best attempt. All rungs honor a shared [`SolveBudget`] (wall-clock
//! deadline + iteration allowance) checked inside both pivot loops.

use crate::error::LpError;
use crate::iis::certifies_infeasibility;
use crate::problem::{Problem, SimplexVariant};
use crate::scale::equilibrate;
use crate::solution::{Solution, Status};
use crate::verify::Certificate;
use std::time::{Duration, Instant};

/// How often (in pivots) the simplex loops consult the budget. Cheap
/// enough to be invisible, frequent enough that a deadline overshoot is
/// bounded by a few dozen pivots.
pub(crate) const BUDGET_CHECK_EVERY: usize = 64;

/// A wall-clock and iteration allowance for one or more solves.
///
/// Both limits are optional; [`SolveBudget::UNLIMITED`] (the `Default`)
/// imposes neither. The pivot loops of both simplex variants check the
/// budget every [`BUDGET_CHECK_EVERY`] iterations and abort with
/// [`LpError::Budget`] when it is exhausted, so a pathological model
/// degrades into a structured error instead of a hung process.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveBudget {
    /// Maximum total simplex iterations across the solve (`None` = no
    /// limit). This is *in addition to* the solver's built-in
    /// degeneracy-guard iteration limit.
    pub max_iterations: Option<usize>,
    /// Absolute wall-clock deadline (`None` = no limit).
    pub deadline: Option<Instant>,
}

impl SolveBudget {
    /// No limits.
    pub const UNLIMITED: SolveBudget = SolveBudget {
        max_iterations: None,
        deadline: None,
    };

    /// A budget expiring `limit` from now.
    pub fn with_time_limit(limit: Duration) -> Self {
        SolveBudget {
            max_iterations: None,
            deadline: Instant::now().checked_add(limit),
        }
    }

    /// A budget allowing at most `n` simplex iterations.
    pub fn with_max_iterations(n: usize) -> Self {
        SolveBudget {
            max_iterations: Some(n),
            deadline: None,
        }
    }

    /// Checks the budget at `iterations` pivots; `Err(LpError::Budget)`
    /// when exhausted.
    pub(crate) fn check(&self, iterations: usize) -> Result<(), LpError> {
        if let Some(limit) = self.max_iterations {
            if iterations >= limit {
                return Err(LpError::Budget {
                    iterations,
                    timed_out: false,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(LpError::Budget {
                    iterations,
                    timed_out: true,
                });
            }
        }
        Ok(())
    }
}

/// One rung of the recovery ladder, recorded in the order attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStep {
    /// Warm-started solve from a caller-supplied basis snapshot (only when
    /// [`Problem::solve_certified_from_basis`] was given one). Falls back
    /// to a cold solve internally if the snapshot does not fit.
    WarmStart(SimplexVariant),
    /// Plain solve with the requested variant.
    Initial(SimplexVariant),
    /// Re-solve with the other simplex implementation.
    AlternateVariant(SimplexVariant),
    /// Re-solve after geometric-mean row/column equilibration.
    Equilibrated(SimplexVariant),
    /// One round of iterative refinement on the best candidate point.
    Refined(SimplexVariant),
}

impl RecoveryStep {
    /// Short human-readable name (for logs and reports).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryStep::WarmStart(_) => "warm-start",
            RecoveryStep::Initial(_) => "initial",
            RecoveryStep::AlternateVariant(_) => "alternate-variant",
            RecoveryStep::Equilibrated(_) => "equilibrated",
            RecoveryStep::Refined(_) => "refined",
        }
    }
}

/// Policy for [`Problem::solve_certified`]: which variant leads, and the
/// shared budget every rung draws from.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryPolicy {
    /// The variant for the initial solve (the ladder tries the other one
    /// on failure).
    pub variant: SimplexVariant,
    /// Budget shared across all rungs. A `deadline` bounds the whole
    /// ladder; `max_iterations` bounds each individual solve.
    pub budget: SolveBudget,
    /// Pricing strategy, honored by the sparse-LU variant on every rung
    /// (the dense/revised variants ignore it).
    pub pricing: crate::Pricing,
}

impl RecoveryPolicy {
    /// Default policy with an explicit wall-clock limit for the ladder.
    pub fn with_time_limit(limit: Duration) -> Self {
        RecoveryPolicy {
            variant: SimplexVariant::default(),
            budget: SolveBudget::with_time_limit(limit),
            pricing: crate::Pricing::default(),
        }
    }
}

/// A solution whose verdict has been machine-checked against the original
/// problem, together with the provenance of how it was obtained.
#[derive(Debug, Clone)]
pub struct CertifiedSolution {
    solution: Solution,
    certificate: Option<Certificate>,
    steps: Vec<RecoveryStep>,
    iterations: usize,
    elapsed: Duration,
}

impl CertifiedSolution {
    /// The underlying solution (status, values, duals, …).
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Consumes the wrapper, returning the underlying solution.
    pub fn into_solution(self) -> Solution {
        self.solution
    }

    /// Termination status of the certified solve.
    pub fn status(&self) -> Status {
        self.solution.status()
    }

    /// The optimality certificate (`Some` exactly when the status is
    /// [`Status::Optimal`]; an infeasible verdict is certified through its
    /// Farkas vector instead).
    pub fn certificate(&self) -> Option<&Certificate> {
        self.certificate.as_ref()
    }

    /// The ladder rungs attempted, in order; the last one produced this
    /// solution. A clean first solve yields just `[Initial(_)]`.
    pub fn steps(&self) -> &[RecoveryStep] {
        &self.steps
    }

    /// Total simplex iterations consumed across all rungs.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Wall-clock time consumed by the whole ladder.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }
}

/// The alternate simplex implementation tried by the
/// [`RecoveryStep::AlternateVariant`] rung. Dense and revised cross-check
/// each other; the sparse-LU variant falls back to the revised simplex
/// (a genuinely different factorization and pricing scheme, but one that
/// is still tractable on models the sparse path was chosen for).
fn other(v: SimplexVariant) -> SimplexVariant {
    match v {
        SimplexVariant::Dense => SimplexVariant::Revised,
        SimplexVariant::Revised => SimplexVariant::Dense,
        SimplexVariant::SparseLu => SimplexVariant::Revised,
    }
}

/// One round of iterative refinement: re-solve the residual problem
/// around `candidate` at a power-of-two zoom `alpha` and combine.
///
/// The correction problem keeps `A` and `c` and shifts the data:
/// `lo' = α(lo − x̂)`, `ub' = α(ub − x̂)`, `b' = α(b − A x̂)`. Its duals
/// and reduced costs are directly valid for the original (`A`, `c`
/// unchanged; the `α` factors cancel in `∂z/∂b`), and the corrected point
/// is `x* = x̂ + δ*/α`.
fn refine(
    p: &Problem,
    candidate: &Solution,
    variant: SimplexVariant,
    budget: SolveBudget,
    pricing: crate::Pricing,
) -> Result<Solution, LpError> {
    let xh = &candidate.values;
    if xh.len() != p.vars.len() || xh.iter().any(|v| !v.is_finite()) {
        return Err(LpError::Numerical {
            context: "iterative refinement: non-finite candidate point".into(),
        });
    }
    // Zoom factor from the candidate's worst absolute residual, rounded
    // to a power of two so the shift arithmetic is exact to apply/undo.
    let cert = candidate.certify(p);
    let res = cert.worst().max(1e-15);
    let alpha = if res.is_finite() {
        (1.0 / res).log2().floor().clamp(0.0, 40.0).exp2()
    } else {
        1.0
    };

    let mut shifted = p.clone();
    for (v, &x) in shifted.vars.iter_mut().zip(xh) {
        v.lower = if v.lower.is_finite() {
            alpha * (v.lower - x)
        } else {
            v.lower
        };
        v.upper = if v.upper.is_finite() {
            alpha * (v.upper - x)
        } else {
            v.upper
        };
    }
    for r in shifted.rows.iter_mut() {
        r.rhs = alpha * (r.rhs - r.expr.eval(xh));
    }

    let delta = shifted.solve_with_options(variant, budget, pricing)?;
    if delta.status() != Status::Optimal {
        // The original was (claimed) optimal; a non-optimal correction
        // means the candidate was far off. Report rather than guess.
        return Err(LpError::NotOptimal {
            status: delta.status(),
        });
    }
    let mut out = delta.clone();
    // The correction problem's basis is for the shifted data (its RHS sign
    // normalization can differ); do not offer it as a warm-start source.
    out.basis = None;
    for (x, (&d, &xhj)) in out.values.iter_mut().zip(delta.values.iter().zip(xh)) {
        *x = xhj + d / alpha;
    }
    // duals and reduced costs carry over unchanged; recompute slacks and
    // the objective on original data.
    out.slacks = p
        .rows
        .iter()
        .map(|r| {
            let lhs = r.expr.eval(&out.values);
            match r.sense {
                crate::problem::Sense::Le | crate::problem::Sense::Eq => r.rhs - lhs,
                crate::problem::Sense::Ge => lhs - r.rhs,
            }
        })
        .collect();
    if let Some((_, obj)) = p.objective.as_ref() {
        out.objective = Some(obj.eval(&out.values));
    }
    Ok(out)
}

/// Outcome of one ladder rung: a solution to judge, or a solver error to
/// record and step past.
type RungResult = Result<Solution, LpError>;

impl Problem {
    /// Solves with every verdict machine-checked against this (original)
    /// problem, walking the recovery ladder on failure. See the
    /// [module docs](crate::recover) for the rungs and their rationale.
    ///
    /// # Errors
    ///
    /// [`LpError::Budget`] when the shared budget expires;
    /// [`LpError::CertificationFailed`] when every rung was tried and no
    /// verdict certifies; any structural error ([`LpError::EmptyModel`],
    /// …) immediately, since no amount of re-solving fixes those.
    pub fn solve_certified(&self, policy: &RecoveryPolicy) -> Result<CertifiedSolution, LpError> {
        self.solve_certified_from_basis(policy, None)
    }

    /// [`Problem::solve_certified`] with an optional warm-start basis: when
    /// `basis` is `Some`, the ladder gets a leading
    /// [`RecoveryStep::WarmStart`] rung that re-enters the snapshot via
    /// [`Problem::solve_from_basis_with_budget`]. Certification is
    /// unchanged — the warm solve's verdict is machine-checked against the
    /// raw problem data exactly like a cold one, and every later rung is
    /// cold, so a stale or corrupted snapshot can cost time but never
    /// correctness.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve_certified`].
    pub fn solve_certified_from_basis(
        &self,
        policy: &RecoveryPolicy,
        basis: Option<&crate::Basis>,
    ) -> Result<CertifiedSolution, LpError> {
        let start = Instant::now();
        let budget = policy.budget;
        let pricing = policy.pricing;
        let mut steps: Vec<RecoveryStep> = Vec::new();
        let mut iterations = 0usize;
        // Best failed certificate (for the final error) and best optimal
        // candidate (for the refinement rung).
        let mut best_cert: Option<Certificate> = None;
        let mut candidate: Option<Solution> = None;

        let alt = other(policy.variant);
        let mut rungs: Vec<RecoveryStep> = Vec::with_capacity(5);
        if basis.is_some() {
            rungs.push(RecoveryStep::WarmStart(policy.variant));
        }
        rungs.extend([
            RecoveryStep::Initial(policy.variant),
            RecoveryStep::AlternateVariant(alt),
            RecoveryStep::Equilibrated(policy.variant),
            RecoveryStep::Refined(policy.variant),
        ]);

        for rung in rungs {
            steps.push(rung);
            let attempt: RungResult = match rung {
                RecoveryStep::WarmStart(v) => {
                    let b = basis.expect("warm rung only scheduled with a basis");
                    self.solve_from_basis_with_options(v, b, budget, pricing)
                }
                RecoveryStep::Initial(v) | RecoveryStep::AlternateVariant(v) => {
                    self.solve_with_options(v, budget, pricing)
                }
                RecoveryStep::Equilibrated(v) => {
                    let (scaled, eq) = equilibrate(self);
                    scaled
                        .solve_with_options(v, budget, pricing)
                        .map(|s| eq.unscale(self, &s))
                }
                RecoveryStep::Refined(v) => match candidate.as_ref() {
                    Some(c) => refine(self, c, v, budget, pricing),
                    None => Err(LpError::Numerical {
                        context: "refinement: no optimal candidate to refine".into(),
                    }),
                },
            };

            let sol = match attempt {
                Ok(sol) => sol,
                // Budget exhaustion ends the whole ladder: later rungs
                // share the same deadline and would also run out.
                Err(e @ LpError::Budget { .. }) => return Err(e),
                // Structural errors cannot be recovered by re-solving.
                Err(
                    e @ (LpError::MissingObjective
                    | LpError::EmptyModel
                    | LpError::InvalidBounds { .. }
                    | LpError::NonFiniteInput { .. }),
                ) => return Err(e),
                // Numerical trouble: record and try the next rung.
                Err(_) => continue,
            };
            iterations += sol.iterations();

            match sol.status() {
                Status::Optimal => {
                    let cert = sol.certify(self);
                    if cert.is_valid() {
                        return Ok(CertifiedSolution {
                            solution: sol,
                            certificate: Some(cert),
                            steps,
                            iterations,
                            elapsed: start.elapsed(),
                        });
                    }
                    // Keep the best-certified candidate for refinement
                    // and the final error report.
                    let better = best_cert.as_ref().is_none_or(|b| cert.worst() < b.worst());
                    if better {
                        best_cert = Some(cert);
                        candidate = Some(sol);
                    } else if candidate.is_none() {
                        candidate = Some(sol);
                    }
                }
                Status::Infeasible => {
                    // An infeasible verdict is accepted only with a
                    // checked Farkas certificate.
                    if sol
                        .farkas()
                        .is_some_and(|y| certifies_infeasibility(self, y))
                    {
                        return Ok(CertifiedSolution {
                            solution: sol,
                            certificate: None,
                            steps,
                            iterations,
                            elapsed: start.elapsed(),
                        });
                    }
                }
                Status::Unbounded => {
                    // Unboundedness has no compact certificate here; it is
                    // a structural property (a cost ray), not a numerical
                    // one, and both variants agree on it in practice.
                    // Accept, recording the provenance.
                    return Ok(CertifiedSolution {
                        solution: sol,
                        certificate: None,
                        steps,
                        iterations,
                        elapsed: start.elapsed(),
                    });
                }
            }
        }

        let (condition, residual) = best_cert
            .as_ref()
            .map(Certificate::worst_named)
            .unwrap_or(("primal", f64::INFINITY));
        Err(LpError::CertificationFailed {
            steps: steps.len(),
            condition,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::Sense;

    fn sample() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Ge,
            4.0,
        );
        p.constrain(LinExpr::term(x, 1.0), Sense::Le, 3.0);
        p.minimize(LinExpr::term(x, 1.0) + LinExpr::term(y, 2.0));
        p
    }

    #[test]
    fn clean_solve_takes_one_step() {
        let cs = sample()
            .solve_certified(&RecoveryPolicy::default())
            .expect("certifies");
        assert_eq!(cs.status(), Status::Optimal);
        assert_eq!(cs.steps().len(), 1);
        assert!(matches!(cs.steps()[0], RecoveryStep::Initial(_)));
        assert!(cs
            .certificate()
            .expect("optimal has certificate")
            .is_valid());
        assert!(cs.iterations() > 0);
    }

    #[test]
    fn infeasible_verdict_is_farkas_checked() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(LinExpr::term(x, 1.0), Sense::Ge, 5.0);
        p.constrain(LinExpr::term(x, 1.0), Sense::Le, 1.0);
        p.minimize(LinExpr::term(x, 1.0));
        let cs = p
            .solve_certified(&RecoveryPolicy::default())
            .expect("verdict");
        assert_eq!(cs.status(), Status::Infeasible);
        assert!(cs.certificate().is_none());
    }

    #[test]
    fn badly_scaled_model_still_certifies() {
        // Mixed ps/s magnitudes: coefficients spanning 1e-6..1e9.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(
            LinExpr::term(x, 1e9) + LinExpr::term(y, 1e-6),
            Sense::Ge,
            2e9,
        );
        p.constrain(LinExpr::term(y, 1e-6), Sense::Ge, 3e-6);
        p.minimize(LinExpr::term(x, 1.0) + LinExpr::term(y, 1e-9));
        let cs = p
            .solve_certified(&RecoveryPolicy::default())
            .expect("certifies");
        assert_eq!(cs.status(), Status::Optimal);
        assert!(cs.certificate().expect("certificate").is_valid());
    }

    #[test]
    fn iteration_budget_surfaces_as_budget_error() {
        let p = sample();
        let policy = RecoveryPolicy {
            variant: SimplexVariant::Dense,
            budget: SolveBudget::with_max_iterations(0),
            ..Default::default()
        };
        match p.solve_certified(&policy) {
            Err(LpError::Budget { timed_out, .. }) => assert!(!timed_out),
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_surfaces_as_timeout() {
        let p = sample();
        let policy = RecoveryPolicy {
            variant: SimplexVariant::Dense,
            budget: SolveBudget {
                max_iterations: None,
                deadline: Some(Instant::now()),
            },
            ..Default::default()
        };
        match p.solve_certified(&policy) {
            Err(LpError::Budget { timed_out, .. }) => assert!(timed_out),
            other => panic!("expected budget timeout, got {other:?}"),
        }
    }

    #[test]
    fn refinement_recovers_a_perturbed_candidate() {
        let p = sample();
        let mut candidate = p.solve().expect("solves");
        // Knock the point slightly off-vertex, as accumulated pivot error
        // would; refinement must land back on a certified optimum.
        candidate.values[0] += 1e-4;
        candidate.values[1] -= 1e-4;
        let refined = refine(
            &p,
            &candidate,
            SimplexVariant::Dense,
            SolveBudget::UNLIMITED,
            crate::Pricing::default(),
        )
        .expect("refines");
        assert!(refined.certify(&p).is_valid(), "{}", refined.certify(&p));
    }
}
