//! Parametric right-hand-side analysis (Gass–Saaty procedure).
//!
//! The SMO paper closes (§VI) by proposing "parametric programming techniques
//! to quantify the notion of critical path segments and to study the effects
//! on the optimal cycle time of varying the circuit delays". This module
//! implements exactly that for a scalar parameter `θ` perturbing constraint
//! right-hand sides:
//!
//! > given `b(θ) = b + θ·d`, compute the optimal objective `z*(θ)` as an
//! > exact piecewise-linear function of `θ ∈ [0, θ_max]`.
//!
//! Because a combinational delay `Δ_ji` enters the relaxed propagation
//! constraint (L2R, eq. 19) only through the right-hand side, this yields the
//! exact `T_c(Δ)` curve of Fig. 7 — breakpoints included — from a single
//! solve plus a handful of dual-simplex pivots, instead of a dense sweep.
//!
//! The procedure: solve at `θ = 0`; while the optimal basis stays primal
//! feasible the objective is linear in `θ` with slope `y·d` (`y` = duals);
//! when a basic variable is driven to zero, perform a dual simplex pivot and
//! continue with the next basis.

use crate::error::LpError;
use crate::expr::VarId;
use crate::problem::{ConstraintId, Problem};
use crate::simplex::{self, ColKind};
use crate::EPS;
use serde::{Deserialize, Serialize};

/// One linear piece of a [`ParametricCurve`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParametricSegment {
    /// Segment start (inclusive).
    pub theta_lo: f64,
    /// Segment end (inclusive).
    pub theta_hi: f64,
    /// Optimal objective at `theta_lo`.
    pub objective_lo: f64,
    /// `d z*(θ) / d θ` on this segment.
    pub slope: f64,
}

impl ParametricSegment {
    /// Objective value at `theta` (which should lie within the segment;
    /// extrapolates linearly otherwise).
    pub fn objective_at(&self, theta: f64) -> f64 {
        self.objective_lo + (theta - self.theta_lo) * self.slope
    }
}

/// Exact piecewise-linear optimal objective `z*(θ)` over `θ ∈ [0, θ_max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParametricCurve {
    /// Consecutive linear pieces covering `[0, feasible end]`.
    pub segments: Vec<ParametricSegment>,
    /// If `Some(θ̄)`, the curve ends at `θ̄` because the model stops having
    /// a finite optimum beyond it: *infeasible* for RHS ranging
    /// ([`parametric_rhs`]), *unbounded below* for objective ranging
    /// ([`parametric_objective`]).
    pub infeasible_beyond: Option<f64>,
}

impl ParametricCurve {
    /// Optimal objective at `theta`, or `None` if `theta` lies outside the
    /// analysed/feasible range.
    pub fn objective_at(&self, theta: f64) -> Option<f64> {
        self.segments
            .iter()
            .find(|s| theta >= s.theta_lo - EPS && theta <= s.theta_hi + EPS)
            .map(|s| s.objective_at(theta))
    }

    /// The interior breakpoints (where the slope changes), deduplicated.
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for w in self.segments.windows(2) {
            // a breakpoint is only "real" if the slope actually changes
            let scale = w[0].slope.abs().max(w[1].slope.abs());
            if (w[0].slope - w[1].slope).abs() > crate::tol::Tol::FEAS.abs_for(scale) {
                out.push(w[0].theta_hi);
            }
        }
        out
    }

    /// End of the analysed range.
    pub fn theta_end(&self) -> f64 {
        self.segments.last().map_or(0.0, |s| s.theta_hi)
    }
}

/// Computes the exact optimal-objective curve of `p` as the right-hand sides
/// of `directions` are perturbed by `θ · coefficient`, for `θ ∈ [0, theta_max]`.
///
/// Coalesces repeated constraint ids by summing their coefficients.
///
/// # Errors
///
/// Returns an error if `p` is invalid, not optimal at `θ = 0`
/// ([`LpError::NotOptimal`]), or the pivot safeguard trips.
///
/// # Examples
///
/// ```
/// use smo_lp::{parametric_rhs, Problem, Sense};
/// # fn main() -> Result<(), smo_lp::LpError> {
/// // minimize x subject to x >= 1 + θ
/// let mut p = Problem::new();
/// let x = p.add_var("x");
/// let c = p.constrain(x.into(), Sense::Ge, 1.0);
/// p.minimize(x.into());
/// let curve = parametric_rhs(&p, &[(c, 1.0)], 10.0)?;
/// assert_eq!(curve.segments.len(), 1);
/// assert!((curve.objective_at(4.0).unwrap() - 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn parametric_rhs(
    p: &Problem,
    directions: &[(ConstraintId, f64)],
    theta_max: f64,
) -> Result<ParametricCurve, LpError> {
    p.validate()?;
    if !theta_max.is_finite() || theta_max < 0.0 {
        return Err(LpError::NonFiniteInput {
            context: "parametric theta_max".into(),
        });
    }
    let mut d = vec![0.0; p.num_constraints()];
    for &(c, coeff) in directions {
        if !coeff.is_finite() {
            return Err(LpError::NonFiniteInput {
                context: "parametric direction coefficient".into(),
            });
        }
        d[c.index()] += coeff;
    }

    let (solution, tableau) = simplex::solve_with_tableau(p, Some(&d))?;
    let mut t = tableau.ok_or(LpError::NotOptimal {
        status: solution.status(),
    })?;
    let mut objective = solution.objective().ok_or(LpError::NotOptimal {
        status: solution.status(),
    })?;

    let mut segments = Vec::new();
    let mut infeasible_beyond = None;
    let mut theta = 0.0_f64;
    let pivot_limit = 10_000 + 100 * (t.rows() + t.ncols);
    let mut pivots = 0usize;

    loop {
        // Objective slope for the current basis (user orientation).
        let slope_min: f64 = (0..t.rows())
            .map(|r| t.costs[t.basis[r]] * t.param(r))
            .sum();
        let slope = t.sense_factor * slope_min;

        // How far can θ grow before a basic variable goes negative?
        let mut theta_hi = f64::INFINITY;
        let mut leaving: Option<usize> = None;
        for r in 0..t.rows() {
            let dp = t.param(r);
            if dp < -EPS {
                let limit = (t.rhs(r) / -dp).max(theta);
                if limit < theta_hi - EPS
                    || (limit < theta_hi + EPS && leaving.is_some_and(|l| t.basis[r] < t.basis[l]))
                {
                    theta_hi = limit;
                    leaving = Some(r);
                }
            }
        }

        if theta_hi >= theta_max - EPS {
            segments.push(ParametricSegment {
                theta_lo: theta,
                theta_hi: theta_max,
                objective_lo: objective,
                slope,
            });
            break;
        }

        let Some(r) = leaving else {
            // A finite theta_hi implies some row produced it; reaching here
            // means the ratio scan saw NaN, which only non-finite data can
            // cause.
            return Err(LpError::Numerical {
                context: "parametric rhs: no leaving row for finite theta".into(),
            });
        };
        segments.push(ParametricSegment {
            theta_lo: theta,
            theta_hi,
            objective_lo: objective,
            slope,
        });
        objective += (theta_hi - theta) * slope;
        theta = theta_hi;

        // Dual simplex pivot: entering column minimizes |z_j / a_rj| over
        // eligible columns with negative row entry.
        let mut enter: Option<usize> = None;
        let mut best = f64::INFINITY;
        for j in 0..t.ncols {
            if matches!(t.col_kinds[j], ColKind::Artificial { .. }) {
                continue;
            }
            let a = t.tab[r][j];
            if a < -EPS {
                let ratio = t.z[j] / -a;
                if ratio < best - EPS || (ratio < best + EPS && enter.is_none_or(|e| j < e)) {
                    best = ratio;
                    enter = Some(j);
                }
            }
        }
        let Some(j) = enter else {
            // No entering column: the model is infeasible past this θ.
            infeasible_beyond = Some(theta);
            break;
        };
        t.pivot(r, j);
        pivots += 1;
        if pivots > pivot_limit {
            return Err(LpError::IterationLimit { limit: pivot_limit });
        }
    }

    Ok(ParametricCurve {
        segments: coalesce(segments),
        infeasible_beyond,
    })
}

/// Merges consecutive segments with equal slope and drops zero-length ones
/// (degenerate basis changes produce both).
fn coalesce(segments: Vec<ParametricSegment>) -> Vec<ParametricSegment> {
    let mut out: Vec<ParametricSegment> = Vec::with_capacity(segments.len());
    for seg in segments {
        if seg.theta_hi - seg.theta_lo <= EPS && !out.is_empty() {
            continue;
        }
        match out.last_mut() {
            Some(last)
                if crate::tol::Tol::TIGHT.eq(last.slope, seg.slope)
                    || last.theta_hi - last.theta_lo <= EPS =>
            {
                if last.theta_hi - last.theta_lo <= EPS {
                    // replace the degenerate leading piece
                    *last = seg;
                } else {
                    last.theta_hi = seg.theta_hi;
                }
            }
            _ => out.push(seg),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Sense};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    /// Brute-force cross-check: re-solve the model at `theta` with perturbed
    /// right-hand sides.
    fn resolve_at(p: &Problem, dirs: &[(ConstraintId, f64)], theta: f64) -> Option<f64> {
        let mut q = p.clone();
        for &(c, coeff) in dirs {
            let (_, _, rhs) = p.constraint(c);
            q.set_rhs(c, rhs + theta * coeff);
        }
        q.solve().unwrap().objective()
    }

    #[test]
    fn single_segment_linear_growth() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let c = p.constrain(x.into(), Sense::Ge, 1.0);
        p.minimize(x.into());
        let curve = parametric_rhs(&p, &[(c, 2.0)], 5.0).unwrap();
        assert_eq!(curve.segments.len(), 1);
        assert!(near(curve.segments[0].slope, 2.0));
        assert!(near(curve.objective_at(3.0).unwrap(), 7.0));
        assert!(curve.infeasible_beyond.is_none());
    }

    #[test]
    fn breakpoint_where_binding_set_changes() {
        // minimize x s.t. x >= 2, x >= θ  -> z*(θ) = max(2, θ):
        // slope 0 until θ = 2, slope 1 after.
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Ge, 2.0);
        let c2 = p.constrain(x.into(), Sense::Ge, 0.0);
        p.minimize(x.into());
        let curve = parametric_rhs(&p, &[(c2, 1.0)], 10.0).unwrap();
        let bps = curve.breakpoints();
        assert_eq!(bps.len(), 1, "curve: {curve:?}");
        assert!(near(bps[0], 2.0));
        assert!(near(curve.objective_at(1.0).unwrap(), 2.0));
        assert!(near(curve.objective_at(7.0).unwrap(), 7.0));
    }

    #[test]
    fn detects_infeasibility_onset() {
        // x <= 3, x >= θ: infeasible beyond θ = 3.
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Le, 3.0);
        let c = p.constrain(x.into(), Sense::Ge, 0.0);
        p.minimize(x.into());
        let curve = parametric_rhs(&p, &[(c, 1.0)], 10.0).unwrap();
        assert!(near(curve.infeasible_beyond.unwrap(), 3.0));
        assert!(near(curve.theta_end(), 3.0));
    }

    #[test]
    fn matches_brute_force_on_two_var_model() {
        // minimize 2x + y s.t. x + y >= 4 + θ, x <= 3, y <= 4 + θ/2
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let c1 = p.constrain(x + y, Sense::Ge, 4.0);
        p.constrain(x.into(), Sense::Le, 3.0);
        let c3 = p.constrain(y.into(), Sense::Le, 4.0);
        p.minimize(2.0 * x + y);
        let dirs = [(c1, 1.0), (c3, 0.5)];
        let curve = parametric_rhs(&p, &dirs, 8.0).unwrap();
        for theta in [0.0, 0.5, 1.0, 2.0, 3.3, 5.0, 7.9] {
            let direct = resolve_at(&p, &dirs, theta);
            let para = curve.objective_at(theta);
            match (direct, para) {
                (Some(a), Some(b)) => assert!(near(a, b), "theta={theta}: {a} vs {b}"),
                (None, None) => {}
                other => panic!("mismatch at theta={theta}: {other:?}"),
            }
        }
    }

    #[test]
    fn repeated_constraint_ids_coalesce() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let c = p.constrain(x.into(), Sense::Ge, 1.0);
        p.minimize(x.into());
        let curve = parametric_rhs(&p, &[(c, 1.0), (c, 1.0)], 2.0).unwrap();
        assert!(near(curve.objective_at(1.0).unwrap(), 3.0));
    }

    #[test]
    fn rejects_nonfinite_inputs() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let c = p.constrain(x.into(), Sense::Ge, 1.0);
        p.minimize(x.into());
        assert!(parametric_rhs(&p, &[(c, f64::NAN)], 1.0).is_err());
        assert!(parametric_rhs(&p, &[(c, 1.0)], f64::INFINITY).is_err());
        assert!(parametric_rhs(&p, &[(c, 1.0)], -1.0).is_err());
    }

    #[test]
    fn infeasible_base_model_is_reported() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Le, 1.0);
        let c = p.constrain(x.into(), Sense::Ge, 2.0);
        p.minimize(x.into());
        let err = parametric_rhs(&p, &[(c, 1.0)], 1.0).unwrap_err();
        assert!(matches!(err, LpError::NotOptimal { .. }));
    }
}

/// Computes the exact optimal-objective curve of `p` as the objective
/// coefficients of `directions` are perturbed by `θ · coefficient`, for
/// `θ ∈ [0, theta_max]` (Gass–Saaty cost ranging, the dual procedure to
/// [`parametric_rhs`]).
///
/// For the SMO model this answers questions like "how does the optimum
/// move if the objective trades cycle time against phase widths" — and it
/// completes the parametric toolbox the paper's §VI sketches.
///
/// # Errors
///
/// Returns an error if `p` is invalid, not optimal at `θ = 0`
/// ([`LpError::NotOptimal`]), or the pivot safeguard trips.
///
/// # Examples
///
/// ```
/// use smo_lp::{parametric_objective, Problem, Sense};
/// # fn main() -> Result<(), smo_lp::LpError> {
/// // minimize x + θ·y subject to x + y >= 4, x <= 3:
/// // θ < 1 favours y… the optimum is piecewise linear in θ.
/// let mut p = Problem::new();
/// let x = p.add_var("x");
/// let y = p.add_var("y");
/// p.constrain(x + y, Sense::Ge, 4.0);
/// p.constrain(x.into(), Sense::Le, 3.0);
/// p.minimize(x.into());
/// let curve = parametric_objective(&p, &[(y, 1.0)], 5.0)?;
/// // at θ = 0, y is free: z* = 0 (x = 0? no: x + y >= 4 with y costless →
/// // y = 4, z = 0); at θ = 2, better to use x up to 3: z = 3 + 2·1 = 5.
/// assert!((curve.objective_at(0.0).unwrap() - 0.0).abs() < 1e-9);
/// assert!((curve.objective_at(2.0).unwrap() - 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn parametric_objective(
    p: &Problem,
    directions: &[(VarId, f64)],
    theta_max: f64,
) -> Result<ParametricCurve, LpError> {
    p.validate()?;
    if !theta_max.is_finite() || theta_max < 0.0 {
        return Err(LpError::NonFiniteInput {
            context: "parametric theta_max".into(),
        });
    }
    let mut d_user = vec![0.0; p.num_vars()];
    for &(v, coeff) in directions {
        if !coeff.is_finite() {
            return Err(LpError::NonFiniteInput {
                context: "parametric direction coefficient".into(),
            });
        }
        d_user[v.index()] += coeff;
    }

    let (solution, tableau) = simplex::solve_with_tableau(p, None)?;
    let mut t = tableau.ok_or(LpError::NotOptimal {
        status: solution.status(),
    })?;
    // second reduced-cost row for the delta costs
    let d_cols = t.user_costs_to_columns(&d_user);
    t.z2 = Some(t.reduced_costs_for(&d_cols));

    let mut segments = Vec::new();
    let mut theta = 0.0_f64;
    let pivot_limit = 10_000 + 100 * (t.rows() + t.ncols);
    let mut pivots = 0usize;

    loop {
        // slope = d·x at the current optimal basis (user orientation:
        // objective value is evaluated on user variables directly).
        let values = t.user_values();
        let slope: f64 = d_user.iter().zip(&values).map(|(d, x)| d * x).sum();
        let Some((_, obj)) = p.objective.as_ref() else {
            return Err(LpError::MissingObjective);
        };
        let objective = obj.eval(&values);

        // optimality holds while z(θ) = z + θ·z2 ≥ 0 on eligible columns
        let Some(z2) = t.z2.as_ref() else {
            return Err(LpError::Numerical {
                context: "parametric cost: secondary cost row missing".into(),
            });
        };
        let mut theta_hi = f64::INFINITY;
        let mut entering: Option<usize> = None;
        for (j, &z2j) in z2.iter().enumerate().take(t.ncols) {
            if matches!(t.col_kinds[j], ColKind::Artificial { .. }) {
                continue;
            }
            if z2j < -EPS {
                let limit = (t.z[j] / -z2[j]).max(theta);
                if limit < theta_hi - EPS
                    || (limit < theta_hi + EPS && entering.is_none_or(|e| j < e))
                {
                    theta_hi = limit;
                    entering = Some(j);
                }
            }
        }

        if theta_hi >= theta_max - EPS {
            segments.push(ParametricSegment {
                theta_lo: theta,
                theta_hi: theta_max,
                // the parametrized objective at θ is (base objective at the
                // current optimal point) + θ·(d·x)
                objective_lo: objective + theta * slope,
                slope,
            });
            break;
        }

        let Some(j) = entering else {
            return Err(LpError::Numerical {
                context: "parametric cost: no entering column for finite theta".into(),
            });
        };
        segments.push(ParametricSegment {
            theta_lo: theta,
            theta_hi,
            objective_lo: objective + theta * slope,
            slope,
        });
        theta = theta_hi;

        // primal ratio test on the entering column
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..t.rows() {
            let a = t.tab[r][j];
            if a > EPS {
                let ratio = t.rhs(r) / a;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_some_and(|l| t.basis[r] < t.basis[l]));
                if better {
                    best_ratio = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(r) = leave else {
            // unbounded beyond this θ: stop the curve here
            return Ok(ParametricCurve {
                segments: coalesce(segments),
                infeasible_beyond: Some(theta),
            });
        };
        t.pivot(r, j);
        pivots += 1;
        if pivots > pivot_limit {
            return Err(LpError::IterationLimit { limit: pivot_limit });
        }
    }

    Ok(ParametricCurve {
        segments: coalesce(segments),
        infeasible_beyond: None,
    })
}

#[cfg(test)]
mod objective_tests {
    use super::*;
    use crate::{LinExpr, Problem, Sense};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    /// Re-solve with the perturbed objective for cross-checking.
    fn resolve_at(p: &Problem, dirs: &[(VarId, f64)], theta: f64) -> f64 {
        let mut q = p.clone();
        // rebuild the objective with perturbed coefficients
        let (_, base) = p.objective.as_ref().expect("set");
        let mut expr = base.clone();
        for &(v, c) in dirs {
            expr.add_term(v, theta * c);
        }
        q.minimize(expr);
        q.solve().expect("solves").objective().expect("optimal")
    }

    #[test]
    fn single_variable_cost_growth() {
        // minimize θ·x s.t. x >= 2: z(θ) = 2θ (slope 2, one segment)
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Ge, 2.0);
        p.minimize(LinExpr::constant_expr(0.0));
        let curve = parametric_objective(&p, &[(x, 1.0)], 5.0).unwrap();
        assert!(near(curve.objective_at(3.0).unwrap(), 6.0), "{curve:?}");
    }

    #[test]
    fn basis_change_creates_breakpoint() {
        // minimize x + θ·y, x + y >= 4, x <= 3: for θ < 1 use y (z = 4θ…
        // wait x is also available at cost 1): optimum mixes at vertices:
        // θ ≤ 1: all y → z = 4θ; θ ≥ 1: x = 3, y = 1 → z = 3 + θ.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x + y, Sense::Ge, 4.0);
        p.constrain(x.into(), Sense::Le, 3.0);
        p.minimize(x.into());
        let dirs = [(y, 1.0)];
        let curve = parametric_objective(&p, &dirs, 4.0).unwrap();
        let bps = curve.breakpoints();
        assert_eq!(bps.len(), 1, "{curve:?}");
        assert!(near(bps[0], 1.0));
        for theta in [0.0, 0.5, 1.0, 1.7, 3.9] {
            let direct = resolve_at(&p, &dirs, theta);
            let para = curve.objective_at(theta).unwrap();
            assert!(near(direct, para), "θ = {theta}: {para} vs {direct}");
        }
    }

    #[test]
    fn matches_brute_force_on_three_vars() {
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", 0.0, 10.0);
        let y = p.add_var_bounded("y", 0.0, 10.0);
        let z = p.add_var_bounded("z", 0.0, 10.0);
        p.constrain(x + y + z, Sense::Ge, 6.0);
        p.constrain(LinExpr::from(x) + 2.0 * y, Sense::Le, 12.0);
        p.minimize(2.0 * x + LinExpr::from(y) + 3.0 * z);
        let dirs = [(x, -0.5), (z, 1.0)];
        let curve = parametric_objective(&p, &dirs, 3.0).unwrap();
        for theta in [0.0, 0.3, 1.1, 2.2, 2.9] {
            let direct = resolve_at(&p, &dirs, theta);
            let para = curve.objective_at(theta).unwrap();
            assert!(near(direct, para), "θ = {theta}: {para} vs {direct}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Ge, 1.0);
        p.minimize(x.into());
        assert!(parametric_objective(&p, &[(x, f64::NAN)], 1.0).is_err());
        assert!(parametric_objective(&p, &[(x, 1.0)], -2.0).is_err());
    }
}
