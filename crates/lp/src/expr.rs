//! Linear expressions over problem variables.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Opaque handle to a decision variable of a [`Problem`](crate::Problem).
///
/// Obtained from [`Problem::add_var`](crate::Problem::add_var) and friends;
/// only meaningful for the problem that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based index of this variable in its owning problem.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ cᵢ·xᵢ + k`.
///
/// Built by combining [`VarId`]s with `+`, `-` and `*`:
///
/// ```
/// use smo_lp::Problem;
/// let mut p = Problem::new();
/// let x = p.add_var("x");
/// let y = p.add_var("y");
/// let e = 2.0 * x - y + 3.0;
/// assert_eq!(e.coeff(x), 2.0);
/// assert_eq!(e.coeff(y), -1.0);
/// assert_eq!(e.constant(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression (zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant_expr(k: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: k,
        }
    }

    /// A single term `c·x`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut e = LinExpr::new();
        e.add_term(var, coeff);
        e
    }

    /// Adds `coeff · var` in place, merging with any existing term.
    pub fn add_term(&mut self, var: VarId, coeff: f64) {
        let c = self.terms.entry(var).or_insert(0.0);
        *c += coeff;
        if c.abs() == 0.0 {
            self.terms.remove(&var);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, k: f64) {
        self.constant += k;
    }

    /// Coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The additive constant `k`.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates over the `(variable, coefficient)` terms in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of variables with non-zero coefficient.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the expression has no variable terms (it may still have a
    /// non-zero constant).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression at a point given by a value-per-variable
    /// lookup.
    ///
    /// `values[i]` must be the value of the variable with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if some term's variable index is out of range for `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.0]).sum::<f64>()
    }

    /// `true` if every coefficient and the constant are finite.
    pub fn is_finite(&self) -> bool {
        self.constant.is_finite() && self.terms.values().all(|c| c.is_finite())
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if c < &0.0 {
                    write!(f, "-")?;
                }
                first = false;
            } else if c < &0.0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let a = c.abs();
            if (a - 1.0).abs() > f64::EPSILON {
                write!(f, "{a}·")?;
            }
            write!(f, "{v}")?;
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0.0 {
            if self.constant < 0.0 {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

// ---- operator overloads -------------------------------------------------

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        self.terms.retain(|_, c| {
            *c *= k;
            *c != 0.0
        });
        self.constant *= k;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e * self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, k: f64) -> LinExpr {
        self.constant += k;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, k: f64) -> LinExpr {
        self.constant -= k;
        self
    }
}

impl Add<VarId> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, v: VarId) -> LinExpr {
        self.add_term(v, 1.0);
        self
    }
}

impl Sub<VarId> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, v: VarId) -> LinExpr {
        self.add_term(v, -1.0);
        self
    }
}

impl Add<VarId> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: VarId) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Sub<VarId> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: VarId) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Add<f64> for VarId {
    type Output = LinExpr;
    fn add(self, k: f64) -> LinExpr {
        LinExpr::from(self) + k
    }
}

impl Sub<f64> for VarId {
    type Output = LinExpr;
    fn sub(self, k: f64) -> LinExpr {
        LinExpr::from(self) - k
    }
}

impl Mul<VarId> for f64 {
    type Output = LinExpr;
    fn mul(self, v: VarId) -> LinExpr {
        LinExpr::term(v, self)
    }
}

impl Neg for VarId {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr::term(self, -1.0)
    }
}

impl Add<LinExpr> for VarId {
    type Output = LinExpr;
    fn add(self, e: LinExpr) -> LinExpr {
        e + self
    }
}

impl Sub<LinExpr> for VarId {
    type Output = LinExpr;
    fn sub(self, e: LinExpr) -> LinExpr {
        LinExpr::from(self) - e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn term_merging_cancels_to_zero() {
        let e = LinExpr::term(v(0), 2.0) + LinExpr::term(v(0), -2.0);
        assert!(e.is_empty());
        assert_eq!(e.coeff(v(0)), 0.0);
    }

    #[test]
    fn arithmetic_composes() {
        let e = 2.0 * v(0) - v(1) + 3.0;
        assert_eq!(e.coeff(v(0)), 2.0);
        assert_eq!(e.coeff(v(1)), -1.0);
        assert_eq!(e.constant(), 3.0);
        let d = e.clone() * -1.0;
        assert_eq!(d.coeff(v(0)), -2.0);
        assert_eq!(d.constant(), -3.0);
        let s = e - d;
        assert_eq!(s.coeff(v(0)), 4.0);
        assert_eq!(s.constant(), 6.0);
    }

    #[test]
    fn var_minus_var_builds_expr() {
        let e = v(3) - v(5);
        assert_eq!(e.coeff(v(3)), 1.0);
        assert_eq!(e.coeff(v(5)), -1.0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn eval_uses_values_by_index() {
        let e = 2.0 * v(0) + v(2) - 1.0;
        let vals = [1.0, 100.0, 3.0];
        assert_eq!(e.eval(&vals), 2.0 + 3.0 - 1.0);
    }

    #[test]
    fn display_is_readable() {
        let e = 2.0 * v(0) - v(1) + 3.0;
        assert_eq!(format!("{e}"), "2·x0 - x1 + 3");
        let z = LinExpr::new();
        assert_eq!(format!("{z}"), "0");
        let neg_first = -v(1) + 0.5;
        assert_eq!(format!("{neg_first}"), "-x1 + 0.5");
    }

    #[test]
    fn finite_check_rejects_nan() {
        let mut e = LinExpr::term(v(0), f64::NAN);
        assert!(!e.is_finite());
        e = LinExpr::term(v(0), 1.0) + f64::INFINITY;
        assert!(!e.is_finite());
        assert!((2.0 * v(1) + 1.0).is_finite());
    }
}
