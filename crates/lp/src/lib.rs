//! # smo-lp — a dense simplex linear-programming solver
//!
//! This crate is the linear-programming substrate of the SMO latch-timing
//! reproduction. The paper's initial implementation used "a dense-matrix LP
//! solver which implements the standard simplex algorithm" (§V); this crate is
//! exactly that, built from scratch:
//!
//! * a [`Problem`] builder with named variables, bounds, and linear
//!   constraints in `≤` / `≥` / `=` form ([`Sense`]),
//! * a two-phase primal simplex with Dantzig pricing and Bland anti-cycling
//!   fallback ([`Problem::solve`]),
//! * dual values, reduced costs, and slacks on the returned [`Solution`]
//!   (used by the timing engine for critical-segment analysis),
//! * parametric right-hand-side analysis ([`parametric_rhs`])
//!   implementing the paper's §VI "parametric programming" direction — it
//!   returns the exact breakpoints of the optimal objective as a piecewise
//!   linear function of a scalar parameter (this regenerates Fig. 7's
//!   breakpoints without sweeping),
//! * infeasibility diagnosis: infeasible solves carry a Farkas certificate
//!   ([`Solution::farkas`]) and [`extract_iis`] reduces the conflict to an
//!   irreducible infeasible subsystem of named rows,
//! * a presolve layer ([`Problem::presolve`] /
//!   [`Problem::solve_with_presolve`]) that folds singleton rows into bounds,
//!   fixes pinned variables and removes redundant or dominated rows before
//!   the simplex runs, returning a [`Presolved`] bundle whose postsolve map
//!   reconstructs the full primal/dual solution on the original rows,
//! * independent optimality checking ([`Solution::certify`] returning a
//!   [`Certificate`] of KKT residuals) and certified solving with a
//!   numerical recovery ladder ([`Problem::solve_certified`]): alternate
//!   simplex variant, geometric-mean equilibration, and one round of
//!   iterative refinement, all verified against the *original* problem,
//! * solve budgets ([`SolveBudget`]): wall-clock deadlines and iteration
//!   allowances enforced inside both simplex pivot loops,
//! * basis warm-starting ([`Basis`], [`Problem::solve_from_basis`]): every
//!   optimal solve snapshots its basis, and sweep-style workloads re-enter
//!   it with a bounded dual/primal repair instead of a fresh phase 1 —
//!   falling back to the cold path whenever the snapshot no longer fits,
//! * a difference-constraint fast path ([`classify`], [`DifferenceSystem`]):
//!   rows recognized as two-variable differences `x_i − x_j ≤ base + slope·λ`
//!   solve by Bellman–Ford feasibility and Lawler's exact min-cycle-ratio
//!   iteration instead of the simplex, with negative-cycle infeasibility
//!   certificates that [`certifies_infeasibility`] checks exactly like an LP
//!   Farkas vector, and a crossover ([`Problem::basis_from_point`]) that
//!   turns a graph schedule into a warm-start basis for mixed systems.
//!
//! The SMO constraint matrices contain only `0, ±1` entries (§VI), so a dense
//! f64 tableau with modest tolerances ([`EPS`]) is numerically comfortable.
//!
//! ## Example
//!
//! ```
//! use smo_lp::{Problem, Sense};
//!
//! # fn main() -> Result<(), smo_lp::LpError> {
//! // minimize x2 subject to x1 >= 2, x1 >= x2, x1 <= 4, x2 <= 2, x2 >= 1
//! let mut p = Problem::new();
//! let x1 = p.add_var("x1");
//! let x2 = p.add_var("x2");
//! p.constrain(x1.into(), Sense::Ge, 2.0);
//! p.constrain(x1 - x2, Sense::Ge, 0.0);
//! p.constrain(x1.into(), Sense::Le, 4.0);
//! p.constrain(x2.into(), Sense::Le, 2.0);
//! p.constrain(x2.into(), Sense::Ge, 1.0);
//! p.minimize(x2.into());
//! let sol = p.solve()?.into_optimal()?;
//! assert!((sol.objective() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
mod error;
mod export;
mod expr;
mod graph;
mod hypersparse;
mod iis;
mod parametric;
mod presolve;
mod pricing;
mod problem;
mod recover;
mod revised;
mod scale;
mod simplex;
mod solution;
mod sparse;
mod tol;
mod verify;

pub use basis::Basis;
pub use error::LpError;
pub use export::write_lp;
pub use expr::{LinExpr, VarId};
pub use graph::{
    classify, AffineBound, Classification, DifferenceSystem, FixedParamOutcome, GraphInfeasibility,
    MinParamOutcome, NegativeCycle, ParamLowerWitness, RowClass, VarImage,
};
pub use hypersparse::{LuWorkspace, ScatterVec};
pub use iis::{certifies_infeasibility, extract_iis, Iis};
pub use parametric::{parametric_objective, parametric_rhs, ParametricCurve, ParametricSegment};
pub use presolve::{PresolveOptions, PresolveStats, Presolved, RowFate, VarFate};
pub use pricing::Pricing;
pub use problem::{ConstraintId, Objective, Problem, Sense, SimplexVariant};
pub use recover::{CertifiedSolution, RecoveryPolicy, RecoveryStep, SolveBudget};
pub use solution::{OptimalSolution, Solution, SolveStats, Status};
pub use sparse::LuFactors;
pub use tol::Tol;
pub use verify::Certificate;

/// Absolute tolerance used throughout the solver for feasibility, pivot
/// eligibility and optimality tests.
///
/// The SMO constraint matrices are `0, ±1` valued, so this comfortable
/// tolerance does not mask genuine degeneracy.
pub const EPS: f64 = 1e-9;
