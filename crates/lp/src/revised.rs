//! Sparse revised simplex with a product-form inverse.
//!
//! The SMO paper closes by observing that "the entries of the constraint
//! matrix for this problem are exclusively topological (i.e., 0, ±1)" and
//! that algorithms "potentially more efficient than the simplex algorithm"
//! — meaning: than the dense tableau of their prototype — are worth
//! pursuing (§VI). This module is that pursuit: the same two-phase method
//! as [`crate::simplex`], but
//!
//! * the constraint matrix is stored as **sparse columns** (timing models
//!   have 2–6 nonzeros per column),
//! * the basis inverse is maintained as a periodically refactorized dense
//!   `B⁻¹` plus a short **eta file** (product form), so one iteration costs
//!   `O(m·(#etas + nnz))` instead of the dense tableau's `O(m·n)`,
//! * pricing computes reduced costs from the BTRAN dual vector against the
//!   sparse columns.
//!
//! Results are bit-for-bit interchangeable with the dense path at the
//! `Solution` level (same statuses, same optima, same duals up to
//! degeneracy), which is property-tested in `tests/` and benchmarked in
//! `crates/bench/benches/lp_solve.rs` — the "dense vs revised" ablation
//! called out in DESIGN.md.

// Index-heavy linear algebra: range loops are the clearest form here.
#![allow(clippy::needless_range_loop)]

use crate::basis::Basis;
use crate::error::LpError;
use crate::problem::Problem;
use crate::simplex::{ColKind, Tableau};
use crate::solution::{Solution, Status};
use crate::EPS;
use std::sync::Arc;

/// Refactorize `B⁻¹` from scratch after this many eta factors.
///
/// The initial basis is the identity (slacks/artificials), so `B⁻¹` is kept
/// as `None` (implicit identity) until the first refactorization; a long
/// eta file applied to the identity is cheaper than repeatedly inverting a
/// dense basis, so the interval is generous.
const REFACTOR_EVERY: usize = 400;

/// A sparse column: sorted `(row, value)` pairs.
type SparseCol = Vec<(usize, f64)>;

struct RevisedCore {
    m: usize,
    ncols: usize,
    cols: Vec<SparseCol>,
    rhs: Vec<f64>,
    costs: Vec<f64>,
    col_kinds: Vec<ColKind>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// dense inverse of the basis at the last refactorization
    /// (`None` = identity, the state before any refactorization). Behind
    /// an `Arc` so a warm start can adopt a snapshot's cached
    /// factorization — shared across every solve and thread warm-starting
    /// from the same basis — without copying the matrix; refactorization
    /// always installs a fresh allocation, never mutates a shared one.
    binv: Option<Arc<Vec<Vec<f64>>>>,
    /// eta factors applied after `binv`: (pivot row, direction d = B⁻¹ a_q)
    etas: Vec<(usize, Vec<f64>)>,
    /// current basic values x_B (kept in step with the basis)
    xb: Vec<f64>,
    iterations: usize,
    /// eta-file length that triggers refactorization
    refactor_every: usize,
    /// caller-supplied budget, consulted inside the pivot loop every
    /// [`crate::recover::BUDGET_CHECK_EVERY`] pivots
    budget: crate::recover::SolveBudget,
    /// phase-1 duals per standard row, captured at infeasible termination
    /// (a Farkas certificate before row-flip unmapping)
    farkas_y: Option<Vec<f64>>,
}

impl RevisedCore {
    fn from_tableau(t: &Tableau) -> Self {
        let m = t.rows();
        let ncols = t.ncols;
        let mut cols: Vec<SparseCol> = vec![Vec::new(); ncols];
        for r in 0..m {
            for (j, col) in cols.iter_mut().enumerate() {
                let v = t.tab[r][j];
                if v != 0.0 {
                    col.push((r, v));
                }
            }
        }
        let rhs: Vec<f64> = (0..m).map(|r| t.rhs(r)).collect();
        let mut in_basis = vec![false; ncols];
        for &b in &t.basis {
            in_basis[b] = true;
        }
        let binv = None;
        let xb = rhs.clone();
        RevisedCore {
            m,
            ncols,
            cols,
            rhs,
            costs: t.costs.clone(),
            col_kinds: t.col_kinds.clone(),
            basis: t.basis.clone(),
            in_basis,
            binv,
            etas: Vec::new(),
            xb,
            iterations: 0,
            refactor_every: REFACTOR_EVERY,
            budget: crate::recover::SolveBudget::UNLIMITED,
            farkas_y: None,
        }
    }

    /// `x ← B⁻¹ v` (FTRAN).
    fn ftran(&self, v: &[f64]) -> Vec<f64> {
        let mut x = match &self.binv {
            Some(binv) => mat_vec(binv, v),
            None => v.to_vec(),
        };
        for (r, d) in &self.etas {
            let xr = x[*r] / d[*r];
            for (i, xi) in x.iter_mut().enumerate() {
                if i != *r {
                    *xi -= d[i] * xr;
                }
            }
            x[*r] = xr;
        }
        x
    }

    /// `y ← cᵀ B⁻¹` (BTRAN), where `c` has one entry per basic position.
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let mut y = c.to_vec();
        for (r, d) in self.etas.iter().rev() {
            let mut t = y[*r];
            for (i, yi) in y.iter().enumerate() {
                if i != *r {
                    t -= yi * d[i];
                }
            }
            y[*r] = t / d[*r];
        }
        // y ← yᵀ · binv
        let Some(binv) = &self.binv else {
            return y;
        };
        let mut out = vec![0.0; self.m];
        for (i, yi) in y.iter().enumerate() {
            if *yi != 0.0 {
                for (j, o) in out.iter_mut().enumerate() {
                    *o += yi * binv[i][j];
                }
            }
        }
        out
    }

    fn sparse_dot(&self, y: &[f64], j: usize) -> f64 {
        self.cols[j].iter().map(|&(r, v)| y[r] * v).sum()
    }

    /// Rebuilds `binv` by Gauss–Jordan on the current basis matrix and
    /// clears the eta file.
    ///
    /// Returns `Err` on a numerically singular basis (should not happen:
    /// simplex bases are nonsingular by construction).
    fn refactorize(&mut self) -> Result<(), LpError> {
        let m = self.m;
        let mut a = vec![vec![0.0; m]; m]; // basis matrix
        for (pos, &j) in self.basis.iter().enumerate() {
            for &(r, v) in &self.cols[j] {
                a[r][pos] = v;
            }
        }
        let mut inv = identity(m);
        for col in 0..m {
            // partial pivoting (total_cmp: NaN sorts high, caught by the
            // singularity check below rather than a panic)
            let piv_row = (col..m)
                .max_by(|&x, &y| a[x][col].abs().total_cmp(&a[y][col].abs()))
                .unwrap_or(col);
            if a[piv_row][col].abs() < 1e-12 {
                return Err(LpError::Numerical {
                    context: "basis refactorization (singular basis)".into(),
                });
            }
            a.swap(col, piv_row);
            inv.swap(col, piv_row);
            let p = a[col][col];
            for j in 0..m {
                a[col][j] /= p;
                inv[col][j] /= p;
            }
            for r in 0..m {
                if r != col {
                    let f = a[r][col];
                    if f != 0.0 {
                        for j in 0..m {
                            let (av, iv) = (a[col][j], inv[col][j]);
                            a[r][j] -= f * av;
                            inv[r][j] -= f * iv;
                        }
                    }
                }
            }
        }
        self.binv = Some(Arc::new(inv));
        self.etas.clear();
        self.xb = self.ftran(&self.rhs.clone());
        Ok(())
    }

    /// One simplex phase for the given cost vector (minimize orientation).
    /// Returns `Ok(true)` at optimality, `Ok(false)` if unbounded.
    fn phase(
        &mut self,
        costs: &[f64],
        allow_artificial: bool,
        limit: usize,
    ) -> Result<bool, LpError> {
        let bland_after = self.iterations + 10 * (self.m + self.ncols);
        loop {
            if self.iterations > limit {
                return Err(LpError::IterationLimit { limit });
            }
            if self
                .iterations
                .is_multiple_of(crate::recover::BUDGET_CHECK_EVERY)
            {
                self.budget.check(self.iterations)?;
            }
            let bland = self.iterations > bland_after;
            // duals for the current basis
            let cb: Vec<f64> = self.basis.iter().map(|&j| costs[j]).collect();
            let y = self.btran(&cb);
            // pricing
            let mut enter = None;
            let mut best = -EPS;
            for j in 0..self.ncols {
                if self.in_basis[j] {
                    continue;
                }
                if !allow_artificial && matches!(self.col_kinds[j], ColKind::Artificial { .. }) {
                    continue;
                }
                let zj = costs[j] - self.sparse_dot(&y, j);
                if zj < -EPS {
                    if bland {
                        enter = Some(j);
                        break;
                    }
                    if zj < best {
                        best = zj;
                        enter = Some(j);
                    }
                }
            }
            let Some(q) = enter else { return Ok(true) };

            // direction and ratio test
            let aq: Vec<f64> = {
                let mut dense = vec![0.0; self.m];
                for &(r, v) in &self.cols[q] {
                    dense[r] = v;
                }
                dense
            };
            let d = self.ftran(&aq);
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                if d[r] > EPS {
                    let ratio = self.xb[r] / d[r];
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(r) = leave else { return Ok(false) };

            // pivot: update basis, xb, eta file
            let theta = self.xb[r] / d[r];
            for i in 0..self.m {
                if i != r {
                    self.xb[i] -= theta * d[i];
                    if self.xb[i] < 0.0 && self.xb[i] > -1e-10 {
                        self.xb[i] = 0.0;
                    }
                }
            }
            self.xb[r] = if theta < 0.0 && theta > -1e-10 {
                0.0
            } else {
                theta
            };
            self.in_basis[self.basis[r]] = false;
            self.in_basis[q] = true;
            self.basis[r] = q;
            self.etas.push((r, d));
            self.iterations += 1;
            if self.etas.len() >= self.refactor_every {
                self.refactorize()?;
            }
        }
    }

    fn artificial_infeasibility(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .filter(|(&j, _)| matches!(self.col_kinds[j], ColKind::Artificial { .. }))
            .map(|(_, &x)| x)
            .sum()
    }

    fn optimize(&mut self) -> Result<Status, LpError> {
        let limit = 50_000 + 200 * (self.m + self.ncols);
        let has_art = self
            .col_kinds
            .iter()
            .any(|k| matches!(k, ColKind::Artificial { .. }));
        if has_art {
            let phase1: Vec<f64> = self
                .col_kinds
                .iter()
                .map(|k| {
                    if matches!(k, ColKind::Artificial { .. }) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let optimal = self.phase(&phase1, true, limit)?;
            debug_assert!(optimal, "phase 1 is bounded below");
            if self.artificial_infeasibility() > 1e-7 {
                // Capture the phase-1 duals y = c_B·B⁻¹ (a Farkas
                // certificate) before the basis is touched further.
                let cb1: Vec<f64> = self.basis.iter().map(|&j| phase1[j]).collect();
                self.farkas_y = Some(self.btran(&cb1));
                return Ok(Status::Infeasible);
            }
            // Drive basic artificials out where possible (mirrors the dense
            // path). An artificial stuck on an all-zero row stays basic at
            // zero and is harmless.
            for r in 0..self.m {
                if matches!(self.col_kinds[self.basis[r]], ColKind::Artificial { .. }) {
                    let er: Vec<f64> = (0..self.m).map(|i| f64::from(u8::from(i == r))).collect();
                    let row = self.btran(&er); // r-th row of B⁻¹
                                               // Try every eligible column until one has a usable pivot
                                               // in this row (the BTRAN screen can pass columns whose
                                               // FTRAN pivot is numerically tiny).
                    for q in 0..self.ncols {
                        if self.in_basis[q]
                            || matches!(self.col_kinds[q], ColKind::Artificial { .. })
                            || self.sparse_dot(&row, q).abs() <= EPS
                        {
                            continue;
                        }
                        let aq: Vec<f64> = {
                            let mut dense = vec![0.0; self.m];
                            for &(rr, v) in &self.cols[q] {
                                dense[rr] = v;
                            }
                            dense
                        };
                        let d = self.ftran(&aq);
                        if d[r].abs() > EPS {
                            self.in_basis[self.basis[r]] = false;
                            self.in_basis[q] = true;
                            self.basis[r] = q;
                            self.etas.push((r, d));
                            self.refactorize()?;
                            break;
                        }
                    }
                }
            }
        }
        let phase2 = self.costs.clone();
        let optimal = self.phase(&phase2, false, limit)?;
        Ok(if optimal {
            Status::Optimal
        } else {
            Status::Unbounded
        })
    }
}

fn identity(m: usize) -> Vec<Vec<f64>> {
    (0..m)
        .map(|i| (0..m).map(|j| f64::from(u8::from(i == j))).collect())
        .collect()
}

fn mat_vec(a: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| row.iter().zip(v).map(|(x, y)| x * y).sum())
        .collect()
}

/// Entry point used by [`Problem::solve_with_budget`].
pub(crate) fn solve_budgeted(
    p: &Problem,
    budget: crate::recover::SolveBudget,
) -> Result<Solution, LpError> {
    solve_inner(p, REFACTOR_EVERY, budget)
}

/// [`solve_budgeted`] with an explicit refactorization interval (exposed
/// for tests exercising the refactorization path).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn solve_with_refactor_interval(
    p: &Problem,
    refactor_every: usize,
) -> Result<Solution, LpError> {
    solve_inner(p, refactor_every, crate::recover::SolveBudget::UNLIMITED)
}

fn solve_inner(
    p: &Problem,
    refactor_every: usize,
    budget: crate::recover::SolveBudget,
) -> Result<Solution, LpError> {
    let skeleton = Tableau::build(p, None)?;
    let mut core = RevisedCore::from_tableau(&skeleton);
    core.refactor_every = refactor_every.max(1);
    core.budget = budget;
    let status = core.optimize()?;
    if status != Status::Optimal {
        let farkas = core
            .farkas_y
            .take()
            .map(|y| skeleton.map_feasibility_duals(&y));
        return Ok(Solution {
            status,
            objective: None,
            values: vec![],
            duals: vec![],
            reduced_costs: vec![],
            slacks: vec![],
            iterations: core.iterations,
            farkas,
            basis: None,
            stats: None,
        });
    }
    package_optimal(p, &skeleton, &core)
}

/// Packages an optimal [`RevisedCore`] as a [`Solution`], including the
/// basis snapshot; when the core happens to hold a clean factorization
/// (fresh refactorize, empty eta file), it is seeded into the snapshot's
/// factor cache for free.
fn package_optimal(
    p: &Problem,
    skeleton: &Tableau,
    core: &RevisedCore,
) -> Result<Solution, LpError> {
    // primal values
    let mut col_values = vec![0.0; core.ncols];
    for (r, &j) in core.basis.iter().enumerate() {
        col_values[j] = core.xb[r].max(0.0);
    }
    let values = skeleton.user_values_from(&col_values);
    // duals and reduced costs from the final basis
    let cb: Vec<f64> = core.basis.iter().map(|&j| core.costs[j]).collect();
    let y = core.btran(&cb);
    let duals = skeleton.map_duals(&y);
    let z: Vec<f64> = (0..core.ncols)
        .map(|j| core.costs[j] - core.sparse_dot(&y, j))
        .collect();
    let reduced_costs = skeleton.map_reduced_costs(&z);
    let Some((_, obj_expr)) = p.objective.as_ref() else {
        return Err(LpError::MissingObjective);
    };
    let objective = obj_expr.eval(&values);
    let slacks = p
        .rows
        .iter()
        .map(|r| {
            let lhs = r.expr.eval(&values);
            match r.sense {
                crate::Sense::Le | crate::Sense::Eq => r.rhs - lhs,
                crate::Sense::Ge => lhs - r.rhs,
            }
        })
        .collect();
    let snapshot = skeleton.capture_basis_from(&core.basis);
    if core.etas.is_empty() {
        if let Some(binv) = &core.binv {
            let _ = snapshot.factor.set(binv.clone());
        }
    }
    Ok(Solution {
        status: Status::Optimal,
        objective: Some(objective),
        values,
        duals,
        reduced_costs,
        slacks,
        iterations: core.iterations,
        farkas: None,
        basis: Some(snapshot),
        stats: None,
    })
}

/// Feasibility tolerance for warm-start repair decisions (matches the
/// dense path's `WARM_FEAS`).
const WARM_FEAS: f64 = 1e-7;

/// Revised dual simplex on the current basis: restores `x_B ≥ 0` while
/// preserving dual feasibility. Bounded by `max_pivots`; `Ok(false)` means
/// "give up and fall back cold" (primal infeasibility detected, budget
/// spent, or numerics disagree between BTRAN and FTRAN).
fn dual_simplex(core: &mut RevisedCore, costs: &[f64]) -> Result<bool, LpError> {
    let max_pivots = 2 * (core.m + core.ncols);
    let mut pivots = 0usize;
    loop {
        // Leaving row: most negative basic value.
        let mut leave = None;
        let mut most = -WARM_FEAS;
        for (r, &x) in core.xb.iter().enumerate() {
            if x < most {
                most = x;
                leave = Some(r);
            }
        }
        let Some(r) = leave else {
            return Ok(true);
        };
        if pivots >= max_pivots {
            return Ok(false);
        }
        if pivots.is_multiple_of(crate::recover::BUDGET_CHECK_EVERY) {
            core.budget.check(core.iterations)?;
        }
        // Row r of B⁻¹ (for the alphas) and the duals (for the ratios).
        let er: Vec<f64> = (0..core.m).map(|i| f64::from(u8::from(i == r))).collect();
        let row = core.btran(&er);
        let cb: Vec<f64> = core.basis.iter().map(|&j| costs[j]).collect();
        let y = core.btran(&cb);
        let mut enter = None;
        let mut best = f64::INFINITY;
        for j in 0..core.ncols {
            if core.in_basis[j] || matches!(core.col_kinds[j], ColKind::Artificial { .. }) {
                continue;
            }
            let alpha = core.sparse_dot(&row, j);
            if alpha < -EPS {
                let zj = (costs[j] - core.sparse_dot(&y, j)).max(0.0);
                let ratio = zj / -alpha;
                if ratio < best {
                    best = ratio;
                    enter = Some(j);
                }
            }
        }
        let Some(q) = enter else {
            return Ok(false); // primal infeasible: certify via cold phase 1
        };
        let aq: Vec<f64> = {
            let mut dense = vec![0.0; core.m];
            for &(rr, v) in &core.cols[q] {
                dense[rr] = v;
            }
            dense
        };
        let d = core.ftran(&aq);
        if d[r].abs() <= EPS {
            return Ok(false); // BTRAN screen passed but FTRAN pivot is tiny
        }
        let theta = core.xb[r] / d[r];
        for i in 0..core.m {
            if i != r {
                core.xb[i] -= theta * d[i];
                if core.xb[i] < 0.0 && core.xb[i] > -1e-10 {
                    core.xb[i] = 0.0;
                }
            }
        }
        core.xb[r] = theta;
        core.in_basis[core.basis[r]] = false;
        core.in_basis[q] = true;
        core.basis[r] = q;
        core.etas.push((r, d));
        core.iterations += 1;
        pivots += 1;
        if core.etas.len() >= core.refactor_every && core.refactorize().is_err() {
            return Ok(false);
        }
    }
}

/// Installs `basis` into `core` and repairs it to optimality without a
/// phase 1. Returns `Ok(false)` for any condition that should fall back to
/// the cold path; only [`LpError::Budget`] propagates.
fn warm_optimize(
    core: &mut RevisedCore,
    skeleton: &Tableau,
    basis: &Basis,
) -> Result<bool, LpError> {
    let Some(targets) = skeleton.basis_columns(basis) else {
        return Ok(false);
    };

    // --- install: adopt the snapshot basis and get B⁻¹ -----------------
    core.basis = targets;
    core.in_basis = vec![false; core.ncols];
    for &j in &core.basis {
        core.in_basis[j] = true;
    }
    core.etas.clear();
    let cached = (skeleton.matrix_hash == basis.matrix_hash)
        .then(|| basis.factor.get().cloned())
        .flatten();
    if let Some(factor) = cached {
        // Same matrix ⇒ the snapshot's factorization is this basis's B⁻¹.
        // Adopted by reference: no copy, and safe to share across threads
        // because refactorization replaces rather than mutates it.
        core.binv = Some(factor);
        let rhs = core.rhs.clone();
        core.xb = core.ftran(&rhs);
    } else {
        if core.refactorize().is_err() {
            return Ok(false); // snapshot basis singular for this matrix
        }
        if skeleton.matrix_hash == basis.matrix_hash {
            if let Some(binv) = &core.binv {
                let _ = basis.factor.set(binv.clone());
            }
        }
    }

    // --- classify the starting point ------------------------------------
    let costs = core.costs.clone();
    let primal_ok = core.xb.iter().all(|&x| x >= -WARM_FEAS);
    if !primal_ok {
        let cb: Vec<f64> = core.basis.iter().map(|&j| costs[j]).collect();
        let y = core.btran(&cb);
        let dual_ok = (0..core.ncols).all(|j| {
            core.in_basis[j]
                || matches!(core.col_kinds[j], ColKind::Artificial { .. })
                || costs[j] - core.sparse_dot(&y, j) >= -WARM_FEAS
        });
        if !dual_ok {
            return Ok(false);
        }
        if !dual_simplex(core, &costs)? {
            return Ok(false);
        }
    }
    for x in &mut core.xb {
        if (-WARM_FEAS..0.0).contains(x) {
            *x = 0.0;
        }
    }
    // A warm path must never claim infeasibility.
    if core.artificial_infeasibility() > WARM_FEAS {
        return Ok(false);
    }

    // --- primal cleanup (phase 2 from the repaired basis) ---------------
    let limit = 50_000 + 200 * (core.m + core.ncols);
    match core.phase(&costs, false, limit) {
        Ok(true) => {}
        Ok(false) => return Ok(false), // suspicious unbounded: verify cold
        Err(e @ LpError::Budget { .. }) => return Err(e),
        Err(_) => return Ok(false),
    }
    if core.artificial_infeasibility() > WARM_FEAS {
        return Ok(false);
    }
    Ok(true)
}

/// Entry point used by [`Problem::solve_from_basis_with_budget`]: solve
/// warm from `basis` with the revised simplex, falling back to the cold
/// two-phase path whenever the snapshot cannot be installed and repaired
/// cleanly.
pub(crate) fn solve_from_basis_budgeted(
    p: &Problem,
    basis: &Basis,
    budget: crate::recover::SolveBudget,
) -> Result<Solution, LpError> {
    let skeleton = Tableau::build(p, None)?;
    let mut core = RevisedCore::from_tableau(&skeleton);
    core.budget = budget;
    if warm_optimize(&mut core, &skeleton, basis)? {
        package_optimal(p, &skeleton, &core)
    } else {
        solve_inner(p, REFACTOR_EVERY, budget)
    }
}

#[cfg(test)]
mod tests {
    use crate::{LinExpr, Problem, Sense, SimplexVariant, Status};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    fn both(p: &Problem) -> (crate::Solution, crate::Solution) {
        let dense = p.solve().expect("dense solves");
        let revised = p
            .solve_with(SimplexVariant::Revised)
            .expect("revised solves");
        (dense, revised)
    }

    #[test]
    fn agrees_on_textbook_max() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.constrain(x.into(), Sense::Le, 4.0);
        p.constrain(2.0 * y, Sense::Le, 12.0);
        p.constrain(3.0 * x + 2.0 * y, Sense::Le, 18.0);
        p.maximize(3.0 * x + 5.0 * y);
        let (d, r) = both(&p);
        assert!(near(d.objective().unwrap(), r.objective().unwrap()));
        assert!(near(r.objective().unwrap(), 36.0));
    }

    #[test]
    fn agrees_on_infeasible_and_unbounded() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Le, 1.0);
        p.constrain(x.into(), Sense::Ge, 2.0);
        p.minimize(x.into());
        assert_eq!(
            p.solve_with(SimplexVariant::Revised).unwrap().status(),
            Status::Infeasible
        );

        let mut p = Problem::new();
        let x = p.add_var("x");
        p.constrain(x.into(), Sense::Ge, 1.0);
        p.maximize(x.into());
        assert_eq!(
            p.solve_with(SimplexVariant::Revised).unwrap().status(),
            Status::Unbounded
        );
    }

    #[test]
    fn agrees_on_equalities_and_free_vars() {
        let mut p = Problem::new();
        let x = p.add_free_var("x");
        let t = p.add_var("t");
        p.constrain(LinExpr::from(t) - x, Sense::Ge, -3.0);
        p.constrain(LinExpr::from(t) + x, Sense::Ge, 3.0);
        p.constrain(x.into(), Sense::Eq, 5.0);
        p.minimize(t.into());
        let (d, r) = both(&p);
        assert!(near(d.objective().unwrap(), r.objective().unwrap()));
    }

    #[test]
    fn duals_agree_on_nondegenerate_model() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let c1 = p.constrain(x.into(), Sense::Le, 4.0);
        let c2 = p.constrain(2.0 * y, Sense::Le, 12.0);
        let c3 = p.constrain(3.0 * x + 2.0 * y, Sense::Le, 18.0);
        p.maximize(3.0 * x + 5.0 * y);
        let d = p.solve().unwrap().into_optimal().unwrap();
        let r = p
            .solve_with(SimplexVariant::Revised)
            .unwrap()
            .into_optimal()
            .unwrap();
        for c in [c1, c2, c3] {
            assert!(near(d.dual(c), r.dual(c)), "dual mismatch on {c:?}");
        }
    }

    #[test]
    fn refactorization_path_is_exercised() {
        // A chain model solved with a tiny refactorization interval so the
        // Gauss-Jordan rebuild runs many times mid-solve.
        let mut p = Problem::new();
        let n = 60;
        let xs: Vec<_> = (0..n).map(|i| p.add_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::new();
        for (i, &x) in xs.iter().enumerate() {
            p.constrain(x.into(), Sense::Ge, 1.0 + (i % 7) as f64);
            if i > 0 {
                p.constrain(LinExpr::from(x) - xs[i - 1], Sense::Ge, 0.5);
            }
            obj = obj + x;
        }
        p.minimize(obj);
        let d = p.solve().expect("dense solves");
        let r = super::solve_with_refactor_interval(&p, 7).expect("revised solves");
        assert!(near(
            d.objective().expect("optimal"),
            r.objective().expect("optimal")
        ));
        assert!(r.iterations() > 7, "refactorization must have happened");
    }

    #[test]
    fn warm_start_reuses_a_cached_factor_across_rhs_sweeps() {
        // A chain model large enough that warm repair is visibly cheaper
        // than a cold solve, swept over one RHS.
        let mut p = Problem::new();
        let n = 40;
        let xs: Vec<_> = (0..n).map(|i| p.add_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut first = None;
        for (i, &x) in xs.iter().enumerate() {
            let c = p.constrain(x.into(), Sense::Ge, 1.0 + (i % 5) as f64);
            if i == 0 {
                first = Some(c);
            }
            if i > 0 {
                p.constrain(LinExpr::from(x) - xs[i - 1], Sense::Ge, 0.5);
            }
            obj = obj + x;
        }
        p.minimize(obj);
        let cold = p.solve_with(SimplexVariant::Revised).unwrap();
        let basis = cold.basis().expect("optimal captures basis").clone();
        let first = first.unwrap();
        for rhs in [2.0, 3.5, 5.0] {
            p.set_rhs(first, rhs);
            let warm = p
                .solve_from_basis_with(SimplexVariant::Revised, &basis)
                .unwrap();
            let check = p.solve_with(SimplexVariant::Revised).unwrap();
            assert!(near(warm.objective().unwrap(), check.objective().unwrap()));
            assert!(
                warm.iterations() < check.iterations(),
                "warm {} vs cold {} iterations at rhs {rhs}",
                warm.iterations(),
                check.iterations()
            );
        }
        // The first warm solve refactorized once and cached the factor for
        // the whole sweep (the matrix hash is RHS-independent).
        assert!(basis.has_cached_factor());
    }

    #[test]
    fn smo_model_solves_identically() {
        // Mini SMO-shaped model (same as the dense test).
        let mut p = Problem::new();
        let tc = p.add_var("Tc");
        let d = p.add_var("D");
        let g = p.add_var("g");
        p.constrain(LinExpr::from(tc) - d, Sense::Ge, 5.0);
        p.constrain(LinExpr::from(d) + g, Sense::Ge, 7.0);
        p.constrain(2.0 * g - tc, Sense::Le, 0.0);
        p.minimize(tc.into());
        let (dd, rr) = both(&p);
        assert!(near(dd.objective().unwrap(), 8.0));
        assert!(near(rr.objective().unwrap(), 8.0));
    }
}
