//! Error type for the LP solver.

use std::error::Error;
use std::fmt;

/// Errors reported by [`Problem::solve`](crate::Problem::solve) and the
/// parametric analysis routines.
///
/// Note that an *infeasible* or *unbounded* model is **not** an error: those
/// are normal outcomes reported through [`Status`](crate::Status). `LpError`
/// covers misuse of the API and numerical breakdown.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The model has no objective (call `minimize`/`maximize` first).
    MissingObjective,
    /// The model has no variables.
    EmptyModel,
    /// A variable's lower bound exceeds its upper bound.
    InvalidBounds {
        /// Name of the offending variable.
        var: String,
        /// Declared lower bound.
        lower: f64,
        /// Declared upper bound.
        upper: f64,
    },
    /// A coefficient, bound or right-hand side is NaN or infinite where a
    /// finite value is required.
    NonFiniteInput {
        /// Human-readable location of the bad value.
        context: String,
    },
    /// The simplex iteration limit was exceeded (indicates severe degeneracy
    /// or a solver defect; should not occur in practice thanks to Bland's
    /// rule).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// An optimal solution was requested from a solution that is not optimal.
    NotOptimal {
        /// The actual termination status.
        status: crate::Status,
    },
    /// Numerical breakdown inside the solver (e.g. a singular basis during
    /// refactorization). Should not occur; please report.
    Numerical {
        /// Where the breakdown happened.
        context: String,
    },
    /// The caller's [`SolveBudget`](crate::SolveBudget) was exhausted
    /// before the solve terminated.
    Budget {
        /// Simplex iterations completed when the budget ran out.
        iterations: usize,
        /// `true` when the wall-clock deadline expired; `false` when the
        /// iteration allowance ran out.
        timed_out: bool,
    },
    /// Every rung of the recovery ladder was exhausted without producing
    /// a verdict that certifies against the original problem
    /// (see [`Problem::solve_certified`](crate::Problem::solve_certified)).
    CertificationFailed {
        /// Recovery-ladder rungs attempted (including the initial solve).
        steps: usize,
        /// Name of the optimality condition with the worst residual in
        /// the best attempt.
        condition: &'static str,
        /// That worst relative residual.
        residual: f64,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::MissingObjective => write!(f, "model has no objective"),
            LpError::EmptyModel => write!(f, "model has no variables"),
            LpError::InvalidBounds { var, lower, upper } => write!(
                f,
                "variable `{var}` has lower bound {lower} greater than upper bound {upper}"
            ),
            LpError::NonFiniteInput { context } => {
                write!(f, "non-finite value in {context}")
            }
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
            LpError::NotOptimal { status } => {
                write!(f, "solution is not optimal (status: {status})")
            }
            LpError::Numerical { context } => {
                write!(f, "numerical breakdown in {context}")
            }
            LpError::Budget {
                iterations,
                timed_out,
            } => {
                let what = if *timed_out {
                    "wall-clock deadline"
                } else {
                    "iteration allowance"
                };
                write!(
                    f,
                    "solve budget exhausted ({what}) after {iterations} simplex iterations"
                )
            }
            LpError::CertificationFailed {
                steps,
                condition,
                residual,
            } => write!(
                f,
                "no certified verdict after {steps} recovery step(s); best attempt fails the \
                 {condition} check with relative residual {residual:.3e}"
            ),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LpError::InvalidBounds {
            var: "x".into(),
            lower: 3.0,
            upper: 1.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("x"));
        assert!(msg.contains("3"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
