use smo_lp::{LinExpr, PresolveOptions, Problem, Sense, SimplexVariant};

fn main() {
    // x in [0,3], y in [0,20], x + y >= 10, min y.
    // Activity tightening derives y >= 7; if that tightened bound is binding
    // in the reduced problem, where does the multiplier go after postsolve?
    let mut p = Problem::new();
    let x = p.add_var_bounded("x", 0.0, 3.0);
    let y = p.add_var_bounded("y", 0.0, 20.0);
    let c = p.constrain(x + y, Sense::Ge, 10.0);
    p.minimize(LinExpr::from(y));

    let plain = p.solve().unwrap().into_optimal().unwrap();
    let pre = p
        .solve_with_presolve(SimplexVariant::Dense, &PresolveOptions::default())
        .unwrap()
        .into_optimal()
        .unwrap();
    println!(
        "plain : obj={} y_dual_row={} rc_x={} rc_y={}",
        plain.objective(),
        plain.dual(c),
        plain.reduced_cost(x),
        plain.reduced_cost(y)
    );
    println!(
        "presol: obj={} y_dual_row={} rc_x={} rc_y={}",
        pre.objective(),
        pre.dual(c),
        pre.reduced_cost(x),
        pre.reduced_cost(y)
    );
    println!(
        "values plain={:?} presolve={:?}",
        plain.values(),
        pre.values()
    );
    // KKT check on original: c_j - sum_i dual_i * a_ij should equal rc_j,
    // and rc_j must be 0 unless the ORIGINAL bound of j is active.
    let cert = plain.as_solution().certify(&p);
    println!("certificate: {cert}");
}
