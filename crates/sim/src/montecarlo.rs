//! Monte-Carlo robustness analysis: how often does a schedule fail when
//! combinational delays vary between their contamination and propagation
//! bounds?
//!
//! Static analysis is worst-case; this module answers the complementary
//! statistical question by running many jittered simulations (see
//! [`SimOptions::jitter_seed`](crate::SimOptions)). A schedule that passes
//! worst-case verification passes every Monte-Carlo run by construction —
//! property-tested in `tests/` — so the interesting use is quantifying
//! *how much* margin a too-aggressive schedule is missing.

use crate::engine::{simulate, SimOptions};
use smo_circuit::{Circuit, ClockSchedule};

/// Options for [`monte_carlo`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloOptions {
    /// Number of independent jittered runs.
    pub runs: usize,
    /// Waves per run.
    pub waves_per_run: usize,
    /// Base RNG seed (run `i` uses `seed + i`).
    pub seed: u64,
    /// Also collect hold violations.
    pub check_hold: bool,
    /// Worker threads (runs are independent; results are identical for any
    /// thread count because each run is seeded by its index).
    pub threads: usize,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            runs: 100,
            waves_per_run: 32,
            seed: 0,
            check_hold: false,
            threads: 1,
        }
    }
}

/// Aggregated result of a Monte-Carlo campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    /// Total runs performed.
    pub runs: usize,
    /// Runs with at least one setup violation.
    pub failing_runs: usize,
    /// Total setup violations across all runs and waves.
    pub setup_violations: usize,
    /// Total hold violations (zero unless enabled).
    pub hold_violations: usize,
    /// The worst (most negative) setup margin observed across all runs, as
    /// a shortfall (`0.0` when no run violated anything).
    pub worst_shortfall: f64,
}

impl MonteCarloReport {
    /// Empirical failure probability.
    pub fn failure_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.failing_runs as f64 / self.runs as f64
        }
    }
}

/// Runs `options.runs` jittered simulations of `circuit` under `schedule`
/// and aggregates the violations.
///
/// # Panics
///
/// Panics if the schedule's phase count differs from the circuit's or
/// `runs`/`waves_per_run` is zero.
pub fn monte_carlo(
    circuit: &Circuit,
    schedule: &ClockSchedule,
    options: &MonteCarloOptions,
) -> MonteCarloReport {
    assert!(options.runs >= 1, "need at least one run");
    let threads = options.threads.clamp(1, options.runs);
    let run_range = |lo: usize, hi: usize| -> MonteCarloReport {
        let mut report = MonteCarloReport {
            runs: hi - lo,
            failing_runs: 0,
            setup_violations: 0,
            hold_violations: 0,
            worst_shortfall: 0.0,
        };
        for i in lo..hi {
            let sim_opts = SimOptions {
                max_waves: options.waves_per_run,
                check_hold: options.check_hold,
                stop_on_convergence: false, // jitter never truly converges
                jitter_seed: Some(options.seed.wrapping_add(i as u64)),
                ..Default::default()
            };
            let trace = simulate(circuit, schedule, &sim_opts);
            let setup = trace.setup_violations().len();
            let hold = trace.hold_violations().len();
            if setup > 0 {
                report.failing_runs += 1;
            }
            report.setup_violations += setup;
            report.hold_violations += hold;
            for v in trace.violations() {
                let s = match v {
                    crate::SimViolation::Setup { shortfall, .. } => *shortfall,
                    crate::SimViolation::Hold { shortfall, .. } => *shortfall,
                };
                report.worst_shortfall = report.worst_shortfall.max(s);
            }
        }
        report
    };

    if threads == 1 {
        return run_range(0, options.runs);
    }
    let chunk = options.runs.div_ceil(threads);
    let partials: Vec<MonteCarloReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(options.runs);
                let run_range = &run_range;
                scope.spawn(move || run_range(lo, hi.max(lo)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let mut total = MonteCarloReport {
        runs: options.runs,
        failing_runs: 0,
        setup_violations: 0,
        hold_violations: 0,
        worst_shortfall: 0.0,
    };
    for p in partials {
        total.failing_runs += p.failing_runs;
        total.setup_violations += p.setup_violations;
        total.hold_violations += p.hold_violations;
        total.worst_shortfall = total.worst_shortfall.max(p.worst_shortfall);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    /// Two-latch loop with wide delay ranges.
    fn jittery_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 2.0, 2.0);
        let c2 = b.add_latch("B", p(2), 2.0, 2.0);
        b.connect_min_max(a, c2, 5.0, 20.0);
        b.connect_min_max(c2, a, 5.0, 20.0);
        b.build().unwrap()
    }

    #[test]
    fn worst_case_feasible_schedule_never_fails() {
        let c = jittery_circuit();
        let sol = smo_core::min_cycle_time(&c).unwrap();
        let report = monte_carlo(&c, sol.schedule(), &MonteCarloOptions::default());
        assert_eq!(report.failing_runs, 0, "{report:?}");
        assert_eq!(report.failure_rate(), 0.0);
        assert_eq!(report.worst_shortfall, 0.0);
    }

    #[test]
    fn optimistic_corner_signoff_fails_sometimes_but_not_always() {
        // The realistic failure mode: the schedule is signed off at an
        // optimistic delay corner (19.8 instead of the true worst case 20),
        // then the silicon jitters over the full [5, 20] range. Most waves
        // sample below the corner and pass; occasional waves exceed it.
        let real = jittery_circuit();
        let corner = {
            let mut b = CircuitBuilder::new(2);
            let a = b.add_latch("A", p(1), 2.0, 2.0);
            let c2 = b.add_latch("B", p(2), 2.0, 2.0);
            b.connect_min_max(a, c2, 5.0, 19.8);
            b.connect_min_max(c2, a, 5.0, 19.8);
            b.build().unwrap()
        };
        let signoff = smo_core::min_cycle_time(&corner).unwrap();
        let report = monte_carlo(
            &real,
            signoff.schedule(),
            &MonteCarloOptions {
                runs: 200,
                ..Default::default()
            },
        );
        assert!(report.failing_runs > 0, "{report:?}");
        assert!(
            report.failing_runs < report.runs,
            "some lucky runs should pass: {report:?}"
        );
        assert!(report.worst_shortfall > 0.0);
        let rate = report.failure_rate();
        assert!(rate > 0.0 && rate < 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = jittery_circuit();
        let sol = smo_core::min_cycle_time(&c).unwrap();
        let aggressive = sol.schedule().scaled(0.85);
        let opts = MonteCarloOptions {
            runs: 50,
            seed: 7,
            ..Default::default()
        };
        let a = monte_carlo(&c, &aggressive, &opts);
        let b = monte_carlo(&c, &aggressive, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_runs_match_sequential_exactly() {
        let c = jittery_circuit();
        let sol = smo_core::min_cycle_time(&c).unwrap();
        let aggressive = sol.schedule().scaled(0.85);
        let seq = monte_carlo(
            &c,
            &aggressive,
            &MonteCarloOptions {
                runs: 64,
                seed: 3,
                threads: 1,
                ..Default::default()
            },
        );
        let par = monte_carlo(
            &c,
            &aggressive,
            &MonteCarloOptions {
                runs: 64,
                seed: 3,
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn hopeless_schedule_fails_every_run() {
        let c = jittery_circuit();
        // even with minimum delays the loop needs 5+5+4 = 14
        let sched = ClockSchedule::symmetric(2, 10.0, 0.0).unwrap();
        let report = monte_carlo(&c, &sched, &MonteCarloOptions::default());
        assert_eq!(report.failing_runs, report.runs);
        assert_eq!(report.failure_rate(), 1.0);
    }
}
