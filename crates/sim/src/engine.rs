//! The wave-by-wave simulation engine.
//!
//! Clock-phase occurrences are strictly ordered in time within a wave
//! (phase starts are sorted, eq. 5) and a combinational edge either stays
//! within the wave (`C_{p_j p_i} = 0`, source phase strictly earlier) or
//! crosses into the next one (`C = 1`). Processing synchronizers in phase
//! order within each wave therefore evaluates every data dependency after
//! its sources — an event-driven simulation with a statically known event
//! order.
//!
//! Seeding: every synchronizer starts wave −1 holding valid data that
//! departed at its phase's opening edge (`D = 0`), the circuit's power-on
//! state. Per-wave departures then increase monotonically toward the
//! steady state, matching the analytical least fixpoint of `smo-core` when
//! the schedule is feasible, and drifting later every wave when it is not.

use crate::trace::{SimTrace, SimViolation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smo_circuit::{Circuit, ClockSchedule, ClockSpec, EdgeId, LatchId, SyncKind};

/// Options for [`simulate`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Maximum number of waves (cycles) to simulate.
    pub max_waves: usize,
    /// Convergence tolerance on per-wave departures.
    pub tolerance: f64,
    /// Also perform dynamic hold (short-path) checking using edge
    /// `min_delay` values.
    pub check_hold: bool,
    /// Stop at the first wave whose departures match the previous wave's.
    pub stop_on_convergence: bool,
    /// Monte-Carlo mode: when `Some(seed)`, each edge's long-path delay is
    /// resampled uniformly from `[min_delay, max_delay]` in every wave
    /// (process/data-dependent variation). Deterministic per seed. Hold
    /// checks keep using the worst case `min_delay`.
    pub jitter_seed: Option<u64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_waves: 64,
            tolerance: 1e-9,
            check_hold: false,
            stop_on_convergence: true,
            jitter_seed: None,
        }
    }
}

/// Simulates `circuit` under `schedule` for up to `options.max_waves`
/// cycles.
///
/// # Panics
///
/// Panics if the schedule's phase count differs from the circuit's, or if
/// `max_waves` is zero.
pub fn simulate(circuit: &Circuit, schedule: &ClockSchedule, options: &SimOptions) -> SimTrace {
    assert_eq!(
        circuit.num_phases(),
        schedule.num_phases(),
        "schedule phase count must match the circuit"
    );
    assert!(options.max_waves >= 1, "need at least one wave");
    let l = circuit.num_syncs();
    let tc = schedule.cycle();

    // Evaluation order: by phase, then by id (within-wave dependencies only
    // flow from strictly earlier phases).
    let mut order: Vec<usize> = (0..l).collect();
    order.sort_by_key(|&i| (circuit.sync(LatchId::new(i)).phase.index(), i));

    // dep_abs[i]: absolute departure in the *previous* wave; seeded at the
    // wave −1 opening edge (power-on data, D = 0).
    let mut prev_dep: Vec<f64> = (0..l)
        .map(|i| schedule.start(circuit.sync(LatchId::new(i)).phase) - tc)
        .collect();
    // ec_abs[i]: absolute earliest output-change instant in the previous
    // wave; power-on outputs first change at the wave −1 opening edge.
    let mut prev_ec: Vec<f64> = prev_dep.clone();

    let mut departures: Vec<Vec<Option<f64>>> = Vec::new();
    let mut arrivals: Vec<Vec<Option<f64>>> = Vec::new();
    let mut early_changes: Vec<Vec<f64>> = Vec::new();
    let mut violations: Vec<SimViolation> = Vec::new();
    let mut converged_at = None;
    let mut rng = options.jitter_seed.map(StdRng::seed_from_u64);
    let mut delays: Vec<f64> = circuit.edges().iter().map(|e| e.max_delay).collect();

    for wave in 0..options.max_waves {
        if let Some(rng) = rng.as_mut() {
            for (d, e) in delays.iter_mut().zip(circuit.edges()) {
                *d = if e.max_delay > e.min_delay {
                    rng.gen_range(e.min_delay..=e.max_delay)
                } else {
                    e.max_delay
                };
            }
        }
        let mut dep_abs = vec![0.0_f64; l];
        let mut ec_abs = vec![0.0_f64; l];
        let mut dep_rel = vec![None; l];
        let mut ec_rel = vec![f64::INFINITY; l];
        let mut arr_rel = vec![None; l];
        for &i in &order {
            let id = LatchId::new(i);
            let sync = circuit.sync(id);
            let open = schedule.start(sync.phase) + wave as f64 * tc;
            let close = open + schedule.width(sync.phase);

            // Latest arrival over all fan-in contributions.
            let mut arrival = f64::NEG_INFINITY;
            for &eid in circuit.fanin(id) {
                let e = circuit.edge(eid);
                let src = circuit.sync(e.from);
                let crosses = ClockSpec::c_flag(src.phase, sync.phase);
                let q = if crosses {
                    prev_dep[e.from.index()] // source departed last wave
                } else {
                    dep_abs[e.from.index()] // already computed this wave
                } + src.dq;
                arrival = arrival.max(q + delays[eid.index()]);
            }
            if arrival.is_finite() {
                arr_rel[i] = Some(arrival - open);
            }

            // Earliest instant the input can start changing (short paths,
            // contamination delays); only needed for hold checking.
            let mut early_in = f64::INFINITY;
            if options.check_hold {
                for &eid in circuit.fanin(id) {
                    let e = circuit.edge(eid);
                    let src = circuit.sync(e.from);
                    let crosses = ClockSpec::c_flag(src.phase, sync.phase);
                    let q = if crosses {
                        prev_ec[e.from.index()]
                    } else {
                        ec_abs[e.from.index()]
                    } + src.dq;
                    early_in = early_in.min(q + e.min_delay);
                }
            }

            match sync.kind {
                SyncKind::Latch => {
                    let depart = arrival.max(open);
                    dep_abs[i] = depart;
                    dep_rel[i] = Some(depart - open);
                    ec_abs[i] = early_in.max(open);
                    ec_rel[i] = ec_abs[i] - open;
                    // the paper's adopted setup form (eq. 11):
                    // D + Δ_DC ≤ T_p
                    let shortfall = (depart - open) + sync.setup - (close - open);
                    if shortfall > options.tolerance {
                        violations.push(SimViolation::Setup {
                            latch: id,
                            wave,
                            shortfall,
                        });
                    }
                }
                SyncKind::FlipFlop => {
                    // samples at the enabling edge regardless of lateness
                    dep_abs[i] = open;
                    dep_rel[i] = Some(0.0);
                    ec_abs[i] = open;
                    ec_rel[i] = 0.0;
                    if arrival.is_finite() {
                        let shortfall = arrival + sync.setup - open;
                        if shortfall > options.tolerance {
                            violations.push(SimViolation::Setup {
                                latch: id,
                                wave,
                                shortfall,
                            });
                        }
                    }
                }
            }
        }

        // Dynamic hold checking: the *next* wave's data must not disturb
        // this wave's capture. The next occurrence's earliest change is this
        // occurrence's earliest change plus one period (exact in steady
        // state, conservative during the transient).
        if options.check_hold {
            for (idx, e) in circuit.edges().iter().enumerate() {
                let src = circuit.sync(e.from);
                let dst = circuit.sync(e.to);
                let crosses = ClockSpec::c_flag(src.phase, dst.phase);
                // earliest change (this wave) of the occurrence feeding the
                // destination
                let feed_ec = if crosses {
                    prev_ec[e.from.index()]
                } else {
                    ec_abs[e.from.index()]
                };
                let next_disturb = feed_ec + tc + src.dq + e.min_delay;
                let dst_open = schedule.start(dst.phase) + wave as f64 * tc;
                let hold_deadline = match dst.kind {
                    SyncKind::Latch => dst_open + schedule.width(dst.phase) + dst.hold,
                    SyncKind::FlipFlop => dst_open + dst.hold,
                };
                let shortfall = hold_deadline - next_disturb;
                if shortfall > options.tolerance {
                    violations.push(SimViolation::Hold {
                        edge: EdgeId::new(idx),
                        wave,
                        shortfall,
                    });
                }
            }
        }

        // Convergence: relative departures equal last wave's.
        if wave > 0 {
            let prev = &departures[wave - 1];
            let same = dep_rel.iter().zip(prev.iter()).all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => (x - y).abs() <= options.tolerance,
                (None, None) => true,
                _ => false,
            });
            if same && converged_at.is_none() {
                converged_at = Some(wave);
            }
        }

        departures.push(dep_rel);
        arrivals.push(arr_rel);
        early_changes.push(ec_rel);
        prev_dep = dep_abs;
        prev_ec = ec_abs;

        if options.stop_on_convergence && converged_at.is_some() {
            break;
        }
    }

    SimTrace {
        cycle: tc,
        waves: departures.len(),
        departures,
        arrivals,
        early_changes,
        violations,
        converged_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    fn example1(d41: f64) -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 10.0, 10.0);
        let l2 = b.add_latch("L2", p(2), 10.0, 10.0);
        let l3 = b.add_latch("L3", p(1), 10.0, 10.0);
        let l4 = b.add_latch("L4", p(2), 10.0, 10.0);
        b.connect(l1, l2, 20.0);
        b.connect(l2, l3, 20.0);
        b.connect(l3, l4, 60.0);
        b.connect(l4, l1, d41);
        b.build().unwrap()
    }

    #[test]
    fn feasible_schedule_converges_cleanly() {
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(2, 100.0, 0.0).unwrap();
        let trace = simulate(&c, &sched, &SimOptions::default());
        assert!(trace.converged(), "no convergence: {trace:?}");
        assert!(trace.setup_violations().is_empty());
        // steady state matches the §V hand computation
        assert_eq!(trace.steady_departures(), vec![40.0, 20.0, 0.0, 20.0]);
    }

    #[test]
    fn undersized_cycle_shows_setup_misses_and_no_convergence() {
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(2, 80.0, 0.0).unwrap();
        let opts = SimOptions {
            max_waves: 40,
            ..Default::default()
        };
        let trace = simulate(&c, &sched, &opts);
        assert!(!trace.converged());
        assert!(!trace.setup_violations().is_empty());
        // departures drift later every wave around the positive loop
        let l1 = LatchId::new(0);
        let early = trace.departure(5, l1).unwrap();
        let late = trace.departure(35, l1).unwrap();
        assert!(late > early + 1.0, "no drift: {early} vs {late}");
    }

    #[test]
    fn narrow_phases_show_setup_misses_but_converge() {
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(2, 100.0, 15.0).unwrap();
        let trace = simulate(&c, &sched, &SimOptions::default());
        assert!(trace.converged());
        assert!(!trace.setup_violations().is_empty());
    }

    #[test]
    fn flip_flop_samples_at_edge() {
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_flip_flop("F1", p(1), 1.0, 2.0);
        let f2 = b.add_flip_flop("F2", p(1), 1.0, 2.0);
        b.connect(f1, f2, 10.0);
        let c = b.build().unwrap();
        let ok = ClockSchedule::new(13.0, vec![0.0], vec![6.0]).unwrap();
        let trace = simulate(&c, &ok, &SimOptions::default());
        assert!(trace.setup_violations().is_empty());
        assert_eq!(trace.steady_departures(), vec![0.0, 0.0]);
        let bad = ClockSchedule::new(12.0, vec![0.0], vec![6.0]).unwrap();
        let trace = simulate(&c, &bad, &SimOptions::default());
        assert!(!trace.setup_violations().is_empty());
    }

    #[test]
    fn dynamic_hold_check_fires_on_fast_path() {
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_flip_flop("F1", p(1), 0.1, 0.1);
        let f2 =
            b.add_sync(smo_circuit::Synchronizer::flip_flop("F2", p(1), 0.1, 0.2).with_hold(1.0));
        b.connect_min_max(f1, f2, 0.3, 5.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::new(10.0, vec![0.0], vec![5.0]).unwrap();
        let opts = SimOptions {
            check_hold: true,
            ..Default::default()
        };
        let trace = simulate(&c, &sched, &opts);
        assert!(!trace.hold_violations().is_empty());
        // and with enough contamination delay it passes
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_flip_flop("F1", p(1), 0.1, 0.1);
        let f2 =
            b.add_sync(smo_circuit::Synchronizer::flip_flop("F2", p(1), 0.1, 0.2).with_hold(1.0));
        b.connect_min_max(f1, f2, 2.0, 5.0);
        let c = b.build().unwrap();
        let trace = simulate(&c, &sched, &opts);
        assert!(trace.hold_violations().is_empty());
    }

    #[test]
    fn arrival_times_are_reported_relative_to_phase() {
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(2, 100.0, 0.0).unwrap();
        let trace = simulate(&c, &sched, &SimOptions::default());
        let last = trace.waves() - 1;
        // A1 = 40 in steady state (§V hand computation)
        assert!((trace.arrival(last, LatchId::new(0)).unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn max_waves_budget_is_respected() {
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(2, 80.0, 0.0).unwrap();
        let opts = SimOptions {
            max_waves: 7,
            ..Default::default()
        };
        let trace = simulate(&c, &sched, &opts);
        assert_eq!(trace.waves(), 7);
    }

    #[test]
    #[should_panic(expected = "phase count")]
    fn mismatched_schedule_panics() {
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(3, 90.0, 0.0).unwrap();
        let _ = simulate(&c, &sched, &SimOptions::default());
    }
}
