//! Simulation traces: per-wave events, violations, convergence.

use smo_circuit::{EdgeId, LatchId};
use std::fmt;

/// One recorded event of a simulation run (all times absolute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// The latest input signal of a synchronizer became stable.
    Arrival {
        /// The receiving synchronizer.
        latch: LatchId,
        /// Wave (cycle) index.
        wave: usize,
        /// Absolute time.
        time: f64,
    },
    /// A synchronizer's output started driving its fan-out.
    Departure {
        /// The driving synchronizer.
        latch: LatchId,
        /// Wave (cycle) index.
        wave: usize,
        /// Absolute time (already includes the element's `Δ_DQ`? No —
        /// this is the *departure from the data input*, the paper's `D`;
        /// the output becomes valid `Δ_DQ` later).
        time: f64,
    },
}

/// A dynamically observed timing failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimViolation {
    /// Data kept changing less than a setup time before the capturing edge.
    Setup {
        /// The violating synchronizer.
        latch: LatchId,
        /// Wave index at which the miss was observed.
        wave: usize,
        /// How late the data was.
        shortfall: f64,
    },
    /// New data raced through a short path and disturbed the previous
    /// capture (only produced when hold checking is enabled).
    Hold {
        /// The offending edge.
        edge: EdgeId,
        /// Wave index.
        wave: usize,
        /// How early the new data arrived.
        shortfall: f64,
    },
}

impl fmt::Display for SimViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimViolation::Setup {
                latch,
                wave,
                shortfall,
            } => write!(f, "setup miss at {latch} in wave {wave} by {shortfall:.4}"),
            SimViolation::Hold {
                edge,
                wave,
                shortfall,
            } => write!(
                f,
                "hold race on edge #{} in wave {wave} by {shortfall:.4}",
                edge.index()
            ),
        }
    }
}

/// The full record of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrace {
    pub(crate) cycle: f64,
    pub(crate) waves: usize,
    /// `departures[wave][latch]`: departure relative to the latch's own
    /// phase start in that wave (`None` until data first reaches it).
    pub(crate) departures: Vec<Vec<Option<f64>>>,
    /// `arrivals[wave][latch]`, relative like departures.
    pub(crate) arrivals: Vec<Vec<Option<f64>>>,
    /// `early_changes[wave][latch]`: earliest instant the output starts
    /// changing, relative to the latch's own phase start (`+∞` when the
    /// output cannot change that wave).
    pub(crate) early_changes: Vec<Vec<f64>>,
    pub(crate) violations: Vec<SimViolation>,
    pub(crate) converged_at: Option<usize>,
}

impl SimTrace {
    /// Number of simulated waves (cycles).
    pub fn waves(&self) -> usize {
        self.waves
    }

    /// All dynamically observed violations, in wave order.
    pub fn setup_violations(&self) -> Vec<&SimViolation> {
        self.violations
            .iter()
            .filter(|v| matches!(v, SimViolation::Setup { .. }))
            .collect()
    }

    /// All hold violations (empty unless hold checking was enabled).
    pub fn hold_violations(&self) -> Vec<&SimViolation> {
        self.violations
            .iter()
            .filter(|v| matches!(v, SimViolation::Hold { .. }))
            .collect()
    }

    /// Every violation.
    pub fn violations(&self) -> &[SimViolation] {
        &self.violations
    }

    /// `true` when the per-wave departures stopped changing before the wave
    /// budget ran out (steady state reached).
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// The first wave whose departures equal the previous wave's, if any.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// Departure of `latch` in `wave`, relative to its phase start
    /// (`None` if no data had reached it yet).
    ///
    /// # Panics
    ///
    /// Panics if `wave` or `latch` is out of range.
    pub fn departure(&self, wave: usize, latch: LatchId) -> Option<f64> {
        self.departures[wave][latch.index()]
    }

    /// Arrival of the latest input of `latch` in `wave`, relative to its
    /// phase start.
    ///
    /// # Panics
    ///
    /// Panics if `wave` or `latch` is out of range.
    pub fn arrival(&self, wave: usize, latch: LatchId) -> Option<f64> {
        self.arrivals[wave][latch.index()]
    }

    /// Earliest output-change instant of `latch` in `wave`, relative to its
    /// phase start (`+∞` when the output cannot change that wave).
    ///
    /// # Panics
    ///
    /// Panics if `wave` or `latch` is out of range.
    pub fn early_change(&self, wave: usize, latch: LatchId) -> f64 {
        self.early_changes[wave][latch.index()]
    }

    /// The steady-state departure vector (last simulated wave), with
    /// latches never reached reported as `0.0` — the same convention as the
    /// analytical least fixpoint.
    pub fn steady_departures(&self) -> Vec<f64> {
        self.departures
            .last()
            .map(|w| w.iter().map(|d| d.unwrap_or(0.0)).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_names_element_and_wave() {
        let v = SimViolation::Setup {
            latch: LatchId::new(2),
            wave: 5,
            shortfall: 1.25,
        };
        let s = v.to_string();
        assert!(s.contains("L3") && s.contains('5') && s.contains("1.25"));
    }

    #[test]
    fn steady_departures_default_to_zero() {
        let t = SimTrace {
            cycle: 10.0,
            waves: 1,
            departures: vec![vec![Some(3.0), None]],
            arrivals: vec![vec![Some(3.0), None]],
            early_changes: vec![vec![0.0, f64::INFINITY]],
            violations: vec![],
            converged_at: Some(0),
        };
        assert_eq!(t.steady_departures(), vec![3.0, 0.0]);
    }
}
