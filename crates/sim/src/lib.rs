//! # smo-sim — behavioural simulator for latch-controlled circuits
//!
//! An independent executable oracle for the SMO timing model: instead of
//! solving fixpoint equations, this crate *simulates* the circuit wave by
//! wave under a concrete [`ClockSchedule`](smo_circuit::ClockSchedule) in
//! absolute time, applying only local latch semantics:
//!
//! * a level-sensitive latch is transparent while its phase is active; data
//!   arriving during transparency departs immediately, data arriving before
//!   the enabling edge departs at the edge, and data must be stable a setup
//!   time before the closing edge;
//! * an edge-triggered flip-flop samples at the enabling edge;
//! * a combinational edge delays data by `Δ` (long path) and not less than
//!   `δ` (short path, used by the optional hold checking).
//!
//! The simulation seeds every synchronizer with "no data yet" and lets the
//! waves develop; per-wave departures increase monotonically and, when the
//! schedule is feasible, converge to the analytical steady state of
//! `smo-core` — the agreement is asserted in the integration tests. When the
//! schedule is infeasible the simulator *observes* the failure dynamically
//! (a setup miss at a concrete absolute time, or departures drifting later
//! every wave), which is exactly how the paper's constraints manifest in
//! silicon.
//!
//! ## Example
//!
//! ```
//! use smo_circuit::ClockSchedule;
//! use smo_sim::{simulate, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = smo_gen_example();
//! let schedule = ClockSchedule::symmetric(2, 100.0, 0.0)?;
//! let trace = simulate(&circuit, &schedule, &SimOptions::default());
//! assert!(trace.setup_violations().is_empty());
//! assert!(trace.converged());
//! # Ok(())
//! # }
//! # fn smo_gen_example() -> smo_circuit::Circuit {
//! #     use smo_circuit::{CircuitBuilder, PhaseId};
//! #     let mut b = CircuitBuilder::new(2);
//! #     let a = b.add_latch("A", PhaseId::from_number(1), 10.0, 10.0);
//! #     let c = b.add_latch("B", PhaseId::from_number(2), 10.0, 10.0);
//! #     b.connect(a, c, 20.0);
//! #     b.connect(c, a, 60.0);
//! #     b.build().unwrap()
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod montecarlo;
mod trace;

pub use engine::{simulate, SimOptions};
pub use montecarlo::{monte_carlo, MonteCarloOptions, MonteCarloReport};
pub use trace::{SimEvent, SimTrace, SimViolation};
