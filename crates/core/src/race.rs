//! Short-path (double-clocking) race detection — the paper's other half
//! of correct latch-controlled operation.
//!
//! The long-path constraints C1–C3 / L1 / L2R guarantee that data arrives
//! *early enough* to be captured. §II of the paper notes the dual hazard:
//! data racing through a short combinational path can arrive *too early*,
//! overwriting the value the destination is still holding from the
//! previous cycle (a "double-clocking" or hold failure). With the clock
//! schedule solved, the check is a static one over the early-mode timing:
//!
//! ```text
//! E_j + Δ_DQj + δ_ji + S_{p_j p_i}  ≥  deadline_i
//!
//! deadline_i = T_{p_i} − T_c + hold_i   (latch: previous closing edge)
//!            = hold_i − T_c             (flip-flop: previous active edge)
//! ```
//!
//! where `E_j` is the steady-state earliest output-change time of the
//! source (the early-mode fixpoint of
//! [`PropagationSystem::with_short_delays`]) and `δ_ji` is the *effective*
//! short-path delay [`Edge::short_delay`](smo_circuit::Edge::short_delay):
//! the measured contamination delay when one was declared (`min=` /
//! `mindelay` in the netlist), otherwise the max delay — an edge whose
//! delay spread is unknown is assumed raceless rather than instantaneous,
//! so circuits without short-path data analyse exactly as before.
//!
//! The left-hand side minus the deadline is the edge's **hold slack**; a
//! negative slack is a race, reported with a [`ShortPathWitness`] carrying
//! every term of the violated inequality (so the claim can be re-checked
//! by plain arithmetic) and the clock-separation increase that would
//! retire it.
//!
//! Backend independence: [`race_analysis`] evaluates the slacks at the
//! *canonical* schedule for the solved cycle time — Bellman–Ford
//! potentials of the difference-constraint graph at `λ = T_c` for pure
//! models, the canonicalizing LP at a pinned cycle time for mixed ones —
//! never at whatever schedule the solver happened to return. Graph and LP
//! solves agree on `T_c*` to within [`Tol::TIGHT`], so they agree on the
//! canonical schedule and hence on every hold slack to the same tolerance.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::TimingError;
use crate::fastpath::{self, Backend};
use crate::mlp::{min_cycle_time_with, solve_model_canonical, MlpOptions, UpdateMode};
use crate::model::{ConstraintOptions, TimingModel};
use crate::propagation::PropagationSystem;
use smo_circuit::{Circuit, ClockSchedule, EdgeId, SyncKind};
use smo_lp::Tol;
use std::fmt;

/// Options for [`race_analysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct RaceOptions {
    /// Constraint-generation options for the solve (extras like minimum
    /// phase widths participate in the schedule the races are checked at).
    pub constraints: ConstraintOptions,
    /// Which solver computes the cycle time (see [`Backend`]). The
    /// analysis schedule itself is backend-independent.
    pub backend: Backend,
    /// Analyse at this cycle time instead of the solved optimum. The value
    /// must admit a feasible schedule.
    pub cycle_time: Option<f64>,
}

impl Default for RaceOptions {
    fn default() -> Self {
        RaceOptions {
            constraints: ConstraintOptions::default(),
            backend: Backend::Lp,
            cycle_time: None,
        }
    }
}

/// One double-clocking race, with every term of the violated short-path
/// inequality — the analogue of the long-path side's Farkas certificates:
/// the claim is re-checkable from the witness numbers alone,
/// `early_change + dq + short_delay + shift − deadline = slack < 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortPathWitness {
    /// The racing edge.
    pub edge: EdgeId,
    /// Source synchronizer name (`j`).
    pub from: String,
    /// Destination synchronizer name (`i`).
    pub to: String,
    /// Source phase number `p_j`.
    pub from_phase: usize,
    /// Destination phase number `p_i`.
    pub to_phase: usize,
    /// `E_j`: steady-state earliest output change of the source, relative
    /// to its own phase start.
    pub early_change: f64,
    /// `Δ_DQj`: source propagation delay.
    pub dq: f64,
    /// `δ_ji`: the effective short-path delay used.
    pub short_delay: f64,
    /// `true` when `δ_ji` is measured contamination data, `false` when it
    /// fell back to the max delay.
    pub min_specified: bool,
    /// `S_{p_j p_i}`: the phase-shift operator at the analysed schedule.
    pub shift: f64,
    /// Earliest new-data arrival at the destination,
    /// `early_change + dq + short_delay + shift` (relative to `p_i`'s
    /// start).
    pub early_arrival: f64,
    /// The hold deadline (see module docs); arrival before it is a race.
    pub deadline: f64,
    /// `early_arrival − deadline` (negative).
    pub slack: f64,
    /// `deadline − early_arrival`: the clock-separation increase between
    /// the racing phases that would retire this race.
    pub separation_fix: f64,
    /// `true` when the destination is a flip-flop.
    pub dst_is_ff: bool,
    /// Destination hold requirement.
    pub hold: f64,
}

impl fmt::Display for ShortPathWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "double-clocking race {} → {} (edge #{}): new data departs {} at \
             E + Δ_DQ = {:.4} + {:.4} after the φ{} rise, crosses the short path \
             δ = {:.4}{} with phase shift S_{{{},{}}} = {:.4}, and reaches {} at \
             {:.4} — {:.4} before its hold deadline {:.4} ({}); increasing the \
             φ{}→φ{} clock separation by {:.4} retires the race",
            self.from,
            self.to,
            self.edge.index(),
            self.from,
            self.early_change,
            self.dq,
            self.from_phase,
            self.short_delay,
            if self.min_specified {
                ""
            } else {
                " (unmeasured: max delay assumed)"
            },
            self.from_phase,
            self.to_phase,
            self.shift,
            self.to,
            self.early_arrival,
            -self.slack,
            self.deadline,
            if self.dst_is_ff {
                "previous active edge + hold"
            } else {
                "previous closing edge + hold"
            },
            self.from_phase,
            self.to_phase,
            self.separation_fix,
        )
    }
}

/// The short-path analysis report: per-edge and per-synchronizer hold
/// slacks at the canonical schedule, plus one [`ShortPathWitness`] per
/// detected race.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    schedule: ClockSchedule,
    early_changes: Vec<f64>,
    early_converged: bool,
    edge_slacks: Vec<f64>,
    latch_slacks: Vec<Option<f64>>,
    races: Vec<ShortPathWitness>,
}

impl RaceReport {
    /// The cycle time the analysis ran at.
    pub fn cycle_time(&self) -> f64 {
        self.schedule.cycle()
    }

    /// The canonical schedule the slacks were evaluated at.
    pub fn schedule(&self) -> &ClockSchedule {
        &self.schedule
    }

    /// Steady-state earliest output-change time per synchronizer (relative
    /// to its own phase start); `+∞` means the output never changes.
    pub fn early_changes(&self) -> &[f64] {
        &self.early_changes
    }

    /// `false` when the early-mode fixpoint did not settle — the periodic
    /// data changes die out, every early change time is `+∞`, and no race
    /// can occur.
    pub fn early_converged(&self) -> bool {
        self.early_converged
    }

    /// Hold slack per edge (`+∞` when the source output never changes).
    /// Negative means a race.
    pub fn edge_slacks(&self) -> &[f64] {
        &self.edge_slacks
    }

    /// Hold slack per synchronizer: the minimum over its fan-in edges, or
    /// `None` for a synchronizer with no fan-in.
    pub fn latch_slacks(&self) -> &[Option<f64>] {
        &self.latch_slacks
    }

    /// The detected double-clocking races, one witness each, in edge
    /// order.
    pub fn races(&self) -> &[ShortPathWitness] {
        &self.races
    }

    /// `true` iff no race was detected.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }

    /// The smallest hold slack across all edges (`+∞` for a circuit with
    /// no edges or no changing data).
    pub fn worst_slack(&self) -> f64 {
        self.edge_slacks
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "short-path analysis at Tc = {:.4}: {}",
            self.cycle_time(),
            if self.races.is_empty() {
                "no double-clocking races".to_string()
            } else {
                format!("{} double-clocking race(s)", self.races.len())
            }
        )?;
        let worst = self.worst_slack();
        if worst.is_finite() {
            writeln!(f, "worst hold slack: {worst:.4}")?;
        } else {
            writeln!(f, "worst hold slack: +inf (no periodic data changes)")?;
        }
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// Runs the full pipeline: solve the design problem (or accept a fixed
/// cycle time), reconstruct the canonical schedule at that cycle time, and
/// evaluate the short-path constraints there (see module docs).
///
/// # Errors
///
/// [`TimingError`] when the model cannot be built, the solve fails, or no
/// feasible schedule exists at a requested `cycle_time`.
pub fn race_analysis(circuit: &Circuit, options: &RaceOptions) -> Result<RaceReport, TimingError> {
    let tc = match options.cycle_time {
        Some(tc) => {
            if !tc.is_finite() || tc <= 0.0 {
                return Err(TimingError::InvalidOptions {
                    reason: format!("cycle time {tc} must be finite and positive"),
                });
            }
            tc
        }
        None => {
            let mlp = MlpOptions {
                constraints: options.constraints.clone(),
                backend: options.backend,
                ..MlpOptions::default()
            };
            min_cycle_time_with(circuit, &mlp)?.cycle_time()
        }
    };
    let model = TimingModel::build_with(circuit, &options.constraints)?;
    // Race analysis has no time-limit knob of its own; the graph probe
    // runs unbudgeted like the rest of the pass.
    let schedule =
        match fastpath::schedule_at(circuit, &model, tc, &smo_lp::SolveBudget::UNLIMITED)? {
            Some(schedule) => schedule,
            None => {
                // Rows outside the difference fragment: pin the cycle time and
                // let the canonicalizing LP pick the same deterministic compact
                // schedule both backends would see.
                let pinned = ConstraintOptions {
                    fixed_cycle: Some(tc),
                    ..options.constraints.clone()
                };
                let pinned_model = TimingModel::build_with(circuit, &pinned)?;
                solve_model_canonical(circuit, &pinned_model, UpdateMode::default())?
                    .schedule()
                    .clone()
            }
        };
    Ok(race_analysis_at(circuit, &schedule))
}

/// The schedule-level entry point: evaluates the short-path constraint
/// family at an explicit clock schedule (no solve involved).
///
/// # Panics
///
/// Panics if the schedule's phase count differs from the circuit's.
pub fn race_analysis_at(circuit: &Circuit, schedule: &ClockSchedule) -> RaceReport {
    let l = circuit.num_syncs();
    let system = PropagationSystem::with_short_delays(circuit, schedule);
    let fp = system.early_steady(4 * l + 16);
    // Non-convergence of the monotone early iteration means the periodic
    // changes drift later each wave and die out: nothing ever disturbs a
    // captured value, so every early change time is +∞ (see
    // `PropagationSystem::early_steady`).
    let early_changes: Vec<f64> = if fp.converged {
        fp.departures
    } else {
        vec![f64::INFINITY; l]
    };

    let threshold = Tol::FEAS.abs_for(schedule.cycle());
    let mut edge_slacks = Vec::with_capacity(circuit.num_edges());
    let mut latch_slacks: Vec<Option<f64>> = vec![None; l];
    let mut races = Vec::new();
    for (idx, e) in circuit.edges().iter().enumerate() {
        let src = circuit.sync(e.from);
        let dst = circuit.sync(e.to);
        let shift = schedule.shift(src.phase, dst.phase);
        let deadline = match dst.kind {
            SyncKind::Latch => schedule.width(dst.phase) - schedule.cycle() + dst.hold,
            SyncKind::FlipFlop => dst.hold - schedule.cycle(),
        };
        let e_src = early_changes[e.from.index()];
        let slack = if e_src.is_finite() {
            let early_arrival = e_src + src.dq + e.short_delay() + shift;
            let slack = early_arrival - deadline;
            if slack < -threshold {
                races.push(ShortPathWitness {
                    edge: EdgeId::new(idx),
                    from: src.name.clone(),
                    to: dst.name.clone(),
                    from_phase: src.phase.number(),
                    to_phase: dst.phase.number(),
                    early_change: e_src,
                    dq: src.dq,
                    short_delay: e.short_delay(),
                    min_specified: e.min_specified,
                    shift,
                    early_arrival,
                    deadline,
                    slack,
                    separation_fix: deadline - early_arrival,
                    dst_is_ff: dst.kind == SyncKind::FlipFlop,
                    hold: dst.hold,
                });
            }
            slack
        } else {
            f64::INFINITY
        };
        edge_slacks.push(slack);
        let entry = &mut latch_slacks[e.to.index()];
        *entry = Some(entry.map_or(slack, |cur| cur.min(slack)));
    }
    RaceReport {
        schedule: schedule.clone(),
        early_changes,
        early_converged: fp.converged,
        edge_slacks,
        latch_slacks,
        races,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId};
    use smo_gen::paper::example1;

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    #[test]
    fn example1_is_race_free_without_min_data() {
        // No edge declares a short-path delay: δ_eff = Δ everywhere, so
        // early arrivals coincide with the (setup-clean) late arrivals and
        // no race can appear.
        let report = race_analysis(&example1(80.0), &RaceOptions::default()).unwrap();
        assert!(report.is_race_free(), "{report}");
        assert!((report.cycle_time() - 110.0).abs() < 1e-6);
        assert!(report.edge_slacks().iter().all(|&s| s >= -1e-9));
    }

    #[test]
    fn short_ff_to_ff_path_races_and_witness_is_arithmetically_sound() {
        // Two same-phase flip-flops with a measured near-zero short path
        // and a real hold requirement: the classic shift-register race.
        let mut b = CircuitBuilder::new(1);
        let a = b.add_flip_flop("A", p(1), 0.2, 0.3);
        let c = b.add_flip_flop("C", p(1), 0.2, 0.3);
        b.add_sync(smo_circuit::Synchronizer::flip_flop("D", p(1), 0.2, 0.3).with_hold(2.0));
        let d = smo_circuit::LatchId::new(2);
        b.connect_min_max(a, c, 0.1, 5.0);
        b.connect_min_max(c, d, 0.1, 5.0);
        let circuit = b.build().unwrap();
        let report = race_analysis(&circuit, &RaceOptions::default()).unwrap();
        assert!(!report.is_race_free(), "{report}");
        // Only the edge into the holding flip-flop races: the C→D hold
        // deadline is hold − Tc = 2 − Tc, the early arrival 0 + 0.3 + 0.1 − Tc.
        let race = &report.races()[0];
        assert_eq!(race.to, "D");
        assert!((race.slack - (0.3 + 0.1 - 2.0)).abs() < 1e-9, "{race:?}");
        // The witness re-derives by plain arithmetic.
        let lhs = race.early_change + race.dq + race.short_delay + race.shift;
        assert!((lhs - race.early_arrival).abs() < 1e-12);
        assert!((race.early_arrival - race.deadline - race.slack).abs() < 1e-12);
        assert!((race.separation_fix + race.slack).abs() < 1e-12);
        assert!(race.min_specified);
        let text = race.to_string();
        assert!(text.contains("double-clocking race"), "{text}");
        assert!(text.contains("Δ_DQ"), "{text}");
        assert!(text.contains("hold deadline"), "{text}");
    }

    #[test]
    fn unmeasured_short_path_does_not_race() {
        // Same topology, but `connect` (no measured min): δ_eff = Δ = 5,
        // which beats the deadline comfortably at any feasible Tc.
        let mut b = CircuitBuilder::new(1);
        let a = b.add_flip_flop("A", p(1), 0.2, 0.3);
        b.add_sync(smo_circuit::Synchronizer::flip_flop("D", p(1), 0.2, 0.3).with_hold(2.0));
        let d = smo_circuit::LatchId::new(1);
        b.connect(a, d, 5.0);
        let circuit = b.build().unwrap();
        let report = race_analysis(&circuit, &RaceOptions::default()).unwrap();
        assert!(report.is_race_free(), "{report}");
    }

    #[test]
    fn latch_slacks_take_the_fanin_minimum() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 1.0, 2.0);
        let c = b.add_latch("B", p(2), 1.0, 2.0);
        b.connect_min_max(a, c, 1.0, 20.0);
        b.connect_min_max(a, c, 3.0, 20.0);
        b.connect_min_max(c, a, 2.0, 60.0);
        let circuit = b.build().unwrap();
        let report = race_analysis(&circuit, &RaceOptions::default()).unwrap();
        let slacks = report.edge_slacks();
        let b_slack = report.latch_slacks()[c.index()].unwrap();
        assert!((b_slack - slacks[0].min(slacks[1])).abs() < 1e-12);
        assert!(report.latch_slacks()[a.index()].is_some());
    }

    #[test]
    fn fixed_cycle_time_analysis_runs_above_the_optimum() {
        let c = example1(80.0);
        let options = RaceOptions {
            cycle_time: Some(150.0),
            ..RaceOptions::default()
        };
        let report = race_analysis(&c, &options).unwrap();
        assert!((report.cycle_time() - 150.0).abs() < 1e-12);
        assert!(report.is_race_free());
    }

    #[test]
    fn infeasible_fixed_cycle_time_is_an_error() {
        let c = example1(80.0);
        let options = RaceOptions {
            cycle_time: Some(50.0), // optimum is 110
            ..RaceOptions::default()
        };
        let err = race_analysis(&c, &options).unwrap_err();
        assert!(matches!(err, TimingError::Infeasible { .. }), "{err:?}");
    }

    #[test]
    fn graph_and_lp_backends_agree_on_hold_slacks() {
        for d41 in [20.0, 80.0, 120.0] {
            let mut c = example1(d41);
            // add measured short-path data to make the slacks non-trivial
            c = {
                let mut b = CircuitBuilder::new(2);
                for (_, s) in c.syncs() {
                    b.add_sync(s.clone());
                }
                for e in c.edges() {
                    b.connect_min_max(e.from, e.to, 0.4 * e.max_delay, e.max_delay);
                }
                b.build().unwrap()
            };
            let graph = race_analysis(
                &c,
                &RaceOptions {
                    backend: Backend::Graph,
                    ..RaceOptions::default()
                },
            )
            .unwrap();
            let lp = race_analysis(
                &c,
                &RaceOptions {
                    backend: Backend::Lp,
                    ..RaceOptions::default()
                },
            )
            .unwrap();
            let tol = Tol::TIGHT.abs_for(graph.cycle_time());
            assert!((graph.cycle_time() - lp.cycle_time()).abs() <= tol);
            for (g, l) in graph.edge_slacks().iter().zip(lp.edge_slacks()) {
                assert!((g - l).abs() <= tol, "Δ41 = {d41}: {g} vs {l}");
            }
        }
    }

    #[test]
    fn report_display_mentions_race_count() {
        let report = race_analysis(&example1(80.0), &RaceOptions::default()).unwrap();
        let text = report.to_string();
        assert!(text.contains("no double-clocking races"), "{text}");
        assert!(text.contains("worst hold slack"), "{text}");
    }
}
