//! Purely combinatorial cycle-time bounds: a certified bracket
//! `lower ≤ Tc* ≤ upper` computed from the latch-to-latch delay graph alone,
//! without solving the LP.
//!
//! **Lower bound.** Summing the relaxed propagation rows (L2R, eq. 19 — and
//! the flip-flop setup rows, which have the same shape with the destination
//! setup folded in) around any cycle of synchronizers telescopes the phase
//! starts and departures away and leaves
//!
//! ```text
//!     Tc · Σ C_{p_j p_i}  ≥  Σ (Δ_DQj + Δ_ji [+ Δ_DCi for FF dest]) ,
//! ```
//!
//! i.e. the cycle time is at least the maximum over all cycles of the cycle
//! *ratio* total-delay / wrap-count, where the wrap count `Σ C` (eq. 1)
//! counts how often the cycle crosses a clock-period boundary — every cycle
//! wraps at least once. This is the paper's "average delay around the loop"
//! bound (§V, Example 1), and the generalization of Karp's minimum-mean
//! cycle to 0/1 arc lengths in the denominator; we compute it exactly per
//! SCC with Lawler's parametric scheme (binary-search-free: each round runs
//! a Bellman–Ford negative-cycle detection at the current ratio λ and jumps
//! to the exact ratio of the witness cycle). A handful of single-constraint
//! floors (latch setups, per-edge stage delays) are folded in as well.
//!
//! **Upper bound.** The flip-flop-style schedule `s_p = (p−1)·W`,
//! `T_p = W`, `Tc = k·W` — where `W` is the worst single-stage delay
//! `max(max_edges (Δ_DQj + Δ_ji [+ Δ_DCi for FF dest]), max_latches Δ_DCi)`
//! as if every synchronizer were an edge-triggered flip-flop — with all
//! departures at zero satisfies every row family of problem P2 with
//! default [`ConstraintOptions`](crate::ConstraintOptions) (it is a feasible
//! witness, checked family by family in the docs of
//! [`cycle_time_bounds`]), so `Tc* ≤ k·W`.
//!
//! The bracket is valid for the **default** constraint options: extras such
//! as `min_separation`, `min_phase_width`, `fixed_cycle`/`max_cycle`,
//! `symmetric_clock`, `setup_margin` and departure pinning can push the
//! optimum outside it.

use smo_circuit::{Circuit, ClockSpec, Cycle, LatchId, SyncKind};
use std::collections::HashMap;
use std::fmt;

/// Relaxation tolerance for the Bellman–Ford negative-cycle test. At the
/// final ratio the critical cycle has cost exactly zero (delays are plain
/// sums and one exact division), so a strict tolerance terminates cleanly.
const TOL: f64 = 1e-9;

/// A critical (maximum-ratio) cycle of one strongly connected component.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalCycle {
    /// The synchronizers on the cycle, in traversal order, rotated so the
    /// smallest id comes first.
    pub cycle: Cycle,
    /// Total delay around the cycle:
    /// `Σ (Δ_DQj + Δ_ji [+ Δ_DCi for flip-flop destinations])`.
    pub weight: f64,
    /// Number of clock-period wraps `Σ C_{p_j p_i}` around the cycle
    /// (always ≥ 1).
    pub wraps: usize,
    /// The bound this cycle certifies: `weight / wraps ≤ Tc*`.
    pub ratio: f64,
}

impl fmt::Display for CriticalCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}  (delay {} over {} wrap(s): Tc >= {})",
            self.cycle, self.weight, self.wraps, self.ratio
        )
    }
}

/// A certified combinatorial bracket on the optimal cycle time, from
/// [`cycle_time_bounds`].
#[derive(Debug, Clone, PartialEq)]
pub struct CycleTimeBounds {
    /// Certified lower bound: no feasible schedule has `Tc` below this.
    pub lower: f64,
    /// Certified upper bound: the flip-flop-style schedule `Tc = k·W` is
    /// feasible, so the optimum is at most this.
    pub upper: f64,
    /// The worst single-stage (flip-flop-style) delay `W`; `upper = k·W`.
    pub stage_bound: f64,
    /// `max Δ_DCi` over latches — a floor from L1 + C1.
    pub setup_floor: f64,
    /// One maximum-ratio cycle per cyclic SCC, sorted by decreasing ratio.
    pub critical: Vec<CriticalCycle>,
}

impl CycleTimeBounds {
    /// The overall critical cycle (largest ratio), if the circuit has
    /// feedback.
    pub fn critical_cycle(&self) -> Option<&CriticalCycle> {
        self.critical.first()
    }

    /// `true` when `tc` lies inside the bracket, up to a relative `1e-6`
    /// tolerance.
    pub fn brackets(&self, tc: f64) -> bool {
        let tol = 1e-6 * (1.0 + tc.abs());
        tc >= self.lower - tol && tc <= self.upper + tol
    }
}

impl fmt::Display for CycleTimeBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycle-time bracket: {} <= Tc* <= {}",
            self.lower, self.upper
        )?;
        writeln!(
            f,
            "  upper = k x W with worst flip-flop stage W = {}",
            self.stage_bound
        )?;
        if self.critical.is_empty() {
            writeln!(
                f,
                "  no feedback cycles; lower bound from single-row floors"
            )?;
        }
        for c in &self.critical {
            writeln!(f, "  critical cycle: {c}")?;
        }
        Ok(())
    }
}

/// Edge weight and wrap flag used by both bounds: the delay a signal
/// leaving `from` spends before it is committed at `to`, and whether the
/// `p_from → p_to` hop crosses a period boundary (eq. 1).
fn edge_weight(circuit: &Circuit, from: LatchId, to: LatchId, delay: f64) -> (f64, usize) {
    let src = circuit.sync(from);
    let dst = circuit.sync(to);
    let setup = if dst.kind == SyncKind::FlipFlop {
        dst.setup
    } else {
        0.0
    };
    let wraps = usize::from(ClockSpec::c_flag(src.phase, dst.phase));
    (src.dq + delay + setup, wraps)
}

/// Computes the combinatorial cycle-time bracket of `circuit` under default
/// [`ConstraintOptions`](crate::ConstraintOptions).
///
/// The upper bound is witnessed by the flip-flop-style schedule
/// `s_p = (p−1)·W, T_p = W, Tc = k·W, D_i = 0` with
/// `W = max(max_edges (Δ_DQj + Δ_ji [+ Δ_DCi for FF dest]), max_latches Δ_DCi)`:
/// C1/C2 hold since `0 ≤ (p−1)·W ≤ k·W`; a C3 row for source phase `i`,
/// destination phase `j` reads `(i−j−1)·W ≥ 0` when `i > j` and
/// `(k−1−(j−i))·W ≥ 0` otherwise; L1 holds since `W ≥ Δ_DCi`; and every
/// L2R/flip-flop-setup row reduces to `stage ≤ m·W` for some hop distance
/// `m ≥ 1`.
pub fn cycle_time_bounds(circuit: &Circuit) -> CycleTimeBounds {
    let k = circuit.num_phases();

    // Single-row floors and the stage bound W.
    let mut setup_floor: f64 = 0.0;
    for (_, s) in circuit.syncs() {
        if s.kind == SyncKind::Latch {
            setup_floor = setup_floor.max(s.setup);
        }
    }
    let mut stage_bound = setup_floor;
    let mut lower = setup_floor;
    for e in circuit.edges() {
        let (stage, wraps) = edge_weight(circuit, e.from, e.to, e.max_delay);
        stage_bound = stage_bound.max(stage);
        // FF-destination forward hops pin `s_dst ≥ stage` and C1 gives
        // `s_dst ≤ Tc`; every other edge still forces `2·Tc ≥ stage`
        // through L1/C1.
        let dst_is_ff = circuit.sync(e.to).kind == SyncKind::FlipFlop;
        let floor = if dst_is_ff && wraps == 0 {
            stage
        } else {
            stage / 2.0
        };
        lower = lower.max(floor);
    }

    // Maximum-ratio cycles, one per cyclic SCC.
    let mut critical = Vec::new();
    for comp in circuit.sccs() {
        if let Some(c) = scc_critical_cycle(circuit, &comp) {
            lower = lower.max(c.ratio);
            critical.push(c);
        }
    }
    critical.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));

    CycleTimeBounds {
        lower,
        upper: k as f64 * stage_bound,
        stage_bound,
        setup_floor,
        critical,
    }
}

/// One deduplicated arc of the per-SCC ratio graph.
struct RatioEdge {
    from: usize,
    to: usize,
    weight: f64,
    wraps: usize,
}

/// Finds the maximum-ratio cycle of one SCC via Lawler's parametric
/// iteration, or `None` if the component is acyclic (a singleton without a
/// self-loop).
fn scc_critical_cycle(circuit: &Circuit, comp: &[LatchId]) -> Option<CriticalCycle> {
    let index: HashMap<LatchId, usize> = comp.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    // Parallel edges collapse to their worst weight: each parallel edge
    // yields its own L2R row, so the largest delay certifies the largest
    // ratio while remaining a genuine cycle of rows.
    let mut dedup: HashMap<(usize, usize), (f64, usize)> = HashMap::new();
    for e in circuit.edges() {
        if let (Some(&f), Some(&t)) = (index.get(&e.from), index.get(&e.to)) {
            let (w, c) = edge_weight(circuit, e.from, e.to, e.max_delay);
            let entry = dedup.entry((f, t)).or_insert((w, c));
            if w > entry.0 {
                entry.0 = w;
            }
        }
    }
    if comp.len() == 1 && !dedup.contains_key(&(0, 0)) {
        return None;
    }
    let edges: Vec<RatioEdge> = dedup
        .into_iter()
        .map(|((from, to), (weight, wraps))| RatioEdge {
            from,
            to,
            weight,
            wraps,
        })
        .collect();
    if edges.is_empty() {
        return None;
    }

    // Start below every possible ratio (weights ≥ 0, wraps ≥ 1 on cycles);
    // each round either proves no cycle beats λ or jumps λ to the exact
    // ratio of a strictly better witness, so the loop terminates.
    let mut lambda = -1.0;
    let mut best: Option<(Vec<usize>, f64, usize)> = None;
    while let Some(cyc) = negative_cycle(comp.len(), &edges, lambda) {
        let weight: f64 = cyc.iter().map(|&ei| edges[ei].weight).sum();
        let wraps: usize = cyc.iter().map(|&ei| edges[ei].wraps).sum();
        debug_assert!(wraps >= 1, "every synchronizer cycle wraps at least once");
        if wraps == 0 {
            break;
        }
        let ratio = weight / wraps as f64;
        if ratio <= lambda {
            break;
        }
        lambda = ratio;
        best = Some((cyc, weight, wraps));
    }

    best.map(|(cyc, weight, wraps)| {
        // Walk the cycle's edges forward and rotate so the smallest latch id
        // leads, for a deterministic report.
        let nodes: Vec<LatchId> = cyc.iter().map(|&ei| comp[edges[ei].from]).collect();
        let lead = nodes
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.index())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut latches = Vec::with_capacity(nodes.len());
        latches.extend_from_slice(&nodes[lead..]);
        latches.extend_from_slice(&nodes[..lead]);
        CriticalCycle {
            cycle: Cycle { latches },
            weight,
            wraps,
            ratio: weight / wraps as f64,
        }
    })
}

/// Bellman–Ford negative-cycle detection under arc costs `λ·wraps − weight`
/// from a virtual source (all distances start at zero). Returns the edge
/// indices of one negative cycle in forward traversal order, or `None`.
fn negative_cycle(n: usize, edges: &[RatioEdge], lambda: f64) -> Option<Vec<usize>> {
    let mut dist = vec![0.0; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut witness = None;
    for pass in 0..n {
        let mut relaxed = false;
        for (ei, e) in edges.iter().enumerate() {
            let cost = lambda * e.wraps as f64 - e.weight;
            if dist[e.from] + cost < dist[e.to] - TOL {
                dist[e.to] = dist[e.from] + cost;
                pred[e.to] = Some(ei);
                relaxed = true;
                if pass == n - 1 {
                    witness = Some(e.to);
                }
            }
        }
        if !relaxed {
            return None;
        }
    }
    // A relaxation in the n-th pass means `witness` is reachable from a
    // negative cycle; walking n predecessors lands inside it.
    let mut v = witness?;
    for _ in 0..n {
        v = edges[pred[v]?].from;
    }
    let start = v;
    let mut cyc = Vec::new();
    loop {
        let ei = pred[v]?;
        cyc.push(ei);
        v = edges[ei].from;
        if v == start {
            break;
        }
        if cyc.len() > n {
            return None; // defensive: predecessor chain corrupted
        }
    }
    cyc.reverse();
    Some(cyc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TimingModel;
    use smo_circuit::{CircuitBuilder, PhaseId};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    /// The paper's Example 1: four latches on two phases, loop
    /// L1→L2→L3→L4→L1 with stage delays 20/20/60/80 and Δ_DQ = 10
    /// everywhere. Critical ratio = (30+30+70+90)/2 = 110 = Tc*.
    fn example1() -> smo_circuit::Circuit {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", p(1), 10.0, 10.0);
        let l2 = b.add_latch("L2", p(2), 10.0, 10.0);
        let l3 = b.add_latch("L3", p(1), 10.0, 10.0);
        let l4 = b.add_latch("L4", p(2), 10.0, 10.0);
        b.connect(l1, l2, 20.0);
        b.connect(l2, l3, 20.0);
        b.connect(l3, l4, 60.0);
        b.connect(l4, l1, 80.0);
        b.build().unwrap()
    }

    #[test]
    fn example1_critical_loop_is_exact() {
        let c = example1();
        let bounds = cycle_time_bounds(&c);
        assert_eq!(bounds.lower, 110.0);
        let crit = bounds.critical_cycle().expect("feedback loop");
        assert_eq!(crit.weight, 220.0);
        assert_eq!(crit.wraps, 2);
        assert_eq!(crit.ratio, 110.0);
        assert_eq!(crit.cycle.to_string(), "L1 → L2 → L3 → L4 → L1");
        // Upper bound: worst stage is dq+Δ = 10+80 = 90 (latch destination,
        // so its setup rides on the L1 floor instead), two phases.
        assert_eq!(bounds.stage_bound, 90.0);
        assert_eq!(bounds.upper, 180.0);
        // The LP agrees and sits exactly on the lower bound.
        let tc = TimingModel::build(&c)
            .unwrap()
            .solve_lp()
            .unwrap()
            .objective();
        assert_eq!(tc, 110.0);
        assert!(bounds.brackets(tc));
    }

    #[test]
    fn acyclic_pipeline_has_floor_only_lower_bound() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("A", p(1), 5.0, 6.0);
        let l2 = b.add_latch("B", p(2), 5.0, 6.0);
        b.connect(l1, l2, 40.0);
        let c = b.build().unwrap();
        let bounds = cycle_time_bounds(&c);
        assert!(bounds.critical.is_empty());
        // Floors: latch setup 5, edge stage (6+40+0)/2 = 23.
        assert_eq!(bounds.setup_floor, 5.0);
        assert_eq!(bounds.lower, 23.0);
        assert_eq!(bounds.upper, 2.0 * 46.0);
        let tc = TimingModel::build(&c)
            .unwrap()
            .solve_lp()
            .unwrap()
            .objective();
        assert!(bounds.brackets(tc), "{} not in {:?}", tc, bounds);
    }

    #[test]
    fn flip_flop_self_loop_matches_ff_recurrence() {
        // A single-phase flip-flop feeding itself: Tc ≥ dq + Δ + setup
        // exactly (the textbook FF recurrence), and the upper bound agrees.
        let mut b = CircuitBuilder::new(1);
        let f = b.add_flip_flop("F", p(1), 3.0, 2.0);
        b.connect(f, f, 10.0);
        let c = b.build().unwrap();
        let bounds = cycle_time_bounds(&c);
        assert_eq!(bounds.lower, 15.0);
        assert_eq!(bounds.upper, 15.0);
        let crit = bounds.critical_cycle().unwrap();
        assert_eq!(crit.wraps, 1);
        assert_eq!(crit.ratio, 15.0);
        let tc = TimingModel::build(&c)
            .unwrap()
            .solve_lp()
            .unwrap()
            .objective();
        assert_eq!(tc, 15.0);
    }

    #[test]
    fn parallel_edges_use_worst_delay() {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("A", p(1), 0.0, 0.0);
        let l2 = b.add_latch("B", p(2), 0.0, 0.0);
        b.connect(l1, l2, 10.0);
        b.connect(l1, l2, 30.0); // worst parallel path
        b.connect(l2, l1, 10.0);
        let c = b.build().unwrap();
        let bounds = cycle_time_bounds(&c);
        let crit = bounds.critical_cycle().unwrap();
        assert_eq!(crit.weight, 40.0);
        assert_eq!(crit.wraps, 1);
        assert_eq!(bounds.lower, 40.0);
    }

    #[test]
    fn multiple_sccs_each_get_a_critical_cycle() {
        let mut b = CircuitBuilder::new(2);
        let a1 = b.add_latch("A1", p(1), 0.0, 1.0);
        let a2 = b.add_latch("A2", p(2), 0.0, 1.0);
        let b1 = b.add_latch("B1", p(1), 0.0, 1.0);
        let b2 = b.add_latch("B2", p(2), 0.0, 1.0);
        b.connect(a1, a2, 10.0);
        b.connect(a2, a1, 10.0);
        b.connect(a2, b1, 5.0); // bridge: not on any cycle
        b.connect(b1, b2, 50.0);
        b.connect(b2, b1, 50.0);
        let c = b.build().unwrap();
        let bounds = cycle_time_bounds(&c);
        assert_eq!(bounds.critical.len(), 2);
        // Sorted by decreasing ratio: the B loop (102/1) dominates.
        assert!(bounds.critical[0].ratio > bounds.critical[1].ratio);
        assert_eq!(bounds.lower, bounds.critical[0].ratio);
        let tc = TimingModel::build(&c)
            .unwrap()
            .solve_lp()
            .unwrap()
            .objective();
        assert!(bounds.brackets(tc), "{} not in {:?}", tc, bounds);
    }

    #[test]
    fn bracket_holds_on_mixed_latch_ff_loop() {
        let mut b = CircuitBuilder::new(2);
        let l = b.add_latch("L", p(1), 2.0, 3.0);
        let f = b.add_flip_flop("F", p(2), 4.0, 5.0);
        b.connect(l, f, 20.0);
        b.connect(f, l, 30.0);
        let c = b.build().unwrap();
        let bounds = cycle_time_bounds(&c);
        // Loop weight: (3+20+4 setup at FF) + (5+30) = 62, one wrap... the
        // hop φ1→φ2 does not wrap, φ2→φ1 does.
        let crit = bounds.critical_cycle().unwrap();
        assert_eq!(crit.weight, 62.0);
        assert_eq!(crit.wraps, 1);
        let tc = TimingModel::build(&c)
            .unwrap()
            .solve_lp()
            .unwrap()
            .objective();
        assert!(bounds.brackets(tc), "{} not in {:?}", tc, bounds);
        assert!(tc >= 62.0 - 1e-9);
    }
}
