//! Parallel parameter sweeps with warm-started re-solves.
//!
//! §VI of the paper motivates "parametric programming techniques … to
//! study the effects on the optimal cycle time of varying the circuit
//! delays". [`sensitivity`](crate::cycle_time_curve) answers that exactly
//! for *one* edge; this module scales the question up: many runs, many
//! circuits, many threads.
//!
//! [`sweep_cycle_time`] fans a batch of re-solves over a work-claiming
//! thread pool:
//!
//! * **Clock sweeps** ([`SweepParam::Tc`]) — a grid sweep of one edge's
//!   delay over `[0, max]`, each grid point re-solved from the base
//!   optimum's basis, cross-checkable against the exact piecewise-linear
//!   curve ([`cycle_time_curve`](crate::cycle_time_curve)) whose
//!   breakpoints ride along in the report.
//! * **Monte-Carlo delay perturbation** ([`SweepParam::Delay`]) — every
//!   edge delay jittered uniformly by ±`spread`
//!   ([`smo_gen::random::perturbed_delays`]), one re-solve per sample.
//! * **Many-circuit batches** — pass several circuits; work items are
//!   interleaved across the pool and reduced back per circuit.
//!
//! ## Why warm starts pay here
//!
//! Delay edits touch only constraint right-hand sides
//! ([`TimingModel::set_edge_delay`]), never the matrix. A basis that was
//! optimal for the base delays therefore stays *dual feasible* after any
//! perturbation, and each re-solve is a short dual-simplex repair instead
//! of a from-scratch phase 1 — with the revised variant additionally
//! reusing the factorized `B⁻¹` across the whole sweep (the snapshot's
//! matrix fingerprint certifies the reuse is sound).
//!
//! ## Determinism contract
//!
//! Results are identical for any `jobs` value: run `i` of a circuit is
//! seeded with `seed + i` (the `smo-sim` Monte-Carlo convention), every
//! run warm-starts from the same deterministic base basis, and the
//! reduction is ordered by `(circuit, run)` index — worker scheduling
//! affects wall-clock only. `smo sweep --json` is byte-identical across
//! `--jobs 1/2/8` because of this contract; `tests/warm_start.rs` locks
//! it down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::TimingError;
use crate::model::TimingModel;
use crate::sensitivity::cycle_time_curve;
use smo_circuit::{Circuit, EdgeId};
use smo_gen::random::perturbed_delays;
use smo_lp::{Basis, ConstraintId, RecoveryPolicy, SimplexVariant};

/// Which parameter a sweep varies.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepParam {
    /// Grid sweep of one edge's long-path delay over `[0, max_delay]`
    /// (`runs` evenly spaced points, the last at `max_delay`). The report
    /// carries the *exact* breakpoints of the piecewise-linear `T_c*(Δ)`
    /// curve for cross-checking (the Fig. 7 experiment at scale).
    Tc {
        /// The edge whose delay is swept.
        edge: EdgeId,
        /// Upper end of the sweep range.
        max_delay: f64,
    },
    /// Monte-Carlo re-solves with every edge delay drawn uniformly from
    /// `[Δ·(1−spread), Δ·(1+spread)]`; run `i` uses seed `seed + i`.
    Delay {
        /// Relative jitter half-width in `[0, 1]` (`0` = no perturbation).
        spread: f64,
    },
}

/// Options for [`sweep_cycle_time`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// The swept parameter.
    pub param: SweepParam,
    /// Re-solves per circuit.
    pub runs: usize,
    /// Base RNG seed (delay mode; run `i` uses `seed + i`).
    pub seed: u64,
    /// Worker threads. Results are identical for any value; `0` and `1`
    /// both mean sequential. The value is a *ceiling*: it is clamped to
    /// the work-item count and to [`std::thread::available_parallelism`],
    /// so over-subscribing a small container no longer costs throughput.
    pub jobs: usize,
    /// Simplex implementation for the base and warm solves. The revised
    /// variant reuses its factorization across RHS-only re-solves and is
    /// the right default for sweeps.
    pub variant: SimplexVariant,
    /// Route every re-solve through the certified ladder
    /// ([`TimingModel::solve_lp_certified_from_basis`]) instead of the
    /// plain warm solve. Slower; every reported optimum is then
    /// independently KKT-checked against raw problem data.
    pub certify: bool,
    /// Simplex pricing strategy for every solve in the sweep, honored by
    /// the sparse-LU variant only (the default revised variant ignores
    /// it). Identical verdicts and optima under every strategy.
    pub pricing: smo_lp::Pricing,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            param: SweepParam::Delay { spread: 0.1 },
            runs: 16,
            seed: 0,
            jobs: 1,
            variant: SimplexVariant::Revised,
            certify: false,
            pricing: smo_lp::Pricing::default(),
        }
    }
}

/// One re-solve of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRun {
    /// Run index within the circuit's sweep (`0..runs`).
    pub index: usize,
    /// The parameter value: the swept edge delay ([`SweepParam::Tc`]) or
    /// the largest relative delay deviation applied
    /// ([`SweepParam::Delay`]).
    pub value: f64,
    /// Optimal cycle time `T_c*` at this parameter value.
    pub cycle_time: f64,
    /// Simplex pivots this re-solve needed. After a successful warm
    /// repair this counts only the repair pivots; compare with
    /// [`SweepReport::base_iterations`] for the cold baseline.
    pub iterations: usize,
}

/// Per-circuit result of [`sweep_cycle_time`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Index of the circuit in the input batch.
    pub circuit: usize,
    /// Optimal cycle time of the unperturbed model.
    pub base_cycle_time: f64,
    /// Pivots of the cold base solve (the per-run warm baseline).
    pub base_iterations: usize,
    /// All runs, ordered by index.
    pub runs: Vec<SweepRun>,
    /// Exact breakpoints of `T_c*(Δ)` over the sweep range
    /// ([`SweepParam::Tc`] only; empty in delay mode).
    pub breakpoints: Vec<f64>,
    /// Smallest cycle time over the runs.
    pub min_cycle_time: f64,
    /// Largest cycle time over the runs.
    pub max_cycle_time: f64,
    /// Mean cycle time over the runs (summed in index order).
    pub mean_cycle_time: f64,
    /// Total pivots across all warm re-solves.
    pub warm_iterations: usize,
}

/// The base solve of one circuit, shared read-only with the workers.
struct BaseSolve {
    model: TimingModel,
    /// Standard-form matrix fingerprint — the worker-side basis-cache key.
    fingerprint: u64,
    basis: Basis,
    cycle_time: f64,
    iterations: usize,
}

/// Sweeps the optimal cycle time of every circuit in `circuits` over the
/// configured parameter, returning one [`SweepReport`] per circuit (input
/// order).
///
/// All `circuits.len() × runs` re-solves are interleaved over
/// `options.jobs` threads that claim work from a shared atomic counter.
/// Each worker keeps a private basis cache keyed by the circuit's
/// standard-form matrix fingerprint, so structurally identical circuits
/// share one warm-start basis per worker — and, through the snapshot's
/// factor cache, one `B⁻¹` factorization.
///
/// # Errors
///
/// [`TimingError::InvalidOptions`] for a degenerate configuration (zero
/// runs, spread outside `[0, 1]`, a swept edge missing from a circuit),
/// plus anything the underlying solves report. The error returned is the
/// one from the lowest-indexed failing work item, independent of thread
/// scheduling.
pub fn sweep_cycle_time(
    circuits: &[Circuit],
    options: &SweepOptions,
) -> Result<Vec<SweepReport>, TimingError> {
    validate(circuits, options)?;
    if circuits.is_empty() {
        return Ok(Vec::new());
    }

    // Base solves: one deterministic cold solve per circuit, on this
    // thread. Their bases seed the workers' caches; their iteration counts
    // are the honest cold baseline each warm run is compared against.
    let bases: Vec<BaseSolve> = circuits
        .iter()
        .map(|c| {
            let model = TimingModel::build(c)?;
            let fingerprint = model.problem().matrix_fingerprint()?;
            let sol = model.solve_lp_with(options.variant)?;
            let basis = sol.basis().cloned().ok_or_else(|| {
                TimingError::Lp(smo_lp::LpError::Numerical {
                    context: "optimal base solve returned no basis snapshot".into(),
                })
            })?;
            let cycle_time = sol.value(model.vars().tc());
            let iterations = sol.iterations();
            // Prime the snapshot's factor cache with one warm re-solve of
            // the unperturbed model: the revised path stores B⁻¹ in the
            // snapshot on first warm use, so every worker's clone of this
            // basis shares one factorization instead of re-deriving it.
            if matches!(options.variant, SimplexVariant::Revised) && !basis.has_cached_factor() {
                let _ = model
                    .problem()
                    .solve_from_basis_with(options.variant, &basis);
            }
            Ok(BaseSolve {
                model,
                fingerprint,
                basis,
                cycle_time,
                iterations,
            })
        })
        .collect::<Result<_, TimingError>>()?;

    let total = circuits.len() * options.runs;
    // Threads beyond the physical core count only add scheduler churn:
    // every extra worker claims runs it then time-slices against the
    // others, so `--jobs 8` on a 1-core container used to run *slower*
    // than `--jobs 1`. Cap the pool at the machine's parallelism (the
    // determinism contract makes the clamp invisible in the output).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs = options.jobs.clamp(1, total).min(cores);
    let next = AtomicUsize::new(0);

    let work = |_worker: usize| -> Result<Vec<(usize, SweepRun)>, (usize, TimingError)> {
        let mut out = Vec::new();
        // The per-worker basis cache. Keyed by matrix fingerprint, so two
        // structurally identical circuits in the batch share an entry; the
        // cached snapshot also owns this worker's factorization cache (or
        // shares the base solve's, when the revised solver seeded it).
        let mut cache: HashMap<u64, Basis> = HashMap::new();
        // The per-worker model cache: one clone of each circuit's base
        // model, perturbed in place (RHS only) and restored after every
        // run. Cloning per (worker, circuit) instead of per run removes
        // the dominant allocation from the inner loop.
        let mut models: HashMap<usize, TimingModel> = HashMap::new();
        loop {
            let w = next.fetch_add(1, Ordering::Relaxed);
            if w >= total {
                return Ok(out);
            }
            let c = w / options.runs;
            let i = w % options.runs;
            let base = &bases[c];
            let basis = cache
                .entry(base.fingerprint)
                .or_insert_with(|| base.basis.clone());
            let model = models.entry(c).or_insert_with(|| base.model.clone());
            match run_one(&circuits[c], model, basis, i, options) {
                Ok(run) => out.push((w, run)),
                Err(e) => return Err((w, e)),
            }
        }
    };

    let mut results: Vec<Option<SweepRun>> = (0..total).map(|_| None).collect();
    let mut first_error: Option<(usize, TimingError)> = None;
    if jobs == 1 {
        match work(0) {
            Ok(pairs) => {
                for (w, run) in pairs {
                    results[w] = Some(run);
                }
            }
            Err(e) => first_error = Some(e),
        }
    } else {
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|t| {
                    let work = &work;
                    scope.spawn(move || work(t))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        for outcome in outcomes {
            match outcome {
                Ok(pairs) => {
                    for (w, run) in pairs {
                        results[w] = Some(run);
                    }
                }
                // Keep the lowest-indexed error so the verdict does not
                // depend on which worker happened to hit it first.
                Err((w, e)) => match &first_error {
                    Some((prev, _)) if *prev <= w => {}
                    _ => first_error = Some((w, e)),
                },
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }

    // Ordered reduction: group the flat results back per circuit.
    let mut reports = Vec::with_capacity(circuits.len());
    let mut results = results.into_iter();
    for (c, base) in bases.iter().enumerate() {
        let runs: Vec<SweepRun> = results
            .by_ref()
            .take(options.runs)
            .map(|r| r.expect("every work item completed"))
            .collect();
        let breakpoints = match &options.param {
            SweepParam::Tc { edge, max_delay } => {
                cycle_time_curve(&circuits[c], &base.model, *edge, *max_delay)?.breakpoints()
            }
            SweepParam::Delay { .. } => Vec::new(),
        };
        let (mut min, mut max, mut sum, mut pivots) = (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0);
        for r in &runs {
            min = min.min(r.cycle_time);
            max = max.max(r.cycle_time);
            sum += r.cycle_time;
            pivots += r.iterations;
        }
        reports.push(SweepReport {
            circuit: c,
            base_cycle_time: base.cycle_time,
            base_iterations: base.iterations,
            breakpoints,
            min_cycle_time: min,
            max_cycle_time: max,
            mean_cycle_time: sum / runs.len() as f64,
            warm_iterations: pivots,
            runs,
        });
    }
    Ok(reports)
}

/// Records a row's exact RHS before overwriting it via
/// [`TimingModel::set_edge_delay`], so [`run_one`] can restore the
/// worker's shared model bit-for-bit afterwards. Restoring the *recorded*
/// value — rather than applying the inverse delta — keeps repeated runs
/// from accumulating floating-point drift in the cached model.
fn record_and_set(
    model: &mut TimingModel,
    touched: &mut Vec<(ConstraintId, f64)>,
    edge: EdgeId,
    old_delay: f64,
    new_delay: f64,
) {
    if let Some(row) = model.edge_constraint(edge) {
        let (_, _, rhs) = model.problem().constraint(row);
        touched.push((row, rhs));
        model.set_edge_delay(edge, old_delay, new_delay);
    }
}

/// One re-solve: perturb the worker's cached model in place (RHS edits
/// only), warm-start it from the worker's cached basis, then restore the
/// recorded right-hand sides so the model is pristine for the next run.
fn run_one(
    circuit: &Circuit,
    model: &mut TimingModel,
    basis: &Basis,
    i: usize,
    options: &SweepOptions,
) -> Result<SweepRun, TimingError> {
    let mut touched: Vec<(ConstraintId, f64)> = Vec::new();
    let value = match &options.param {
        SweepParam::Tc { edge, max_delay } => {
            let theta = if options.runs == 1 {
                *max_delay
            } else {
                max_delay * i as f64 / (options.runs - 1) as f64
            };
            record_and_set(
                model,
                &mut touched,
                *edge,
                circuit.edge(*edge).max_delay,
                theta,
            );
            theta
        }
        SweepParam::Delay { spread } => {
            let delays = perturbed_delays(circuit, *spread, options.seed.wrapping_add(i as u64));
            let mut worst = 0.0f64;
            for (e, (edge, &new)) in circuit.edges().iter().zip(&delays).enumerate() {
                let id = EdgeId::new(e);
                if new != edge.max_delay {
                    record_and_set(model, &mut touched, id, edge.max_delay, new);
                }
                if edge.max_delay > 0.0 {
                    worst = worst.max((new - edge.max_delay).abs() / edge.max_delay);
                }
            }
            worst
        }
    };
    let solved = if options.certify {
        let policy = RecoveryPolicy {
            variant: options.variant,
            pricing: options.pricing,
            ..RecoveryPolicy::default()
        };
        model
            .solve_lp_certified_from_basis(&policy, Some(basis))
            .map(|(sol, _cert)| sol)
    } else if options.pricing == smo_lp::Pricing::default() {
        model.solve_lp_from_basis(options.variant, basis)
    } else {
        model.solve_lp_budgeted(
            options.variant,
            Some(basis),
            smo_lp::SolveBudget::UNLIMITED,
            options.pricing,
        )
    };
    // Restore before propagating any error: the cached model must hold the
    // exact base RHS whenever run_one returns.
    for &(row, rhs) in touched.iter().rev() {
        model.problem_mut().set_rhs(row, rhs);
    }
    let sol = solved?;
    Ok(SweepRun {
        index: i,
        value,
        cycle_time: sol.value(model.vars().tc()),
        iterations: sol.iterations(),
    })
}

fn validate(circuits: &[Circuit], options: &SweepOptions) -> Result<(), TimingError> {
    if options.runs == 0 {
        return Err(TimingError::InvalidOptions {
            reason: "sweep needs at least one run".into(),
        });
    }
    match &options.param {
        SweepParam::Tc { edge, max_delay } => {
            if !max_delay.is_finite() || *max_delay < 0.0 {
                return Err(TimingError::InvalidOptions {
                    reason: format!("sweep range must be finite and non-negative, got {max_delay}"),
                });
            }
            for (c, circuit) in circuits.iter().enumerate() {
                if edge.index() >= circuit.num_edges() {
                    return Err(TimingError::InvalidOptions {
                        reason: format!(
                            "edge {} does not exist in circuit {c} ({} edges)",
                            edge.index(),
                            circuit.num_edges()
                        ),
                    });
                }
            }
        }
        SweepParam::Delay { spread } => {
            if !(0.0..=1.0).contains(spread) {
                return Err(TimingError::InvalidOptions {
                    reason: format!("delay spread must lie in [0, 1], got {spread}"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_gen::paper::example1;
    use smo_gen::random::{random_circuit, GenConfig};

    #[test]
    fn zero_spread_reproduces_the_base_optimum_every_run() {
        let c = example1(80.0);
        let reports = sweep_cycle_time(
            &[c],
            &SweepOptions {
                param: SweepParam::Delay { spread: 0.0 },
                runs: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert!((r.base_cycle_time - 110.0).abs() < 1e-6);
        for run in &r.runs {
            assert!((run.cycle_time - 110.0).abs() < 1e-6, "{run:?}");
            assert_eq!(run.value, 0.0);
        }
        assert_eq!(r.min_cycle_time, r.max_cycle_time);
    }

    #[test]
    fn tc_sweep_matches_the_exact_parametric_curve() {
        let c = example1(50.0);
        let model = TimingModel::build(&c).unwrap();
        let curve = cycle_time_curve(&c, &model, EdgeId::new(3), 140.0).unwrap();
        let reports = sweep_cycle_time(
            &[c],
            &SweepOptions {
                param: SweepParam::Tc {
                    edge: EdgeId::new(3),
                    max_delay: 140.0,
                },
                runs: 15,
                ..Default::default()
            },
        )
        .unwrap();
        let r = &reports[0];
        assert_eq!(r.breakpoints, curve.breakpoints());
        for run in &r.runs {
            let exact = curve.objective_at(run.value).unwrap();
            assert!(
                (run.cycle_time - exact).abs() < 1e-6,
                "Δ = {}: {} vs exact {exact}",
                run.value,
                run.cycle_time
            );
        }
        // Endpoints of the grid are exact.
        assert_eq!(r.runs[0].value, 0.0);
        assert_eq!(r.runs.last().unwrap().value, 140.0);
    }

    #[test]
    fn results_are_identical_for_any_job_count() {
        let circuits = vec![
            example1(80.0),
            random_circuit(&GenConfig::default(), 1),
            random_circuit(&GenConfig::default(), 2),
        ];
        let base = SweepOptions {
            param: SweepParam::Delay { spread: 0.15 },
            runs: 10,
            seed: 42,
            ..Default::default()
        };
        let sequential = sweep_cycle_time(&circuits, &base).unwrap();
        for jobs in [2, 4, 8] {
            let parallel = sweep_cycle_time(
                &circuits,
                &SweepOptions {
                    jobs,
                    ..base.clone()
                },
            );
            assert_eq!(sequential, parallel.unwrap(), "jobs = {jobs}");
        }
    }

    #[test]
    fn warm_runs_use_fewer_pivots_than_the_cold_base() {
        // A model big enough that the repair-vs-phase-1 gap is visible.
        let c = random_circuit(
            &GenConfig {
                latches: 40,
                edges: 70,
                ..Default::default()
            },
            7,
        );
        let reports = sweep_cycle_time(
            &[c],
            &SweepOptions {
                param: SweepParam::Delay { spread: 0.05 },
                runs: 12,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let r = &reports[0];
        let mean_warm = r.warm_iterations as f64 / r.runs.len() as f64;
        assert!(
            mean_warm < r.base_iterations as f64 / 2.0,
            "warm mean {mean_warm} vs cold base {}",
            r.base_iterations
        );
    }

    #[test]
    fn certify_mode_agrees_with_the_plain_sweep() {
        let c = example1(80.0);
        let opts = SweepOptions {
            param: SweepParam::Delay { spread: 0.2 },
            runs: 6,
            seed: 11,
            ..Default::default()
        };
        let plain = sweep_cycle_time(std::slice::from_ref(&c), &opts).unwrap();
        let certified = sweep_cycle_time(
            &[c],
            &SweepOptions {
                certify: true,
                ..opts
            },
        )
        .unwrap();
        for (p, q) in plain[0].runs.iter().zip(&certified[0].runs) {
            assert!((p.cycle_time - q.cycle_time).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_options_are_rejected() {
        let c = example1(80.0);
        let bad_runs = SweepOptions {
            runs: 0,
            ..Default::default()
        };
        assert!(matches!(
            sweep_cycle_time(std::slice::from_ref(&c), &bad_runs),
            Err(TimingError::InvalidOptions { .. })
        ));
        let bad_spread = SweepOptions {
            param: SweepParam::Delay { spread: 1.5 },
            ..Default::default()
        };
        assert!(matches!(
            sweep_cycle_time(std::slice::from_ref(&c), &bad_spread),
            Err(TimingError::InvalidOptions { .. })
        ));
        let bad_edge = SweepOptions {
            param: SweepParam::Tc {
                edge: EdgeId::new(99),
                max_delay: 10.0,
            },
            ..Default::default()
        };
        assert!(matches!(
            sweep_cycle_time(&[c], &bad_edge),
            Err(TimingError::InvalidOptions { .. })
        ));
    }
}
